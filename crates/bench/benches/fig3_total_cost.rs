//! Figure 3 benchmark: the full cost-benefit evaluation (all eight policies, nested
//! cross-validation) at one mitigation cost, on the small smoke-scale context.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use uerl_eval::experiments::fig3;

fn bench_fig3(c: &mut Criterion) {
    let ctx = uerl_bench::bench_context(101);
    let mut group = c.benchmark_group("fig3_total_cost");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("all_policies_2_node_minutes", |b| {
        b.iter(|| {
            let result = fig3::run(&ctx, &[2.0]);
            std::hint::black_box(result.rows.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
