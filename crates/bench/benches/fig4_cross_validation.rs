//! Figure 4 benchmark: the per-split time-series nested cross-validation at the default
//! 2 node-minute mitigation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use uerl_eval::experiments::fig4;

fn bench_fig4(c: &mut Criterion) {
    let ctx = uerl_bench::bench_context(102);
    let mut group = c.benchmark_group("fig4_cross_validation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("nested_cv_all_splits", |b| {
        b.iter(|| {
            let result = fig4::run(&ctx);
            std::hint::black_box(result.cells.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
