//! Figure 5 benchmark: the per-DRAM-manufacturer evaluation (MN/All, MN/A, MN/B, MN/C
//! and the MN/ABC sum).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use uerl_eval::experiments::fig5;

fn bench_fig5(c: &mut Criterion) {
    let ctx = uerl_bench::bench_context(103);
    let mut group = c.benchmark_group("fig5_manufacturers");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("all_manufacturer_scenarios", |b| {
        b.iter(|| {
            let result = fig5::run(&ctx);
            std::hint::black_box(result.rows.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
