//! Figure 6 benchmark: training the agent and the RF probability proxy, collecting
//! held-out states and building the mitigation-fraction map.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use uerl_eval::experiments::fig6;

fn bench_fig6(c: &mut Criterion) {
    let ctx = uerl_bench::bench_context(104);
    let mut group = c.benchmark_group("fig6_agent_behavior");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("behaviour_map_7x5", |b| {
        b.iter(|| {
            let result = fig6::run(&ctx, 7, 5);
            std::hint::black_box(result.states_observed)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
