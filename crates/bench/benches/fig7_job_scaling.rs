//! Figure 7 benchmark: the job-size sensitivity sweep (one scaling factor per iteration
//! to keep the benchmark granular).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use uerl_eval::experiments::fig7;

fn bench_fig7(c: &mut Criterion) {
    let ctx = uerl_bench::bench_context(106);
    let mut group = c.benchmark_group("fig7_job_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for &scaling in &[0.1, 10.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scaling),
            &scaling,
            |b, &scaling| {
                b.iter(|| {
                    let result = fig7::run(&ctx, &[scaling]);
                    std::hint::black_box(result.points.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
