//! Micro-benchmarks of the blocked matmul kernel family and the quantized i8 forward
//! path — the per-op numbers behind the `serve_throughput` and `matmul_kernels`
//! perf_report stages. Shapes mirror the serving workload: the paper Q-network's
//! 256-wide hidden layers at a serving-sized batch, plus the batch-of-1 latency path.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use uerl_core::state::STATE_DIM;
use uerl_nn::{DuelingQNetwork, Matrix, MlpConfig, QuantScratch, QuantizedNetwork};

fn fill(rows: usize, cols: usize, seed: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        ((i * 31 + j * 7 + seed) as f64 * 0.37).sin() * 2.0
    })
}

fn bench_matmul_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_kernels");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(5));

    // The serving hot loop: batch-of-64 activations through a 256×256 hidden layer.
    let a = fill(64, 256, 1);
    let b = fill(256, 256, 2);
    let mut out = Matrix::zeros(64, 256);
    group.bench_function("nn_64x256x256_into", |bch| {
        bch.iter(|| {
            a.matmul_into(&b, &mut out);
            std::hint::black_box(out.data()[0])
        })
    });

    // The backward pass's gradient accumulation for the same layer.
    let at = fill(64, 256, 3);
    let grad = fill(64, 256, 4);
    let mut acc = Matrix::zeros(256, 256);
    group.bench_function("tn_acc_64x256x256", |bch| {
        bch.iter(|| {
            at.matmul_tn_acc(&grad, &mut acc);
            std::hint::black_box(acc.data()[0])
        })
    });

    // The backward pass's input gradient: dL/dz · Wᵀ.
    let bt = fill(256, 256, 5);
    let mut nt_out = Matrix::zeros(64, 256);
    group.bench_function("nt_64x256x256_into", |bch| {
        bch.iter(|| {
            a.matmul_nt_into(&bt, &mut nt_out);
            std::hint::black_box(nt_out.data()[0])
        })
    });

    // Full-network forward passes, f64 blocked vs quantized i8, at serving batch sizes.
    let mut rng = StdRng::seed_from_u64(7);
    let network = DuelingQNetwork::new(&MlpConfig::paper_q_network(STATE_DIM, 2), 2, &mut rng);
    let quantized = QuantizedNetwork::from_dueling(&network);
    let mut scratch = QuantScratch::new();
    for (label, rows) in [("batch1", 1), ("batch64", 64)] {
        let x = fill(rows, STATE_DIM, 11);
        group.bench_function(&format!("dueling_forward_f64_{label}"), |bch| {
            bch.iter(|| std::hint::black_box(network.forward(&x).data()[0]))
        });
        group.bench_function(&format!("dueling_forward_i8_{label}"), |bch| {
            bch.iter(|| std::hint::black_box(quantized.forward_batch_into(&x, &mut scratch)[0]))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_matmul_kernels);
criterion_main!(benches);
