//! Micro-benchmarks of the substrates the evaluation pipeline is built on: synthetic log
//! generation, per-minute merging, RF prediction, Q-network inference and one DQN
//! training step. These are the ablation-level numbers behind the end-to-end figure
//! benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use uerl_core::event_stream::TimelineSet;
use uerl_core::rf_dataset::build_rf_dataset_1day;
use uerl_core::state::STATE_DIM;
use uerl_forest::{RandomForest, RandomForestConfig};
use uerl_nn::{DuelingQNetwork, Matrix, MlpConfig};
use uerl_rl::{AgentConfig, DqnAgent, Transition};
use uerl_trace::generator::{SyntheticLogConfig, TraceGenerator};
use uerl_trace::reduction::preprocess;

fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    group.bench_function("trace_generation_60_nodes_90_days", |b| {
        b.iter(|| {
            let log = TraceGenerator::new(SyntheticLogConfig::small(60, 90, 1)).generate();
            std::hint::black_box(log.len())
        })
    });

    let log = TraceGenerator::new(SyntheticLogConfig::small(60, 90, 2)).generate();
    group.bench_function("per_minute_merge", |b| {
        b.iter(|| std::hint::black_box(log.merged_events().len()))
    });

    let timelines = TimelineSet::from_log(&preprocess(&log));
    let (dataset, _) = build_rf_dataset_1day(&timelines);
    let forest = RandomForest::fit(&dataset, &RandomForestConfig::small(3));
    let sample = dataset.features_of(0).to_vec();
    group.bench_function("random_forest_predict", |b| {
        b.iter(|| std::hint::black_box(forest.predict_proba(&sample)))
    });

    let mut rng = StdRng::seed_from_u64(3);
    let network = DuelingQNetwork::new(&MlpConfig::paper_q_network(STATE_DIM, 2), 2, &mut rng);
    let batch = Matrix::from_vec(32, STATE_DIM, vec![0.1; 32 * STATE_DIM]);
    group.bench_function("dueling_q_network_forward_batch32", |b| {
        b.iter(|| std::hint::black_box(network.forward(&batch).rows()))
    });

    let mut agent = DqnAgent::new(AgentConfig::small(STATE_DIM).with_seed(4));
    for i in 0..256 {
        agent.observe(Transition::terminal(vec![0.1; STATE_DIM], i % 2, -1.0));
    }
    group.bench_function("dqn_train_step_batch32", |b| {
        b.iter(|| std::hint::black_box(agent.train_step()))
    });

    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
