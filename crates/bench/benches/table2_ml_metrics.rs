//! Table 2 benchmark: the classical machine-learning metrics for every approach,
//! including the three cost-conditioned RL rows.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use uerl_eval::experiments::table2;

fn bench_table2(c: &mut Criterion) {
    let ctx = uerl_bench::bench_context(105);
    let mut group = c.benchmark_group("table2_ml_metrics");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    group.bench_function("all_approaches", |b| {
        b.iter(|| {
            let result = table2::run(&ctx);
            std::hint::black_box(result.rows.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
