//! Regenerate Figure 3: total cost (UE + mitigation) for mitigation costs of 2, 5 and 10
//! node-minutes, all eight policies. Scale is selected with `UERL_SCALE`.

use uerl_bench::Scale;
use uerl_eval::experiments::fig3;

fn main() {
    let scale = Scale::from_env();
    let ctx = uerl_bench::context(scale, 2024);
    eprintln!("[fig3] scale={} scenario={}", scale.label(), ctx.label);
    let result = fig3::run(&ctx, &[2.0, 5.0, 10.0]);
    println!("{}", result.render());
}
