//! Regenerate Figure 4: per-split total cost from the time-series nested
//! cross-validation at the 2 node-minute mitigation cost. Scale via `UERL_SCALE`.

use uerl_bench::Scale;
use uerl_eval::experiments::fig4;

fn main() {
    let scale = Scale::from_env();
    let ctx = uerl_bench::context(scale, 2024);
    eprintln!("[fig4] scale={} scenario={}", scale.label(), ctx.label);
    let result = fig4::run(&ctx);
    println!("{}", result.render());
}
