//! Regenerate Figure 5: total cost per DRAM manufacturer (MN/All, MN/A, MN/B, MN/C,
//! MN/ABC). Scale via `UERL_SCALE`.

use uerl_bench::Scale;
use uerl_eval::experiments::fig5;

fn main() {
    let scale = Scale::from_env();
    let ctx = uerl_bench::context(scale, 2024);
    eprintln!("[fig5] scale={} scenario={}", scale.label(), ctx.label);
    let result = fig5::run(&ctx);
    println!("{}", result.render());
}
