//! Regenerate Figure 6: the RL agent's mitigation-fraction map over potential UE cost
//! (log x-axis) and UE likelihood (RF-probability y-axis). Scale via `UERL_SCALE`.

use uerl_bench::Scale;
use uerl_eval::experiments::fig6;

fn main() {
    let scale = Scale::from_env();
    let ctx = uerl_bench::context(scale, 2024);
    eprintln!("[fig6] scale={} scenario={}", scale.label(), ctx.label);
    let result = fig6::run(&ctx, 12, 10);
    println!("{}", result.render());
}
