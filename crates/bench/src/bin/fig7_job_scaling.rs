//! Regenerate Figure 7: total cost (7a) and mitigation cost (7b) as a function of the
//! job-size scaling factor. Scale via `UERL_SCALE`.

use uerl_bench::Scale;
use uerl_eval::experiments::fig7;

fn main() {
    let scale = Scale::from_env();
    let ctx = uerl_bench::context(scale, 2024);
    eprintln!("[fig7] scale={} scenario={}", scale.label(), ctx.label);
    let result = fig7::run(&ctx, &[0.1, 0.3, 1.0, 3.0, 10.0]);
    println!("{}", result.render());
}
