//! `perf_report` — the repo's perf-trajectory baseline.
//!
//! Times a `pool_overhead` microbench (many tiny parallel calls through the persistent
//! work-stealing pool), every figure/table pipeline, the two-round RL hyperparameter
//! search, a `halving_vs_exhaustive` comparison (the paper's 60+20 candidate search
//! run once through the successive-halving driver and once exhaustively, with the
//! survivor trace in the fingerprint), a `matmul_kernels` microbench (the cache-blocked
//! `Matrix` kernel family at serving- and training-shaped GEMMs, with the output bits
//! in the fingerprint and GFLOP/s in the JSON), a `serve_throughput` stage (a scaled-up
//! synthetic fleet streamed through the online `uerl-serve` subsystem, with the
//! serving-vs-offline parity verdict in the fingerprint) and a `quant_parity` stage
//! (the same serving stream replayed decision-for-decision under the full-precision
//! and the symmetric-i8 inference paths, reporting the decision-match rate and total
//! cost delta — the quantization metric the paper never reports) and a
//! `session_memory` stage (a totals-only serving fleet measured at half-stream and at
//! the end: bytes/node, feature-history extremes and the O(window) verdict — the
//! longest ring buffer must not exceed the densest 1-hour event window plus its
//! sentinel) and an `obs_overhead` stage (the same serving stream timed with the
//! `UERL_METRICS` gate closed and open, best-of-three each: the open gate must cost at
//! most 3% throughput and must not move a single served bit; a third leg adds shadow
//! policies and lands their counterfactual scoreboard plus the cost regret in the
//! JSON) at the selected `UERL_SCALE` (default `small`) twice — once pinned to a
//! single thread and once with the ambient thread count — and writes `BENCH_PR10.json`
//! with per-stage wall times,
//! the thread count, the speedup, whether the stage output was byte-identical across
//! thread counts (it must be: every parallel fan-out in the engine merges in
//! deterministic order), the halving-vs-exhaustive training-step totals (halving must
//! train strictly fewer), the serving events/sec + parity flag (served decisions and
//! costs must be bit-identical to the offline evaluator) and the i8 decision-match
//! rate (the run fails below 99%).
//!
//! The checked-in baseline may come from a **single-core container**, where every
//! parallel call short-circuits to the serial path (speedup ≈ 1.0 by construction);
//! re-run on a multi-core box for real numbers. At `UERL_SCALE=paper` the serving
//! stage streams the full ~million-event two-year fleet reconstruction.
//!
//! Usage:
//! ```text
//! UERL_SCALE=small cargo run --release -p uerl-bench --bin perf_report
//! RAYON_NUM_THREADS=8 cargo run --release -p uerl-bench --bin perf_report
//! cargo run --release -p uerl-bench --bin perf_report -- --stage serve_throughput
//! ```
//!
//! `--stage <name>` (repeatable) runs only the named stages; the JSON then contains
//! only those stages' sections.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use uerl_bench::Scale;
use uerl_core::event_stream::TimelineSet;
use uerl_core::policies::AlwaysMitigate;
use uerl_core::policies::NeverMitigate;
use uerl_core::policies::{QuantMode, RlPolicy};
use uerl_core::rf_dataset::build_rf_dataset_1day;
use uerl_core::state::STATE_DIM;
use uerl_core::trainer::{RlTrainer, TrainerConfig, TRAIN_COST_SECONDS_PER_STEP};
use uerl_core::MitigationConfig;
use uerl_eval::evaluator::{dqn_candidate_evaluator, dqn_candidate_session_factory};
use uerl_eval::experiments::common::clear_prefix_cache;
use uerl_eval::experiments::{fig3, fig4, fig5, fig6, fig7, table2};
use uerl_eval::run::run_policy;
use uerl_eval::scenario::ExperimentContext;
use uerl_forest::{RandomForest, RandomForestConfig};
use uerl_jobs::{JobLogConfig, JobTraceGenerator, NodeJobSampler};
use uerl_nn::Matrix;
use uerl_rl::HyperSearch;
use uerl_serve::{
    merged_fleet_stream, FleetServer, RecordRetention, ServeConfig, ServeReport, ShadowPolicy,
};
use uerl_trace::generator::{SyntheticLogConfig, TraceGenerator};
use uerl_trace::reduction::preprocess;

/// `quant_parity` metrics for the JSON summary:
/// (decisions, matches, match rate, f64 total cost, i8 total cost, cost delta %).
type QuantStats = (u64, u64, f64, f64, f64, f64);

struct StageReport {
    name: &'static str,
    serial_secs: f64,
    parallel_secs: f64,
    deterministic: bool,
}

impl StageReport {
    fn speedup(&self) -> f64 {
        if self.parallel_secs > 0.0 {
            self.serial_secs / self.parallel_secs
        } else {
            1.0
        }
    }
}

/// A named pipeline stage: runs the pipeline and returns a fingerprint of its output.
type Stage = Box<dyn Fn() -> String>;

fn time_run(f: &dyn Fn() -> String) -> (f64, String) {
    let t0 = Instant::now();
    let output = f();
    (t0.elapsed().as_secs_f64(), output)
}

fn main() {
    let scale = Scale::from_env();
    let threads = rayon::current_num_threads();
    let stage_filter = parse_stage_filter();
    let ctx = uerl_bench::context(scale, 2024);
    eprintln!(
        "[perf_report] scale={} scenario={} threads={}",
        scale.label(),
        ctx.label,
        threads
    );

    let forest_stage = |ctx: &ExperimentContext| -> String {
        let (mut dataset, _) = build_rf_dataset_1day(&ctx.timelines);
        if dataset.is_empty() {
            dataset.push(vec![0.0; STATE_DIM - 1], false);
        }
        let mut config = RandomForestConfig::sc20(STATE_DIM - 1, ctx.seed);
        config.n_trees = 100;
        let forest = RandomForest::fit(&dataset, &config);
        // Fingerprint: per-tree node counts plus a probe prediction.
        let probe = vec![0.5; STATE_DIM - 1];
        format!(
            "trees={} p={:.12}",
            forest.n_trees(),
            forest.predict_proba(&probe)
        )
    };

    // The parallel two-round hyperparameter search (the per-split RL stage of the
    // evaluation protocol): enough candidates to expose the fan-out even at the small
    // scale, with a fingerprint covering the winner, the charged search cost and a
    // probe of the winning network's Q-values.
    let hyper_stage = |ctx: &ExperimentContext| -> String {
        let sampler = ctx.job_sampler(1.0);
        let seed = ctx.seed ^ 0x5EA7;
        let search = HyperSearch::reduced(8, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = search.run_parallel(
            &mut rng,
            dqn_candidate_evaluator(
                &ctx.timelines,
                &ctx.timelines,
                &sampler,
                ctx.mitigation,
                seed,
                ctx.budget.rl_episodes,
            ),
        );
        let probe = vec![0.25; STATE_DIM];
        let q = outcome.best.agent().q_values(&probe);
        format!(
            "candidates={} best={} lr={:.12e} score={:.12} cost={:.12} q={:?}",
            outcome.candidates.len(),
            outcome.best_index,
            outcome.best_params.learning_rate,
            outcome.best_score,
            outcome.total_cost,
            q
        )
    };

    // Halving-vs-exhaustive comparison at the paper's search breadth (60 broad + 20
    // narrowed candidates, episode budget of the selected scale): both drivers run on
    // identical pre-drawn candidates from the same search seed, and the fingerprint
    // covers each driver's winner, charged cost, the halving survivor trace (so the
    // serial-vs-parallel byte compare pins rung-level determinism across thread
    // counts) and the derived training-step totals. The step totals of the last run
    // land in `halving_stats` for the JSON summary: the halving search must train
    // strictly fewer steps at the paper budget.
    let halving_stats: Arc<Mutex<Option<(u64, u64, bool)>>> = Arc::new(Mutex::new(None));
    let halving_stage = {
        let stats = Arc::clone(&halving_stats);
        move |ctx: &ExperimentContext| -> String {
            let sampler = ctx.job_sampler(1.0);
            let seed = ctx.seed ^ 0xBA17;
            let search = HyperSearch::paper();
            let episodes = ctx.budget.rl_episodes;
            let steps_of = |cost: f64| (cost * 3600.0 / TRAIN_COST_SECONDS_PER_STEP).round() as u64;

            let full_steps = uerl_eval::evaluator::estimated_full_steps(&ctx.timelines, episodes);
            let halving = {
                let mut rng = StdRng::seed_from_u64(seed);
                search.run_halving(
                    &mut rng,
                    full_steps,
                    dqn_candidate_session_factory(
                        &ctx.timelines,
                        &ctx.timelines,
                        &sampler,
                        ctx.mitigation,
                        seed,
                        episodes,
                    ),
                )
            };
            let exhaustive = {
                let mut rng = StdRng::seed_from_u64(seed);
                search.run_parallel(
                    &mut rng,
                    dqn_candidate_evaluator(
                        &ctx.timelines,
                        &ctx.timelines,
                        &sampler,
                        ctx.mitigation,
                        seed,
                        episodes,
                    ),
                )
            };
            let halving_steps = steps_of(halving.search.total_cost);
            let exhaustive_steps = steps_of(exhaustive.total_cost);
            *stats.lock().expect("halving stats poisoned") = Some((
                halving_steps,
                exhaustive_steps,
                halving_steps < exhaustive_steps,
            ));
            let trace: String = halving
                .rungs
                .iter()
                .map(|r| {
                    format!(
                        "r{}{}b{}:{:?};",
                        r.rung,
                        if r.refined { "'" } else { "" },
                        r.budget,
                        r.survivors
                    )
                })
                .collect();
            format!(
                "halving: best={} lr={:.12e} score={:.12} cost={:.12} steps={halving_steps} | \
                 exhaustive: best={} lr={:.12e} score={:.12} cost={:.12} steps={exhaustive_steps} | \
                 fewer={} trace={trace}",
                halving.search.best_index,
                halving.search.best_params.learning_rate,
                halving.search.best_score,
                halving.search.total_cost,
                exhaustive.best_index,
                exhaustive.best_params.learning_rate,
                exhaustive.best_score,
                exhaustive.total_cost,
                halving_steps < exhaustive_steps,
            )
        }
    };

    // Online-serving throughput: a scaled-up synthetic fleet (the paper scale streams
    // the full ~million-event two-year reconstruction) served end-to-end through
    // `uerl-serve` — sharded per-node state, event-time ticks, micro-batched DQN
    // inference — with the offline `run_policy` rollout of the same timelines as the
    // parity oracle. The fingerprint covers the decision/cost totals (bit patterns), a
    // digest of every served decision and the parity verdict, so the serial-vs-parallel
    // byte compare pins the serving path's thread-count determinism; the events/sec of
    // the last run lands in `serve_stats` for the JSON summary. Wall time stays out of
    // the fingerprint.
    let serve_stats: Arc<Mutex<Option<(u64, f64, bool)>>> = Arc::new(Mutex::new(None));
    let serve_stage = {
        let stats = Arc::clone(&serve_stats);
        move |scale: Scale, seed: u64| -> String {
            let (nodes, days) = match scale {
                Scale::Small => (600, 365),
                Scale::Laptop => (1200, 730),
                Scale::Paper => (3056, 730),
            };
            let log = TraceGenerator::new(SyntheticLogConfig::small(nodes, days, seed)).generate();
            let timelines = TimelineSet::from_log(&preprocess(&log));
            let jobs = JobTraceGenerator::new(JobLogConfig::small(512, 180, seed)).generate();
            let sampler = NodeJobSampler::from_log(&jobs);
            let mitigation = MitigationConfig::paper_default();

            // A small agent trained briefly on the fleet is the serving policy: the
            // stage measures inference-side throughput, not training.
            let trainer = RlTrainer::new(TrainerConfig::reduced(12).with_seed(seed));
            let mut agent = trainer.train(&timelines, &sampler).agent;
            agent.compact_for_inference();
            // The configured quantization mode (UERL_QUANT) selects the serving
            // inference path; the default full-precision run is the one gated on
            // bit-parity below. Full retention: the parity oracle compares the
            // per-node decision logs entry for entry.
            let config = ServeConfig::for_timelines(&timelines, mitigation, seed)
                .with_retention(RecordRetention::Full);
            let policy = config.apply_quant(RlPolicy::new(agent));

            let stream = merged_fleet_stream(&timelines);
            let events = stream.len() as u64;
            let mut server = FleetServer::new(config, policy.clone(), sampler.clone());
            let mut decisions = Vec::new();
            let t0 = Instant::now();
            server
                .ingest_all(stream, &mut decisions)
                .expect("merged stream is time-ordered");
            let serve_secs = t0.elapsed().as_secs_f64();
            let events_per_sec = events as f64 / serve_secs.max(1e-9);
            let report = server.report();

            // Parity oracle: the offline evaluator over the same timelines.
            let offline = run_policy(&policy, &timelines, &sampler, mitigation, seed);
            let parity = report.mitigations == offline.mitigations
                && report.non_mitigations == offline.non_mitigations
                && report.ue_count == offline.ue_count
                && report.mitigation_cost.to_bits() == offline.mitigation_cost.to_bits()
                && report.ue_cost.to_bits() == offline.ue_cost.to_bits()
                && report
                    .per_node
                    .iter()
                    .flat_map(|n| n.decisions.iter().map(|&(t, m)| (n.node, t, m)))
                    .eq(offline
                        .decisions
                        .iter()
                        .map(|d| (d.node, d.time, d.mitigated)));

            // FNV-1a digest over the served decision log.
            let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
            for d in &decisions {
                for word in [u64::from(d.node.0), d.time.0 as u64, u64::from(d.mitigated)] {
                    for byte in word.to_le_bytes() {
                        digest ^= u64::from(byte);
                        digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                }
            }
            *stats.lock().expect("serve stats poisoned") = Some((events, events_per_sec, parity));
            format!(
                "events={events} nodes={} decisions={} mitigations={} ue={} \
                 mit_cost={:016x} ue_cost={:016x} digest={digest:016x} parity={parity}",
                report.per_node.len(),
                decisions.len(),
                report.mitigations,
                report.ue_count,
                report.mitigation_cost.to_bits(),
                report.ue_cost.to_bits(),
            )
        }
    };

    // Session-memory audit: a totals-only serving fleet (the production retention)
    // driven to half-stream ("warm") and then to the end, measuring per-node session
    // footprint and feature-history length at both points. The fingerprint covers the
    // byte totals, the history extremes and the **bounded verdict**: the longest
    // history ring buffer must not exceed the densest 1-hour event window any node
    // ever produced, plus the one sentinel entry — the O(window) claim as a gate, on
    // real fleet data rather than a synthetic unit fixture. The last run's numbers
    // land in `session_stats` for the JSON summary.
    type SessionStats = (u64, u64, usize, u64, usize, usize, bool);
    let session_stats: Arc<Mutex<Option<SessionStats>>> = Arc::new(Mutex::new(None));
    let session_memory_stage = {
        let stats = Arc::clone(&session_stats);
        move |scale: Scale, seed: u64| -> String {
            let (nodes, days) = match scale {
                Scale::Small => (300, 365),
                Scale::Laptop => (600, 730),
                Scale::Paper => (3056, 730),
            };
            let log = TraceGenerator::new(SyntheticLogConfig::small(nodes, days, seed)).generate();
            let timelines = TimelineSet::from_log(&preprocess(&log));
            let jobs = JobTraceGenerator::new(JobLogConfig::small(512, 180, seed)).generate();
            let sampler = NodeJobSampler::from_log(&jobs);
            let config =
                ServeConfig::for_timelines(&timelines, MitigationConfig::paper_default(), seed)
                    .with_retention(RecordRetention::TotalsOnly);
            let mut server = FleetServer::new(config, AlwaysMitigate, sampler);

            let stream = merged_fleet_stream(&timelines);
            let half = stream.len() / 2;
            let mut out = Vec::new();
            let measure = |server: &FleetServer<AlwaysMitigate>| {
                let mut sessions = 0u64;
                let mut bytes = 0u64;
                let mut max_history = 0usize;
                for session in server.sessions() {
                    sessions += 1;
                    bytes += session.approx_bytes() as u64;
                    max_history = max_history.max(session.history_len());
                }
                (sessions, bytes, max_history)
            };
            for event in &stream[..half] {
                server
                    .ingest(event.clone(), &mut out)
                    .expect("time-ordered");
            }
            server.flush(&mut out);
            let (_, warm_bytes, warm_max_history) = measure(&server);
            for event in &stream[half..] {
                server
                    .ingest(event.clone(), &mut out)
                    .expect("time-ordered");
            }
            server.flush(&mut out);
            let (sessions, end_bytes, end_max_history) = measure(&server);

            // The oracle for the O(window) verdict: the densest 1-hour event window
            // any node ever produced (two-pointer sweep per timeline). The ring
            // buffer may hold at most that many entries plus the sentinel.
            let mut window_bound = 0usize;
            for timeline in timelines.timelines() {
                let times: Vec<i64> = timeline.events().iter().map(|e| e.time.0).collect();
                let mut lo = 0usize;
                for hi in 0..times.len() {
                    while times[lo] <= times[hi] - uerl_core::features::HISTORY_WINDOW_SECS {
                        lo += 1;
                    }
                    window_bound = window_bound.max(hi - lo + 1);
                }
            }
            let bounded = end_max_history <= window_bound + 1;
            *stats.lock().expect("session stats poisoned") = Some((
                sessions,
                warm_bytes,
                warm_max_history,
                end_bytes,
                end_max_history,
                window_bound,
                bounded,
            ));
            format!(
                "sessions={sessions} warm_bytes={warm_bytes} warm_max_history={warm_max_history} \
                 end_bytes={end_bytes} end_max_history={end_max_history} \
                 window_bound={window_bound} bounded={bounded}"
            )
        }
    };

    // Observability-overhead audit: the same serving stream timed with the metrics
    // gate closed and open (no shadows), best-of-three each — the open gate must cost
    // at most 3% throughput and must not move a single served bit. A third leg mounts
    // shadow baselines (Always-/Never-mitigate) and lands their counterfactual
    // scoreboard plus the served policy's cost regret in the JSON summary. The stage
    // fingerprint covers only event-time outputs (report bits, parity verdicts, shadow
    // totals) — wall times and the process-cumulative registry stay out of it, so the
    // serial-vs-parallel byte compare still pins thread-count determinism.
    type ObsStats = (u64, f64, f64, f64, bool, f64, Vec<(String, f64)>);
    let obs_stats: Arc<Mutex<Option<ObsStats>>> = Arc::new(Mutex::new(None));
    let obs_overhead_stage = {
        let stats = Arc::clone(&obs_stats);
        move |scale: Scale, seed: u64| -> String {
            let (nodes, days) = match scale {
                Scale::Small => (600, 365),
                Scale::Laptop => (1200, 730),
                Scale::Paper => (3056, 730),
            };
            let log = TraceGenerator::new(SyntheticLogConfig::small(nodes, days, seed)).generate();
            let timelines = TimelineSet::from_log(&preprocess(&log));
            let jobs = JobTraceGenerator::new(JobLogConfig::small(512, 180, seed)).generate();
            let sampler = NodeJobSampler::from_log(&jobs);
            let mitigation = MitigationConfig::paper_default();
            let trainer = RlTrainer::new(TrainerConfig::reduced(12).with_seed(seed));
            let mut agent = trainer.train(&timelines, &sampler).agent;
            agent.compact_for_inference();
            let policy = RlPolicy::new(agent);

            let serve_once = |with_shadows: bool| {
                let config = ServeConfig::for_timelines(&timelines, mitigation, seed);
                let mut server = FleetServer::new(config, policy.clone(), sampler.clone());
                if with_shadows {
                    server = server.with_shadow_policies(vec![
                        Arc::new(AlwaysMitigate) as ShadowPolicy,
                        Arc::new(NeverMitigate) as ShadowPolicy,
                    ]);
                }
                let stream = merged_fleet_stream(&timelines);
                let mut decisions = Vec::new();
                let t0 = Instant::now();
                server
                    .ingest_all(stream, &mut decisions)
                    .expect("merged stream is time-ordered");
                let secs = t0.elapsed().as_secs_f64();
                (secs, server.report(), server.shadow_report())
            };
            // One timed leg serves the stream twice (two fresh servers): a scheduler
            // spike of a few milliseconds is then half the relative error it would be
            // against a single ~0.3 s serve.
            let timed_leg = |gate_open: bool| {
                uerl_obs::set_enabled(gate_open);
                let (s1, _, _) = serve_once(false);
                let (s2, r, _) = serve_once(false);
                (s1 + s2, r)
            };
            // The audited quantity is a *difference* (the open gate's cost), so it is
            // measured as back-to-back off/on pairs: each pair shares whatever the
            // machine was doing in its ~one-second window (CPU frequency, page
            // cache, a co-tenant waking up), so the drift cancels inside the pair,
            // and the *second-smallest* of the seven pair overheads is the audited
            // number. Scheduler noise on a shared single core is one-sided — a
            // spike only ever slows a leg down — so medians and means read high by
            // several percent, and the raw minimum can swing far negative when a
            // spike lands on a pair's off leg; the second order statistic tolerates
            // one such outlier while still estimating the intrinsic gate cost. A
            // genuine regression (the pre-optimization hot path measured ~10%)
            // elevates every pair, cleanest included. The legs alternate order
            // between pairs (off/on, on/off, …) so whichever warm-up/decay a pair
            // carries does not always land on the same leg. Per-leg minima are kept
            // only for the reported absolute throughputs.
            let was_enabled = uerl_obs::enabled();
            let mut off_secs = f64::INFINITY;
            let mut on_secs = f64::INFINITY;
            let mut pair_overheads = Vec::new();
            let mut off_report = None;
            let mut on_report = None;
            for pair in 0..7 {
                let (off, on, off_r, on_r) = if pair % 2 == 0 {
                    let (off, off_r) = timed_leg(false);
                    let (on, on_r) = timed_leg(true);
                    (off, on, off_r, on_r)
                } else {
                    let (on, on_r) = timed_leg(true);
                    let (off, off_r) = timed_leg(false);
                    (off, on, off_r, on_r)
                };
                off_secs = off_secs.min(off / 2.0);
                on_secs = on_secs.min(on / 2.0);
                off_report = Some(off_r);
                on_report = Some(on_r);
                pair_overheads.push((on - off) / off.max(1e-9) * 100.0);
            }
            pair_overheads.sort_by(|a, b| a.total_cmp(b));
            let off_report = off_report.expect("seven off runs happened");
            let on_report = on_report.expect("seven on runs happened");
            uerl_obs::set_enabled(true);
            let (_, shadow_report, shadow_scores) = serve_once(true);
            uerl_obs::set_enabled(was_enabled);

            let events = off_report.events;
            let off_eps = events as f64 / off_secs.max(1e-9);
            let on_eps = events as f64 / on_secs.max(1e-9);
            let overhead_pct = pair_overheads[1];
            // The inertness gate: the open gate (and the shadow lanes) must not move
            // a single served bit relative to the closed gate.
            let parity = off_report == on_report && off_report == shadow_report;
            let best_shadow = shadow_scores
                .iter()
                .map(|s| s.total_cost())
                .fold(f64::INFINITY, f64::min);
            let regret = shadow_report.total_cost() - best_shadow;
            let scoreboard: Vec<(String, f64)> = shadow_scores
                .iter()
                .map(|s| (s.policy.clone(), s.total_cost()))
                .collect();

            let shadow_bits: String = shadow_scores
                .iter()
                .map(|s| {
                    format!(
                        "{}:m{}u{}:{:016x}:{:016x};",
                        s.policy,
                        s.mitigations,
                        s.ue_count,
                        s.mitigation_cost.to_bits(),
                        s.ue_cost.to_bits()
                    )
                })
                .collect();
            *stats.lock().expect("obs stats poisoned") = Some((
                events,
                off_eps,
                on_eps,
                overhead_pct,
                parity,
                regret,
                scoreboard,
            ));
            format!(
                "events={events} mit_cost={:016x} ue_cost={:016x} parity={parity} \
                 regret={:016x} shadows={shadow_bits}",
                off_report.mitigation_cost.to_bits(),
                off_report.ue_cost.to_bits(),
                regret.to_bits(),
            )
        }
    };

    // Kernel microbench: the cache-blocked `Matrix` family (NN forward, TN-accumulate
    // backward, NT backward) at serving-shaped and training-shaped GEMMs. The
    // fingerprint is an FNV digest over the exact output bits — any change to a
    // kernel's reduction order shows up here before it shows up as a parity failure —
    // and the per-family GFLOP/s of the last run lands in `kernel_stats` for the JSON
    // summary (wall time stays out of the fingerprint).
    let kernel_stats: Arc<Mutex<Option<(f64, f64, f64)>>> = Arc::new(Mutex::new(None));
    let matmul_stage = {
        let stats = Arc::clone(&kernel_stats);
        move || -> String {
            fn fnv(digest: &mut u64, bits: u64) {
                for byte in bits.to_le_bytes() {
                    *digest ^= u64::from(byte);
                    *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
                }
            }
            fn fill(rows: usize, cols: usize, salt: usize) -> Matrix {
                Matrix::from_fn(rows, cols, |i, j| {
                    ((i * 31 + j * 17 + salt) as f64 * 0.193).sin()
                })
            }
            // (m, k, n): a serving micro-batch through the small trunk, the paper
            // trunk's widest layer, a single-row forward and a ragged edge-tile shape.
            let shapes = [(64, 256, 256), (64, 15, 32), (1, 15, 32), (13, 37, 19)];
            let reps = 40;
            let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
            let mut flops = [0.0f64; 3];
            let mut secs = [0.0f64; 3];
            for (si, &(m, k, n)) in shapes.iter().enumerate() {
                let a = fill(m, k, si);
                let b = fill(k, n, si + 7);
                let bt = fill(n, k, si + 13);
                let mut out = Matrix::zeros(1, 1);
                let t0 = Instant::now();
                for _ in 0..reps {
                    a.matmul_into(&b, &mut out);
                }
                secs[0] += t0.elapsed().as_secs_f64();
                flops[0] += (2 * m * k * n * reps) as f64;
                for &v in out.data() {
                    fnv(&mut digest, v.to_bits());
                }
                // TN takes the left operand pre-transposed: (k×m)ᵀ · (k×n) → m×n.
                let at = fill(k, m, si + 3);
                let mut acc = Matrix::zeros(m, n);
                let t0 = Instant::now();
                for _ in 0..reps {
                    at.matmul_tn_acc(&b, &mut acc);
                }
                secs[1] += t0.elapsed().as_secs_f64();
                flops[1] += (2 * m * k * n * reps) as f64;
                for &v in acc.data() {
                    fnv(&mut digest, v.to_bits());
                }
                let t0 = Instant::now();
                for _ in 0..reps {
                    a.matmul_nt_into(&bt, &mut out);
                }
                secs[2] += t0.elapsed().as_secs_f64();
                flops[2] += (2 * m * k * n * reps) as f64;
                for &v in out.data() {
                    fnv(&mut digest, v.to_bits());
                }
            }
            let gflops = |i: usize| flops[i] / secs[i].max(1e-12) / 1e9;
            *stats.lock().expect("kernel stats poisoned") = Some((gflops(0), gflops(1), gflops(2)));
            format!("shapes={} reps={reps} digest={digest:016x}", shapes.len())
        }
    };

    // Quantization parity: the same small-scale fleet stream served twice — once with
    // the full-precision f64 policy (the oracle) and once with its symmetric-i8 mirror
    // — and compared decision-for-decision. The decision request sequence is identical
    // in both runs (one request per non-fatal event), so the match rate is
    // well-defined; the fingerprint covers both decision digests, the match count and
    // the cost bits, and the last run's metrics land in `quant_stats` for the JSON
    // summary. The run fails below a 99% match rate.
    let quant_stats: Arc<Mutex<Option<QuantStats>>> = Arc::new(Mutex::new(None));
    let quant_stage = {
        let stats = Arc::clone(&quant_stats);
        move |seed: u64| -> String {
            let log = TraceGenerator::new(SyntheticLogConfig::small(120, 180, seed)).generate();
            let timelines = TimelineSet::from_log(&preprocess(&log));
            let jobs = JobTraceGenerator::new(JobLogConfig::small(256, 120, seed)).generate();
            let sampler = NodeJobSampler::from_log(&jobs);
            let mitigation = MitigationConfig::paper_default();
            let trainer = RlTrainer::new(TrainerConfig::reduced(12).with_seed(seed));
            let mut agent = trainer.train(&timelines, &sampler).agent;
            agent.compact_for_inference();
            let full_policy = RlPolicy::new(agent);
            let i8_policy = full_policy.clone().with_quantization(QuantMode::I8);

            let serve = |policy: &RlPolicy| {
                let config = ServeConfig::for_timelines(&timelines, mitigation, seed)
                    .with_quant(QuantMode::Off); // the policy's own path decides
                let mut server = FleetServer::new(config, policy.clone(), sampler.clone());
                let mut decisions = Vec::new();
                server
                    .ingest_all(merged_fleet_stream(&timelines), &mut decisions)
                    .expect("merged stream is time-ordered");
                (decisions, server.report())
            };
            let (full_decisions, full_report) = serve(&full_policy);
            let (i8_decisions, i8_report) = serve(&i8_policy);
            assert_eq!(
                full_decisions.len(),
                i8_decisions.len(),
                "both paths must answer the same request stream"
            );
            let total = full_decisions.len() as u64;
            assert!(total > 0, "the quant-parity fleet must produce decisions");
            let matches = full_decisions
                .iter()
                .zip(&i8_decisions)
                .filter(|(a, b)| {
                    assert_eq!(
                        (a.node, a.time),
                        (b.node, b.time),
                        "request streams diverged"
                    );
                    a.mitigated == b.mitigated
                })
                .count() as u64;
            let match_rate = matches as f64 / total as f64;
            let total_cost = |r: &ServeReport| r.mitigation_cost + r.ue_cost;
            let full_cost = total_cost(&full_report);
            let i8_cost = total_cost(&i8_report);
            let delta_pct = (i8_cost - full_cost) / full_cost.max(1e-12) * 100.0;
            *stats.lock().expect("quant stats poisoned") =
                Some((total, matches, match_rate, full_cost, i8_cost, delta_pct));
            format!(
                "decisions={total} matches={matches} rate={match_rate:.6} \
                 full_cost={:016x} i8_cost={:016x}",
                full_cost.to_bits(),
                i8_cost.to_bits(),
            )
        }
    };

    // Pool-overhead microbench: many tiny parallel calls, the pattern that made the old
    // per-call fork-join (a thread spawn + join per `par_iter`) hurt most. With the
    // persistent pool each call is queue traffic only, so the serial/pooled gap here
    // isolates dispatch overhead from real work. Two flavors: indexed fan-outs
    // (join-splitting under the hood) and scope/spawn bursts. The fingerprint is an
    // accumulated sum that any dropped or double-run item would change; the spawn sum
    // goes through wrapping u64 addition, which commutes, so the digest is independent
    // of the (intentionally unordered) spawn schedule.
    let pool_overhead_stage = || -> String {
        let mut acc = 0u64;
        for round in 0..256u64 {
            let out: Vec<u64> = (0..64)
                .into_par_iter()
                .map(|i| (i as u64).wrapping_mul(round + 1).rotate_left(7))
                .collect();
            acc = acc.wrapping_add(out.into_iter().sum::<u64>());
        }
        for round in 0..64u64 {
            let sum = std::sync::atomic::AtomicU64::new(0);
            rayon::scope(|s| {
                for i in 0..64u64 {
                    let sum = &sum;
                    s.spawn(move |_| {
                        sum.fetch_add(
                            i.wrapping_mul(round + 1).rotate_left(11),
                            std::sync::atomic::Ordering::Relaxed,
                        );
                    });
                }
            });
            acc = acc.wrapping_add(sum.into_inner());
        }
        format!("acc={acc}")
    };

    let stages: Vec<(&'static str, Stage)> = vec![
        ("pool_overhead", Box::new(pool_overhead_stage)),
        ("matmul_kernels", Box::new(matmul_stage)),
        ("forest_fit_100_trees", {
            let ctx = ctx.clone();
            Box::new(move || forest_stage(&ctx))
        }),
        ("hyper_search_rl", {
            let ctx = ctx.clone();
            Box::new(move || hyper_stage(&ctx))
        }),
        ("halving_vs_exhaustive", {
            let ctx = ctx.clone();
            Box::new(move || halving_stage(&ctx))
        }),
        (
            "serve_throughput",
            Box::new(move || serve_stage(scale, 2024 ^ 0x5E17)),
        ),
        (
            "session_memory",
            Box::new(move || session_memory_stage(scale, 2024 ^ 0x3E55)),
        ),
        (
            "obs_overhead",
            Box::new(move || obs_overhead_stage(scale, 2024 ^ 0x0B5E)),
        ),
        ("quant_parity", Box::new(move || quant_stage(2024 ^ 0x0108))),
        ("fig3_total_cost", {
            let ctx = ctx.clone();
            Box::new(move || fig3::run(&ctx, &[2.0, 5.0, 10.0]).render())
        }),
        ("fig4_cross_validation", {
            let ctx = ctx.clone();
            Box::new(move || fig4::run(&ctx).render())
        }),
        ("fig5_manufacturers", {
            let ctx = ctx.clone();
            Box::new(move || fig5::run(&ctx).render())
        }),
        ("fig6_agent_behavior", {
            let ctx = ctx.clone();
            Box::new(move || fig6::run(&ctx, 12, 10).render())
        }),
        ("fig7_job_scaling", {
            let ctx = ctx.clone();
            Box::new(move || fig7::run(&ctx, &[0.1, 0.3, 1.0, 3.0, 10.0]).render())
        }),
        ("table2_ml_metrics", {
            let ctx = ctx.clone();
            Box::new(move || table2::run(&ctx).render())
        }),
    ];

    let stages: Vec<(&'static str, Stage)> = match &stage_filter {
        None => stages,
        Some(wanted) => {
            let known: Vec<&str> = stages.iter().map(|(name, _)| *name).collect();
            for want in wanted {
                assert!(
                    known.contains(&want.as_str()),
                    "unknown --stage {want:?}; available: {known:?}"
                );
            }
            stages
                .into_iter()
                .filter(|(name, _)| wanted.iter().any(|w| w == name))
                .collect()
        }
    };
    assert!(!stages.is_empty(), "no stages selected");

    let serial_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread pool");

    let mut reports = Vec::new();
    for (name, stage) in &stages {
        // Untimed warm-up so neither mode pays first-run allocator/page-cache costs.
        let _ = stage();
        // Each timed run must pay the full pipeline cost, including the prefix hyper
        // search that fig6/table2 memoize — and the serial/parallel byte-compare must
        // re-train, not replay the other mode's cached models.
        clear_prefix_cache();
        let (parallel_secs, parallel_out) = time_run(stage.as_ref());
        clear_prefix_cache();
        let (serial_secs, serial_out) = serial_pool.install(|| time_run(stage.as_ref()));
        let deterministic = parallel_out == serial_out;
        let report = StageReport {
            name,
            serial_secs,
            parallel_secs,
            deterministic,
        };
        eprintln!(
            "[perf_report] {:<24} serial {:>8.3}s  parallel {:>8.3}s  speedup {:>5.2}x  {}",
            report.name,
            report.serial_secs,
            report.parallel_secs,
            report.speedup(),
            if deterministic {
                "deterministic"
            } else {
                "OUTPUT DIVERGED"
            },
        );
        reports.push(report);
    }

    let total_serial: f64 = reports.iter().map(|r| r.serial_secs).sum();
    let total_parallel: f64 = reports.iter().map(|r| r.parallel_secs).sum();
    let all_deterministic = reports.iter().all(|r| r.deterministic);
    let overall_speedup = if total_parallel > 0.0 {
        total_serial / total_parallel
    } else {
        1.0
    };

    let halving = *halving_stats.lock().expect("halving stats poisoned");
    let serving = *serve_stats.lock().expect("serve stats poisoned");
    let kernels = *kernel_stats.lock().expect("kernel stats poisoned");
    let quant = *quant_stats.lock().expect("quant stats poisoned");
    let session_memory = *session_stats.lock().expect("session stats poisoned");
    let obs = obs_stats.lock().expect("obs stats poisoned").clone();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"pr\": 10,\n");
    json.push_str(&format!("  \"scale\": \"{}\",\n", scale.label()));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!(
        "  \"deterministic_across_thread_counts\": {all_deterministic},\n"
    ));
    if let Some((halving_steps, exhaustive_steps, halving_fewer)) = halving {
        json.push_str(&format!(
            "  \"halving_vs_exhaustive\": {{\"halving_steps\": {halving_steps}, \"exhaustive_steps\": {exhaustive_steps}, \"halving_trains_fewer\": {halving_fewer}}},\n"
        ));
    }
    if let Some((events, events_per_sec, parity)) = serving {
        json.push_str(&format!(
            "  \"serve_throughput\": {{\"events\": {events}, \"events_per_sec\": {events_per_sec:.1}, \"parity_with_offline_evaluator\": {parity}}},\n"
        ));
    }
    if let Some((nn, tn, nt)) = kernels {
        json.push_str(&format!(
            "  \"matmul_kernels\": {{\"nn_gflops\": {nn:.3}, \"tn_acc_gflops\": {tn:.3}, \"nt_gflops\": {nt:.3}}},\n"
        ));
    }
    if let Some((decisions, matches, rate, full_cost, i8_cost, delta_pct)) = quant {
        json.push_str(&format!(
            "  \"quant_parity\": {{\"decisions\": {decisions}, \"matches\": {matches}, \"match_rate\": {rate:.6}, \"f64_total_cost\": {full_cost:.6}, \"i8_total_cost\": {i8_cost:.6}, \"cost_delta_pct\": {delta_pct:.4}}},\n"
        ));
    }
    if let Some((sessions, warm_bytes, warm_max_hist, end_bytes, end_max_hist, bound, bounded)) =
        session_memory
    {
        let per_node = |bytes: u64| bytes as f64 / (sessions.max(1)) as f64;
        json.push_str(&format!(
            "  \"session_memory\": {{\"sessions\": {sessions}, \"warm_bytes_per_node\": {:.1}, \"warm_max_history\": {warm_max_hist}, \"end_bytes_per_node\": {:.1}, \"end_max_history\": {end_max_hist}, \"densest_1h_window_events\": {bound}, \"history_bounded_by_window\": {bounded}}},\n",
            per_node(warm_bytes),
            per_node(end_bytes),
        ));
    }
    if let Some((events, off_eps, on_eps, overhead_pct, parity, regret, scoreboard)) = &obs {
        let shadows: String = scoreboard
            .iter()
            .map(|(policy, cost)| {
                format!("{{\"policy\": \"{policy}\", \"total_cost\": {cost:.6}}}")
            })
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "  \"obs_overhead\": {{\"events\": {events}, \"metrics_off_events_per_sec\": {off_eps:.1}, \"metrics_on_events_per_sec\": {on_eps:.1}, \"overhead_pct\": {overhead_pct:.4}, \"bit_parity_off_vs_on\": {parity}, \"shadow_regret_node_hours\": {regret:.6}, \"shadow_scores\": [{shadows}]}},\n"
        ));
    }
    json.push_str(&format!("  \"total_serial_secs\": {total_serial:.6},\n"));
    json.push_str(&format!(
        "  \"total_parallel_secs\": {total_parallel:.6},\n"
    ));
    json.push_str(&format!("  \"overall_speedup\": {overall_speedup:.4},\n"));
    json.push_str("  \"stages\": [\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_secs\": {:.6}, \"parallel_secs\": {:.6}, \"speedup\": {:.4}, \"deterministic\": {}}}{}\n",
            r.name,
            r.serial_secs,
            r.parallel_secs,
            r.speedup(),
            r.deterministic,
            if i + 1 < reports.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    let path = std::env::var("UERL_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR10.json".to_string());
    std::fs::write(&path, &json).expect("write benchmark report");
    if let Some((halving_steps, exhaustive_steps, _)) = halving {
        eprintln!(
            "[perf_report] halving {halving_steps} vs exhaustive {exhaustive_steps} training steps"
        );
    }
    if let Some((events, events_per_sec, parity)) = serving {
        eprintln!(
            "[perf_report] served {events} events at {events_per_sec:.0} events/sec \
             (parity with offline evaluator: {parity})"
        );
    }
    if let Some((nn, tn, nt)) = kernels {
        eprintln!("[perf_report] kernels: NN {nn:.2} / TN-acc {tn:.2} / NT {nt:.2} GFLOP/s");
    }
    if let Some((decisions, matches, rate, _, _, delta_pct)) = quant {
        eprintln!(
            "[perf_report] quant parity: {matches}/{decisions} decisions match \
             ({:.2}%), total cost delta {delta_pct:+.2}%",
            rate * 100.0
        );
    }
    if let Some((sessions, _, _, end_bytes, end_max_hist, bound, bounded)) = session_memory {
        eprintln!(
            "[perf_report] session memory: {sessions} sessions, {:.0} bytes/node, \
             max history {end_max_hist} (densest 1h window {bound} events, bounded: {bounded})",
            end_bytes as f64 / (sessions.max(1)) as f64
        );
    }
    if let Some((events, off_eps, on_eps, overhead_pct, parity, regret, _)) = &obs {
        eprintln!(
            "[perf_report] obs overhead: {events} events at {off_eps:.0} (off) vs {on_eps:.0} \
             (on) events/sec ({overhead_pct:+.2}%), bit parity: {parity}, \
             shadow regret {regret:+.2} node-hours"
        );
    }
    eprintln!(
        "[perf_report] overall speedup {overall_speedup:.2}x on {threads} thread(s); wrote {path}"
    );
    println!("{json}");
    if !all_deterministic {
        eprintln!("[perf_report] ERROR: output diverged across thread counts");
        std::process::exit(1);
    }
    if let Some((_, _, false)) = halving {
        eprintln!(
            "[perf_report] ERROR: the halving search must train strictly fewer steps \
             than the exhaustive search"
        );
        std::process::exit(1);
    }
    if let Some((_, _, false)) = serving {
        eprintln!(
            "[perf_report] ERROR: served decisions/costs must be bit-identical to the \
             offline evaluator rollout"
        );
        std::process::exit(1);
    }
    if let Some((_, _, rate, _, _, _)) = quant {
        if rate < 0.99 {
            eprintln!(
                "[perf_report] ERROR: i8 decision-match rate {:.4} is below the 0.99 gate",
                rate
            );
            std::process::exit(1);
        }
    }
    if let Some((_, _, _, _, _, _, false)) = session_memory {
        eprintln!(
            "[perf_report] ERROR: a session's feature history exceeded the densest \
             1-hour event window (+1 sentinel) — sessions are no longer O(window)"
        );
        std::process::exit(1);
    }
    if let Some((_, _, _, overhead_pct, parity, _, _)) = &obs {
        if !*parity {
            eprintln!(
                "[perf_report] ERROR: opening the metrics gate (or mounting shadow \
                 policies) changed a served bit — the observability layer must be inert"
            );
            std::process::exit(1);
        }
        if *overhead_pct > 3.0 {
            eprintln!(
                "[perf_report] ERROR: metrics-on serving overhead {overhead_pct:.2}% \
                 exceeds the 3% gate"
            );
            std::process::exit(1);
        }
    }
}

/// Parse repeated `--stage <name>` arguments; `None` means "run everything".
fn parse_stage_filter() -> Option<Vec<String>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stage" => {
                let value = args.get(i + 1).expect("--stage requires a stage name");
                wanted.push(value.clone());
                i += 2;
            }
            other => panic!("unknown argument {other:?}; usage: perf_report [--stage <name>]..."),
        }
    }
    if wanted.is_empty() {
        None
    } else {
        Some(wanted)
    }
}
