//! Regenerate Table 2: TP/FN/FP/TN, mitigation counts, recall and precision for every
//! approach, plus the three cost-conditioned RL rows. Scale via `UERL_SCALE`.

use uerl_bench::Scale;
use uerl_eval::experiments::table2;

fn main() {
    let scale = Scale::from_env();
    let ctx = uerl_bench::context(scale, 2024);
    eprintln!("[table2] scale={} scenario={}", scale.label(), ctx.label);
    let result = table2::run(&ctx);
    println!("{}", result.render());
}
