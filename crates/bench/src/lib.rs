//! Shared helpers for the UERL benchmark suite and the figure-regeneration binaries.
//!
//! Every paper artefact (Figure 3–7, Table 2) has both a Criterion benchmark (measuring
//! how long the reproduction pipeline takes) and a binary that prints the regenerated
//! table/series. Both use the same scale selection so results are comparable:
//!
//! * `small` (default) — a dense-fault ~40-node fleet over ~3 months, tiny training
//!   budget; finishes in seconds and reproduces the qualitative shape.
//! * `laptop` — a few hundred nodes over a year with the laptop budget; minutes.
//! * `paper` — the full 3056-node, two-year MareNostrum reconstruction with the paper's
//!   training budget; hours. Only meant for a dedicated run.
//!
//! Select with the `UERL_SCALE` environment variable (`small` / `laptop` / `paper`).

use uerl_eval::scenario::{EvalBudget, ExperimentContext};
use uerl_jobs::{JobLogConfig, JobTraceGenerator};
use uerl_trace::generator::{SyntheticLogConfig, TraceGenerator};

/// The evaluation scale selected through `UERL_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke scale (default).
    Small,
    /// Minutes-long laptop scale.
    Laptop,
    /// The full paper-scale reconstruction.
    Paper,
}

impl Scale {
    /// Read the scale from the `UERL_SCALE` environment variable. Like every `UERL_*`
    /// knob this is strict: an unrecognised value panics instead of silently running
    /// the small scale under a label the operator never asked for.
    pub fn from_env() -> Self {
        uerl_core::knobs::env_choice(
            "UERL_SCALE",
            &[
                ("", Scale::Small),
                ("small", Scale::Small),
                ("laptop", Scale::Laptop),
                ("paper", Scale::Paper),
            ],
            Scale::Small,
        )
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Laptop => "laptop",
            Scale::Paper => "paper",
        }
    }
}

/// Build the experiment context for a scale.
pub fn context(scale: Scale, seed: u64) -> ExperimentContext {
    match scale {
        Scale::Small => ExperimentContext::synthetic_small(40, 90, EvalBudget::tiny(), seed),
        Scale::Laptop => {
            // A mid-size fleet over one year with the laptop budget: large enough that
            // every cross-validation part holds errors, small enough for minutes-long runs.
            let error_log =
                TraceGenerator::new(SyntheticLogConfig::small(300, 365, seed)).generate();
            let job_log = JobTraceGenerator::new(JobLogConfig::small(512, 180, seed)).generate();
            ExperimentContext::from_logs(
                error_log,
                job_log,
                uerl_core::MitigationConfig::paper_default(),
                EvalBudget::laptop(),
                seed,
                "Synthetic/Laptop",
            )
        }
        Scale::Paper => ExperimentContext::marenostrum(EvalBudget::paper(), seed),
    }
}

/// The context used by the Criterion benchmarks (always the small scale so `cargo bench`
/// terminates promptly; the binaries honour `UERL_SCALE`).
pub fn bench_context(seed: u64) -> ExperimentContext {
    context(Scale::Small, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_small() {
        assert_eq!(Scale::from_env().label(), "small");
    }

    #[test]
    fn small_context_builds_quickly_and_has_errors() {
        let ctx = bench_context(1);
        assert!(!ctx.timelines.is_empty());
        assert!(ctx.timelines.total_fatal() > 0);
    }
}
