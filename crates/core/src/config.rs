//! The user-defined parameters of the mitigation method.
//!
//! The paper stresses that the method needs no per-system tuning: the only user-supplied
//! parameters are the total cost of one mitigation action and whether the job can restart
//! from the mitigation point (e.g. checkpointing) or not.

use serde::{Deserialize, Serialize};

/// The mitigation-related parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitigationConfig {
    /// Cost of one mitigation action in node-minutes. The paper's primary evaluation uses
    /// 2 node-minutes (following Das et al.'s estimate for live migration / node cloning /
    /// checkpointing) and also reports 5 and 10 node-minutes.
    pub mitigation_cost_node_minutes: f64,
    /// Whether a job can be restarted from the mitigation point. When `true`
    /// (checkpoint-like mitigation), a mitigation resets the potential UE cost; when
    /// `false`, the potential UE cost always accrues from the job start.
    pub restartable: bool,
}

impl MitigationConfig {
    /// Create a configuration.
    ///
    /// # Panics
    /// Panics if the mitigation cost is negative or non-finite.
    pub fn new(mitigation_cost_node_minutes: f64, restartable: bool) -> Self {
        assert!(
            mitigation_cost_node_minutes.is_finite() && mitigation_cost_node_minutes >= 0.0,
            "mitigation cost must be non-negative"
        );
        Self {
            mitigation_cost_node_minutes,
            restartable,
        }
    }

    /// The paper's default: 2 node-minutes, restartable.
    pub fn paper_default() -> Self {
        Self::new(2.0, true)
    }

    /// A configuration with a different mitigation cost (used for the 5 / 10 node-minute
    /// scenarios of Figure 3).
    pub fn with_cost_minutes(self, minutes: f64) -> Self {
        Self::new(minutes, self.restartable)
    }

    /// Mitigation cost expressed in node-hours (the unit of the cost-benefit analysis).
    pub fn mitigation_cost_node_hours(&self) -> f64 {
        self.mitigation_cost_node_minutes / 60.0
    }
}

impl Default for MitigationConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_two_node_minutes_restartable() {
        let c = MitigationConfig::paper_default();
        assert_eq!(c.mitigation_cost_node_minutes, 2.0);
        assert!(c.restartable);
        assert!((c.mitigation_cost_node_hours() - 2.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn cost_override() {
        let c = MitigationConfig::paper_default().with_cost_minutes(10.0);
        assert_eq!(c.mitigation_cost_node_minutes, 10.0);
        assert!(c.restartable, "restartability is preserved");
    }

    #[test]
    fn default_trait_matches_paper_default() {
        assert_eq!(
            MitigationConfig::default(),
            MitigationConfig::paper_default()
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_rejected() {
        MitigationConfig::new(-1.0, true);
    }
}
