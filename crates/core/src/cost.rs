//! The cost model: Equation 3 (potential UE cost) and Equation 4 (reward).
//!
//! All costs are expressed in **node-hours**: the sum across all the job's nodes of the
//! wallclock time that would be (or was) lost.

use uerl_jobs::schedule::JobSequence;
use uerl_trace::types::SimTime;

/// Equation 3 evaluated against a node's job sequence: the potential UE cost and the
/// running job's node count at instant `t`.
///
/// The cost reference point is the running job's start or — when mitigations are
/// restartable and a mitigation happened after that start — the last mitigation. With
/// no job running at `t`, nothing can be lost: `(0.0, 1)`.
///
/// This is the **single** implementation of the reference-point rule: the offline
/// environment (`MitigationEnv`) and the online serving sessions both call it, which is
/// what keeps served costs bit-identical to evaluated ones by construction.
pub fn potential_cost_at(
    jobs: &JobSequence,
    last_mitigation: Option<SimTime>,
    restartable: bool,
    t: SimTime,
) -> (f64, u32) {
    match jobs.job_at(t) {
        None => (0.0, 1),
        Some(job) => {
            let reference = if restartable {
                match last_mitigation {
                    Some(m) if m > job.start => m,
                    _ => job.start,
                }
            } else {
                job.start
            };
            let hours = t.delta_secs(reference).max(0) as f64 / SimTime::HOUR as f64;
            (ue_cost(job.nodes, hours), job.nodes)
        }
    }
}

/// Equation 3: the potential cost of an uncorrected error striking *now*, in node-hours.
///
/// `nodes` is the number of nodes allocated to the running job and
/// `lost_wallclock_hours` is the wallclock time that would be lost — the time since the
/// job started or, if the mitigation allows restart, since the last mitigation point.
pub fn ue_cost(nodes: u32, lost_wallclock_hours: f64) -> f64 {
    nodes as f64 * lost_wallclock_hours.max(0.0)
}

/// Equation 4: the (negative) reward of an action.
///
/// `mitigated` is whether the agent requested a mitigation (action `a`),
/// `mitigation_cost_node_hours` the cost of that action, `ue_occurred` whether an
/// uncorrected error followed before the next decision point, and `ue_cost_node_hours`
/// the Equation-3 cost evaluated at the UE's timestamp.
pub fn reward(
    mitigated: bool,
    mitigation_cost_node_hours: f64,
    ue_occurred: bool,
    ue_cost_node_hours: f64,
) -> f64 {
    let a = if mitigated { 1.0 } else { 0.0 };
    let ue = if ue_occurred { 1.0 } else { 0.0 };
    -a * mitigation_cost_node_hours - ue * ue_cost_node_hours
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ue_cost_is_nodes_times_hours() {
        assert_eq!(ue_cost(16, 2.5), 40.0);
        assert_eq!(ue_cost(1, 0.0), 0.0);
        assert_eq!(
            ue_cost(100, -5.0),
            0.0,
            "negative elapsed time clamps to zero"
        );
    }

    #[test]
    fn reward_components() {
        let mit_cost = 2.0 / 60.0;
        // No mitigation, no UE: zero reward.
        assert_eq!(reward(false, mit_cost, false, 0.0), 0.0);
        // Mitigation only: pay the mitigation cost.
        assert!((reward(true, mit_cost, false, 0.0) + mit_cost).abs() < 1e-12);
        // UE only: pay the UE cost.
        assert_eq!(reward(false, mit_cost, true, 500.0), -500.0);
        // Both: pay both (the mitigation did not prevent this UE's accrued cost).
        assert!((reward(true, mit_cost, true, 500.0) + 500.0 + mit_cost).abs() < 1e-12);
    }

    #[test]
    fn rewards_are_never_positive() {
        for &(m, u, c) in &[(false, false, 0.0), (true, false, 0.0), (true, true, 123.0)] {
            assert!(reward(m, 0.5, u, c) <= 0.0);
        }
    }
}
