//! The mitigation environment: replaying a node's event timeline against a job sequence.
//!
//! The environment owns the MDP mechanics of Section 3.2:
//!
//! * the agent is invoked at every (per-minute merged, non-fatal) event of the node;
//! * the state combines the error-log features with the potential UE cost of the
//!   currently running job (Equation 3), where the cost reference point is the job start
//!   or — when mitigations are restartable — the last mitigation;
//! * choosing the mitigation action immediately pays the mitigation cost and resets the
//!   cost reference point;
//! * when the next event is fatal (uncorrected error or critical over-temperature), the
//!   full cost accrued between the last mitigation and the UE timestamp is lost, and the
//!   reward of the last action reflects it (Equation 4).
//!
//! The same environment serves training and evaluation. Training episodes terminate at
//! the first fatal event (`terminate_on_fatal = true`); evaluation rollouts continue
//! through it (the node returns to production after testing), so the full cost of the
//! period is accounted.

use crate::config::MitigationConfig;
use crate::cost;
use crate::event_stream::NodeTimeline;
use crate::features::FeatureExtractor;
use crate::session_core::{RecordRetention, SessionCore};
use crate::state::StateFeatures;
use uerl_jobs::schedule::JobSequence;
use uerl_trace::types::SimTime;

pub use crate::session_core::UeRecord;

/// The result of one environment step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepOutcome {
    /// Equation 4 reward of the action just taken.
    pub reward: f64,
    /// The next decision point's state, or `None` if the episode finished.
    pub next_state: Option<StateFeatures>,
    /// Whether one or more fatal events occurred before the next decision point.
    pub ue_occurred: bool,
    /// Node-hours lost to those fatal events.
    pub ue_cost: f64,
    /// Node-hours paid for the mitigation action (0 when the action was "do nothing").
    pub mitigation_cost: f64,
    /// Whether the episode is over.
    pub done: bool,
}

/// The environment for one node's timeline.
#[derive(Debug, Clone)]
pub struct MitigationEnv {
    timeline: NodeTimeline,
    terminate_on_fatal: bool,

    extractor: FeatureExtractor,
    idx: usize,
    started: bool,
    done: bool,

    /// The shared accounting state — the same type the push-mode serving session
    /// wraps, so the parity-critical rules (cost reference point, fatal accounting,
    /// decision bookkeeping) live in exactly one place.
    core: SessionCore,
}

impl MitigationEnv {
    /// Create an environment with full record retention (the evaluator and the parity
    /// suites read the decision / UE logs).
    ///
    /// `terminate_on_fatal` selects episodic training semantics (`true`: the episode ends
    /// at the first UE) or full-period evaluation semantics (`false`: accounting continues
    /// after a UE, with the cost reference reset because the node returns with new jobs).
    pub fn new(
        timeline: NodeTimeline,
        jobs: JobSequence,
        config: MitigationConfig,
        terminate_on_fatal: bool,
    ) -> Self {
        Self::with_retention(
            timeline,
            jobs,
            config,
            terminate_on_fatal,
            RecordRetention::Full,
        )
    }

    /// Create an environment with an explicit record-retention mode. Training loops
    /// never read the logs and use [`RecordRetention::TotalsOnly`] so episode memory
    /// stays O(window); rewards, costs and counters are unaffected by the mode.
    pub fn with_retention(
        timeline: NodeTimeline,
        jobs: JobSequence,
        config: MitigationConfig,
        terminate_on_fatal: bool,
        retention: RecordRetention,
    ) -> Self {
        let extractor = FeatureExtractor::new(timeline.node(), timeline.window_start());
        Self {
            timeline,
            terminate_on_fatal,
            extractor,
            idx: 0,
            started: false,
            done: false,
            core: SessionCore::new(jobs, config, retention),
        }
    }

    /// The mitigation configuration.
    pub fn config(&self) -> &MitigationConfig {
        self.core.config()
    }

    /// Whether the episode has finished.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Decisions made so far (mitigations plus "do nothing"s).
    pub fn decision_count(&self) -> u64 {
        self.core.decision_count()
    }

    /// Number of mitigation actions taken.
    pub fn mitigation_count(&self) -> u64 {
        self.core.mitigation_count()
    }

    /// Number of "do nothing" decisions taken (kept as a counter, so it is available
    /// under totals-only retention too).
    pub fn non_mitigation_count(&self) -> u64 {
        self.core.non_mitigation_count()
    }

    /// Node-hours spent on mitigation actions.
    pub fn total_mitigation_cost(&self) -> f64 {
        self.core.total_mitigation_cost()
    }

    /// Number of fatal events accounted.
    pub fn ue_count(&self) -> u64 {
        self.core.ue_count()
    }

    /// Node-hours lost to fatal events.
    pub fn total_ue_cost(&self) -> f64 {
        self.core.total_ue_cost()
    }

    /// Total cost: UE cost plus mitigation cost.
    pub fn total_cost(&self) -> f64 {
        self.core.total_cost()
    }

    /// Every decision made so far: `(event time, mitigated)` (empty under
    /// [`RecordRetention::TotalsOnly`]).
    pub fn decisions(&self) -> &[(SimTime, bool)] {
        self.core.decisions()
    }

    /// Every fatal event accounted so far (empty under
    /// [`RecordRetention::TotalsOnly`]).
    pub fn ue_records(&self) -> &[UeRecord] {
        self.core.ue_records()
    }

    /// Start (or restart) the episode and return the first decision point's state, or
    /// `None` if the timeline offers no decision point (e.g. its only event is a UE with
    /// nothing before it — the cost is still accounted).
    pub fn reset(&mut self) -> Option<StateFeatures> {
        assert!(!self.started, "this environment has already been started");
        self.started = true;
        self.advance_to_decision_point()
    }

    /// Advance `idx` to the next non-fatal event, accounting any fatal events on the way.
    /// Returns the state at that event, or `None` (and sets `done`) if the timeline ends
    /// or a fatal event terminates the episode.
    fn advance_to_decision_point(&mut self) -> Option<StateFeatures> {
        loop {
            if self.idx >= self.timeline.len() {
                self.done = true;
                return None;
            }
            let event = self.timeline.events()[self.idx].clone();
            if event.fatal {
                // Accounted-then-cleared: the node is pulled from production and
                // returns later with fresh jobs, so the mitigation point no longer
                // applies (the core clears it after paying the cost).
                self.core.account_fatal(event.time);
                if self.terminate_on_fatal {
                    self.done = true;
                    return None;
                }
                self.extractor.update(&event);
                self.idx += 1;
                continue;
            }
            self.extractor.update(&event);
            let (potential, job_nodes) = self.core.potential_cost_at(event.time);
            return Some(self.extractor.snapshot(potential, job_nodes));
        }
    }

    /// Apply the policy's action at the current decision point and advance to the next.
    ///
    /// # Panics
    /// Panics if called before [`MitigationEnv::reset`] or after the episode finished.
    pub fn step(&mut self, mitigate: bool) -> StepOutcome {
        assert!(self.started, "call reset() before step()");
        assert!(!self.done, "the episode is over");
        let now = self.timeline.events()[self.idx].time;
        let mitigation_cost = self.core.apply_decision(now, mitigate);

        let ue_cost_before = self.core.total_ue_cost();
        let ue_count_before = self.core.ue_count();
        self.idx += 1;
        let next_state = self.advance_to_decision_point();
        let ue_cost = self.core.total_ue_cost() - ue_cost_before;
        let ue_occurred = self.core.ue_count() > ue_count_before;

        let reward = cost::reward(
            mitigate,
            self.core.config().mitigation_cost_node_hours(),
            ue_occurred,
            ue_cost,
        );
        StepOutcome {
            reward,
            next_state,
            ue_occurred,
            ue_cost,
            mitigation_cost,
            done: self.done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uerl_jobs::schedule::ScheduledJob;
    use uerl_trace::log::MergedEvent;
    use uerl_trace::types::NodeId;

    const NODE: NodeId = NodeId(7);

    fn event(minute: i64, ce: u32, fatal: bool) -> MergedEvent {
        MergedEvent {
            time: SimTime::from_minutes(minute),
            node: NODE,
            ce_count: ce,
            ce_details: Vec::new(),
            ue_warnings: 0,
            boots: 0,
            retired_slots: Vec::new(),
            fatal,
            ue_detector: None,
        }
    }

    fn timeline(events: Vec<MergedEvent>) -> NodeTimeline {
        NodeTimeline::new(NODE, SimTime::ZERO, SimTime::from_days(10), events)
    }

    /// One 16-node job covering the first 100 hours.
    fn one_big_job() -> JobSequence {
        JobSequence::from_jobs(vec![ScheduledJob {
            job_id: 1,
            start: SimTime::ZERO,
            end: SimTime::from_hours(100),
            nodes: 16,
        }])
    }

    fn config() -> MitigationConfig {
        MitigationConfig::paper_default()
    }

    #[test]
    fn never_mitigating_pays_the_full_ue_cost() {
        // CE at t=1h, UE at t=10h: cost = 16 nodes * 10 h = 160 node-hours.
        let tl = timeline(vec![event(60, 5, false), event(600, 0, true)]);
        let mut env = MitigationEnv::new(tl, one_big_job(), config(), true);
        let s0 = env.reset().expect("one decision point");
        assert_eq!(s0.job_nodes, 16);
        assert!(
            (s0.potential_ue_cost - 16.0).abs() < 1e-9,
            "16 node-hours at t=1h"
        );
        let out = env.step(false);
        assert!(out.done);
        assert!(out.ue_occurred);
        assert!((out.ue_cost - 160.0).abs() < 1e-9);
        assert!((out.reward + 160.0).abs() < 1e-9);
        assert_eq!(env.mitigation_count(), 0);
        assert!((env.total_cost() - 160.0).abs() < 1e-9);
    }

    #[test]
    fn mitigating_resets_the_cost_reference() {
        // Mitigate at t=1h; the UE at t=10h then only loses 9h * 16 nodes = 144 node-hours
        // plus the 2 node-minute mitigation cost.
        let tl = timeline(vec![event(60, 5, false), event(600, 0, true)]);
        let mut env = MitigationEnv::new(tl, one_big_job(), config(), true);
        let _ = env.reset().unwrap();
        let out = env.step(true);
        assert!(out.ue_occurred);
        assert!((out.ue_cost - 144.0).abs() < 1e-9);
        let mit_cost = 2.0 / 60.0;
        assert!((out.mitigation_cost - mit_cost).abs() < 1e-12);
        assert!((out.reward + 144.0 + mit_cost).abs() < 1e-9);
        assert!((env.total_cost() - 144.0 - mit_cost).abs() < 1e-9);
        assert_eq!(env.mitigation_count(), 1);
    }

    #[test]
    fn non_restartable_mitigation_does_not_reset_the_reference() {
        let tl = timeline(vec![event(60, 5, false), event(600, 0, true)]);
        let cfg = MitigationConfig::new(2.0, false);
        let mut env = MitigationEnv::new(tl, one_big_job(), cfg, true);
        let _ = env.reset().unwrap();
        let out = env.step(true);
        // Cost is still measured from the job start.
        assert!((out.ue_cost - 160.0).abs() < 1e-9);
    }

    #[test]
    fn potential_cost_grows_between_events() {
        let tl = timeline(vec![
            event(60, 1, false),
            event(120, 1, false),
            event(300, 1, false),
        ]);
        let mut env = MitigationEnv::new(tl, one_big_job(), config(), true);
        let s0 = env.reset().unwrap();
        let s1 = env.step(false).next_state.unwrap();
        let s2 = env.step(false).next_state.unwrap();
        assert!(s0.potential_ue_cost < s1.potential_ue_cost);
        assert!(s1.potential_ue_cost < s2.potential_ue_cost);
        let end = env.step(false);
        assert!(end.done);
        assert!(!end.ue_occurred);
        assert_eq!(env.ue_count(), 0);
    }

    #[test]
    fn silent_ue_with_no_decision_point_is_still_accounted() {
        // The only event is a UE: reset() returns no state but the cost is recorded.
        let tl = timeline(vec![event(600, 0, true)]);
        let mut env = MitigationEnv::new(tl, one_big_job(), config(), true);
        assert!(env.reset().is_none());
        assert!(env.is_done());
        assert_eq!(env.ue_count(), 1);
        assert!((env.total_ue_cost() - 160.0).abs() < 1e-9);
        assert!(env.decisions().is_empty());
    }

    #[test]
    fn evaluation_mode_continues_after_a_fatal_event() {
        // UE at t=10h, then another CE at t=20h and a second UE at t=30h.
        let tl = timeline(vec![
            event(60, 1, false),
            event(600, 0, true),
            event(1200, 1, false),
            event(1800, 0, true),
        ]);
        let mut env = MitigationEnv::new(tl, one_big_job(), config(), false);
        let mut state = env.reset();
        let mut steps = 0;
        while let Some(s) = state {
            let out = env.step(false);
            let _ = s;
            state = out.next_state;
            steps += 1;
        }
        assert_eq!(steps, 2, "two decision points (the two CE events)");
        assert_eq!(env.ue_count(), 2);
        // First UE: 160 node-hours. Second UE at t=30h: the same job is still "running"
        // in the synthetic sequence, so it costs 16 * 30 = 480.
        assert!((env.total_ue_cost() - (160.0 + 480.0)).abs() < 1e-9);
        assert_eq!(env.ue_records().len(), 2);
    }

    #[test]
    fn decisions_are_recorded_with_timestamps() {
        let tl = timeline(vec![event(60, 1, false), event(120, 1, false)]);
        let mut env = MitigationEnv::new(tl, one_big_job(), config(), true);
        let _ = env.reset().unwrap();
        let _ = env.step(true);
        let _ = env.step(false);
        assert_eq!(
            env.decisions(),
            &[
                (SimTime::from_minutes(60), true),
                (SimTime::from_minutes(120), false)
            ]
        );
    }

    #[test]
    fn job_boundaries_reset_the_cost_reference() {
        // Two 1-node jobs of 5 hours each; an event at t=7h is 2 hours into the second
        // job, so the potential cost is 2 node-hours, not 7.
        let jobs = JobSequence::from_jobs(vec![
            ScheduledJob {
                job_id: 1,
                start: SimTime::ZERO,
                end: SimTime::from_hours(5),
                nodes: 1,
            },
            ScheduledJob {
                job_id: 2,
                start: SimTime::from_hours(5),
                end: SimTime::from_hours(50),
                nodes: 1,
            },
        ]);
        let tl = timeline(vec![event(7 * 60, 1, false)]);
        let mut env = MitigationEnv::new(tl, jobs, config(), true);
        let s = env.reset().unwrap();
        assert!((s.potential_ue_cost - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "call reset()")]
    fn step_before_reset_rejected() {
        let tl = timeline(vec![event(60, 1, false)]);
        let mut env = MitigationEnv::new(tl, one_big_job(), config(), true);
        env.step(false);
    }

    #[test]
    #[should_panic(expected = "episode is over")]
    fn step_after_done_rejected() {
        let tl = timeline(vec![event(60, 1, false)]);
        let mut env = MitigationEnv::new(tl, one_big_job(), config(), true);
        let _ = env.reset().unwrap();
        let out = env.step(false);
        assert!(out.done);
        env.step(false);
    }
}
