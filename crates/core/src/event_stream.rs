//! Per-node timelines: the episode substrate for training and evaluation.
//!
//! The environment replays historical (or synthetic) logs one node at a time: an episode
//! is "all events of one node within some time range". [`TimelineSet`] indexes a
//! preprocessed error log by node and hands out [`NodeTimeline`]s; nodes without events
//! never invoke the policy and therefore never appear here.

use rand::Rng;
use serde::{Deserialize, Serialize};
use uerl_trace::log::{ErrorLog, MergedEvent};
use uerl_trace::types::{NodeId, SimTime};

/// The per-minute merged events of one node, in time order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeTimeline {
    node: NodeId,
    window_start: SimTime,
    window_end: SimTime,
    events: Vec<MergedEvent>,
}

impl NodeTimeline {
    /// Build a timeline from already-merged events (must belong to `node` and be sorted).
    pub fn new(
        node: NodeId,
        window_start: SimTime,
        window_end: SimTime,
        events: Vec<MergedEvent>,
    ) -> Self {
        debug_assert!(events.iter().all(|e| e.node == node));
        debug_assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        Self {
            node,
            window_start,
            window_end,
            events,
        }
    }

    /// The node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Start of the covered window.
    pub fn window_start(&self) -> SimTime {
        self.window_start
    }

    /// End of the covered window.
    pub fn window_end(&self) -> SimTime {
        self.window_end
    }

    /// The merged events.
    pub fn events(&self) -> &[MergedEvent] {
        &self.events
    }

    /// Number of merged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the timeline has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of fatal (UE / over-temperature) events in the timeline.
    pub fn fatal_count(&self) -> usize {
        self.events.iter().filter(|e| e.fatal).count()
    }

    /// A copy restricted to events in `[start, end)`.
    pub fn slice(&self, start: SimTime, end: SimTime) -> Self {
        Self {
            node: self.node,
            window_start: start,
            window_end: end,
            events: self
                .events
                .iter()
                .filter(|e| e.time >= start && e.time < end)
                .cloned()
                .collect(),
        }
    }
}

/// All node timelines of a log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineSet {
    window_start: SimTime,
    window_end: SimTime,
    timelines: Vec<NodeTimeline>,
}

impl TimelineSet {
    /// Build a timeline set from explicit timelines (tests, examples, and slicing).
    /// Timelines with no events are dropped.
    pub fn from_timelines(
        window_start: SimTime,
        window_end: SimTime,
        timelines: Vec<NodeTimeline>,
    ) -> Self {
        Self {
            window_start,
            window_end,
            timelines: timelines.into_iter().filter(|t| !t.is_empty()).collect(),
        }
    }

    /// Build the timeline set of a (preprocessed) error log. Only nodes with at least one
    /// merged event are included.
    pub fn from_log(log: &ErrorLog) -> Self {
        let mut timelines = Vec::new();
        for node in log.nodes_with_events() {
            let events = log.merged_events_for_node(node);
            if !events.is_empty() {
                timelines.push(NodeTimeline::new(
                    node,
                    log.window_start(),
                    log.window_end(),
                    events,
                ));
            }
        }
        Self {
            window_start: log.window_start(),
            window_end: log.window_end(),
            timelines,
        }
    }

    /// Start of the covered window.
    pub fn window_start(&self) -> SimTime {
        self.window_start
    }

    /// End of the covered window.
    pub fn window_end(&self) -> SimTime {
        self.window_end
    }

    /// The timelines, ordered by node id.
    pub fn timelines(&self) -> &[NodeTimeline] {
        &self.timelines
    }

    /// Number of nodes with events.
    pub fn len(&self) -> usize {
        self.timelines.len()
    }

    /// Whether no node has any event.
    pub fn is_empty(&self) -> bool {
        self.timelines.is_empty()
    }

    /// Total number of merged events across all nodes (the paper's "259,270 events").
    pub fn total_events(&self) -> usize {
        self.timelines.iter().map(NodeTimeline::len).sum()
    }

    /// Total number of fatal events across all nodes.
    pub fn total_fatal(&self) -> usize {
        self.timelines.iter().map(NodeTimeline::fatal_count).sum()
    }

    /// The timeline of a specific node, if it has events.
    pub fn timeline_of(&self, node: NodeId) -> Option<&NodeTimeline> {
        self.timelines.iter().find(|t| t.node() == node)
    }

    /// Pick a random node's timeline (uniformly among nodes with events), as done when
    /// assembling a training episode (Section 3.3.3).
    pub fn random_timeline<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&NodeTimeline> {
        if self.timelines.is_empty() {
            None
        } else {
            Some(&self.timelines[rng.gen_range(0..self.timelines.len())])
        }
    }

    /// A copy restricted to the time range `[start, end)` (used by the cross-validation
    /// splits); nodes whose events all fall outside the range are dropped.
    pub fn slice(&self, start: SimTime, end: SimTime) -> Self {
        Self {
            window_start: start,
            window_end: end,
            timelines: self
                .timelines
                .iter()
                .map(|t| t.slice(start, end))
                .filter(|t| !t.is_empty())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uerl_trace::generator::{SyntheticLogConfig, TraceGenerator};
    use uerl_trace::reduction::preprocess;

    fn timeline_set() -> TimelineSet {
        let log = TraceGenerator::new(SyntheticLogConfig::small(40, 90, 11)).generate();
        TimelineSet::from_log(&preprocess(&log))
    }

    #[test]
    fn from_log_covers_all_nodes_with_events() {
        let log = TraceGenerator::new(SyntheticLogConfig::small(40, 90, 11)).generate();
        let pre = preprocess(&log);
        let set = TimelineSet::from_log(&pre);
        assert_eq!(set.len(), pre.nodes_with_events().len());
        assert_eq!(set.total_events(), pre.merged_events().len());
        assert!(set.total_fatal() > 0);
    }

    #[test]
    fn timelines_are_time_ordered_and_node_consistent() {
        let set = timeline_set();
        for t in set.timelines() {
            assert!(!t.is_empty());
            assert!(t.events().iter().all(|e| e.node == t.node()));
            assert!(t.events().windows(2).all(|w| w[0].time <= w[1].time));
        }
    }

    #[test]
    fn timeline_lookup_and_random_selection() {
        let set = timeline_set();
        let first = set.timelines()[0].node();
        assert_eq!(set.timeline_of(first).unwrap().node(), first);
        assert!(set.timeline_of(NodeId(9_999)).is_none());
        let mut rng = StdRng::seed_from_u64(1);
        let picked = set.random_timeline(&mut rng).unwrap();
        assert!(set.timeline_of(picked.node()).is_some());
    }

    #[test]
    fn slicing_restricts_by_time() {
        let set = timeline_set();
        let mid = SimTime::from_days(45);
        let early = set.slice(set.window_start(), mid);
        let late = set.slice(mid, set.window_end());
        assert_eq!(
            early.total_events() + late.total_events(),
            set.total_events()
        );
        for t in early.timelines() {
            assert!(t.events().iter().all(|e| e.time < mid));
        }
        for t in late.timelines() {
            assert!(t.events().iter().all(|e| e.time >= mid));
        }
    }

    #[test]
    fn empty_set_behaviour() {
        let set = TimelineSet {
            window_start: SimTime::ZERO,
            window_end: SimTime::from_days(1),
            timelines: Vec::new(),
        };
        assert!(set.is_empty());
        let mut rng = StdRng::seed_from_u64(2);
        assert!(set.random_timeline(&mut rng).is_none());
    }
}
