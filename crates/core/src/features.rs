//! The per-node feature extractor: Table 1 features and the Equation 2 variation.

use crate::state::StateFeatures;
use std::collections::{HashSet, VecDeque};
use uerl_trace::log::MergedEvent;
use uerl_trace::types::{DimmId, NodeId, SimTime};

/// The longest lookback any Equation 2 variation reads: 1 hour. History snapshots
/// strictly older than this (behind the newest event) can never be selected by
/// [`FeatureExtractor::snapshot`] — except the single latest one at or before the
/// cutoff, which the ring buffer keeps as a sentinel.
pub const HISTORY_WINDOW_SECS: i64 = SimTime::HOUR;

/// Incrementally extracts the Table 1 state features from a node's event stream.
///
/// The extractor is fed the node's per-minute merged events in time order; after each
/// event, [`FeatureExtractor::snapshot`] produces the [`StateFeatures`] the policy acts
/// on (the potential UE cost is supplied by the environment, which owns the workload
/// bookkeeping).
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    node: NodeId,
    window_start: SimTime,

    ce_last_event: u64,
    ce_total: u64,
    ranks: HashSet<(DimmId, u8)>,
    banks: HashSet<(DimmId, u8, u8)>,
    rows: HashSet<(DimmId, u8, u8, u32)>,
    columns: HashSet<(DimmId, u8, u8, u32)>,
    dimms: HashSet<DimmId>,
    ue_warnings: u64,
    last_boot: Option<SimTime>,
    boots: u64,
    last_event_time: Option<SimTime>,
    events_seen: usize,

    /// Ring buffer of `(time, ce_total, boots)` snapshots after each event, used to
    /// evaluate the Equation 2 variation at `t − 1 min` and `t − 1 h`.
    ///
    /// Bounded to O(window): entries older than [`HISTORY_WINDOW_SECS`] behind the
    /// newest event are evicted from the front, except the latest such entry, which
    /// stays as the **sentinel** — the exact snapshot the unbounded reverse scan
    /// would select for any cutoff at or beyond the window edge. The lookup result is
    /// therefore bit-identical to retaining the full lifetime history.
    history: VecDeque<(SimTime, u64, u64)>,
}

impl FeatureExtractor {
    /// Create an extractor for one node. `window_start` anchors "time since last boot"
    /// before the first boot event is seen.
    pub fn new(node: NodeId, window_start: SimTime) -> Self {
        Self {
            node,
            window_start,
            ce_last_event: 0,
            ce_total: 0,
            ranks: HashSet::new(),
            banks: HashSet::new(),
            rows: HashSet::new(),
            columns: HashSet::new(),
            dimms: HashSet::new(),
            ue_warnings: 0,
            last_boot: None,
            boots: 0,
            last_event_time: None,
            events_seen: 0,
            history: VecDeque::new(),
        }
    }

    /// The node this extractor tracks.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Total corrected errors absorbed so far.
    pub fn ce_total(&self) -> u64 {
        self.ce_total
    }

    /// Number of events absorbed so far. Counted explicitly — history eviction never
    /// changes this value.
    pub fn events_seen(&self) -> usize {
        self.events_seen
    }

    /// Entries currently held in the variation history ring buffer: the events of the
    /// last [`HISTORY_WINDOW_SECS`] plus one sentinel at or before the window edge.
    /// Bounded by the window's event count, never by the node's lifetime.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Approximate heap footprint of the extractor in bytes: the history ring buffer
    /// plus the distinct-location sets (estimated per entry, including hash-table
    /// slack). A bench-grade estimate, not an allocator measurement.
    pub fn approx_heap_bytes(&self) -> usize {
        fn set_bytes<T>(set: &HashSet<T>) -> usize {
            // Hashbrown keeps 1 control byte per slot and sizes tables at 8/7 load.
            set.capacity() * (std::mem::size_of::<T>() + 1)
        }
        self.history.capacity() * std::mem::size_of::<(SimTime, u64, u64)>()
            + set_bytes(&self.ranks)
            + set_bytes(&self.banks)
            + set_bytes(&self.rows)
            + set_bytes(&self.columns)
            + set_bytes(&self.dimms)
    }

    /// Fold one merged event into the counters.
    ///
    /// # Panics
    /// Panics if the event belongs to a different node or goes backwards in time.
    pub fn update(&mut self, event: &MergedEvent) {
        assert_eq!(event.node, self.node, "event from the wrong node");
        if let Some(prev) = self.last_event_time {
            assert!(event.time >= prev, "events must be processed in time order");
        }
        self.ce_last_event = u64::from(event.ce_count);
        self.ce_total += u64::from(event.ce_count);
        for detail in &event.ce_details {
            let d = detail.dimm;
            let loc = detail.location;
            self.dimms.insert(d);
            self.ranks.insert((d, loc.rank));
            self.banks.insert((d, loc.rank, loc.bank));
            self.rows.insert((d, loc.rank, loc.bank, loc.row));
            self.columns.insert((d, loc.rank, loc.bank, loc.column));
        }
        self.ue_warnings += u64::from(event.ue_warnings);
        if event.boots > 0 {
            self.boots += u64::from(event.boots);
            self.last_boot = Some(event.time);
        }
        self.last_event_time = Some(event.time);
        self.events_seen += 1;
        self.history
            .push_back((event.time, self.ce_total, self.boots));
        // Evict entries that fell out of the lookback window, keeping the latest
        // at-or-before-cutoff entry as the sentinel: `variation()`'s reverse scan
        // selects exactly that entry for any cutoff at or beyond the window edge, so
        // eviction is invisible to the features. Event times are non-decreasing, so
        // one front sweep per event keeps the invariant.
        let cutoff = event.time.plus_secs(-HISTORY_WINDOW_SECS);
        while self.history.len() >= 2 && self.history[1].0 <= cutoff {
            self.history.pop_front();
        }
    }

    /// Equation 2: `value(now) / value(now − Δt)`, or 0 when the denominator is 0.
    fn variation(
        &self,
        now: SimTime,
        delta_secs: i64,
        select: impl Fn(&(SimTime, u64, u64)) -> u64,
    ) -> f64 {
        let cutoff = now.plus_secs(-delta_secs);
        let past = self
            .history
            .iter()
            .rev()
            .find(|(t, _, _)| *t <= cutoff)
            .map(&select)
            .unwrap_or(0);
        if past == 0 {
            return 0.0;
        }
        let current = self.history.back().map(&select).unwrap_or(0);
        current as f64 / past as f64
    }

    /// Produce the state at the last absorbed event, with the potential UE cost supplied
    /// by the caller (the environment owns the workload bookkeeping).
    pub fn snapshot(&self, potential_ue_cost: f64, job_nodes: u32) -> StateFeatures {
        let now = self.last_event_time.unwrap_or(self.window_start);
        let boot_anchor = self.last_boot.unwrap_or(self.window_start);
        StateFeatures {
            node: self.node,
            time: now,
            job_nodes,
            ce_since_last_event: self.ce_last_event,
            ce_since_start: self.ce_total,
            ce_var_1min: self.variation(now, SimTime::MINUTE, |h| h.1),
            ce_var_1hour: self.variation(now, SimTime::HOUR, |h| h.1),
            ranks_with_ce: self.ranks.len() as u32,
            banks_with_ce: self.banks.len() as u32,
            rows_with_ce: self.rows.len() as u32,
            columns_with_ce: self.columns.len() as u32,
            dimms_with_ce: self.dimms.len() as u32,
            ue_warnings: self.ue_warnings,
            hours_since_boot: now.delta_hours(boot_anchor).max(0.0),
            node_boots: self.boots,
            boots_var_1min: self.variation(now, SimTime::MINUTE, |h| h.2),
            boots_var_1hour: self.variation(now, SimTime::HOUR, |h| h.2),
            potential_ue_cost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uerl_trace::events::{CeDetail, Detector};
    use uerl_trace::types::CellLocation;

    fn merged(node: u32, minute: i64) -> MergedEvent {
        MergedEvent {
            time: SimTime::from_minutes(minute),
            node: NodeId(node),
            ce_count: 0,
            ce_details: Vec::new(),
            ue_warnings: 0,
            boots: 0,
            retired_slots: Vec::new(),
            fatal: false,
            ue_detector: None,
        }
    }

    fn ce_event(
        node: u32,
        minute: i64,
        count: u32,
        slot: u8,
        rank: u8,
        row: u32,
        col: u32,
    ) -> MergedEvent {
        let mut e = merged(node, minute);
        e.ce_count = count;
        e.ce_details.push(CeDetail {
            dimm: DimmId::new(NodeId(node), slot),
            location: CellLocation::new(rank, 0, row, col),
            detector: Detector::DemandRead,
        });
        e
    }

    fn extractor() -> FeatureExtractor {
        FeatureExtractor::new(NodeId(1), SimTime::ZERO)
    }

    #[test]
    fn counts_accumulate_across_events() {
        let mut fx = extractor();
        fx.update(&ce_event(1, 10, 5, 0, 0, 1, 1));
        fx.update(&ce_event(1, 20, 7, 1, 1, 2, 3));
        let s = fx.snapshot(0.0, 1);
        assert_eq!(s.ce_since_last_event, 7);
        assert_eq!(s.ce_since_start, 12);
        assert_eq!(s.dimms_with_ce, 2);
        assert_eq!(s.ranks_with_ce, 2);
        assert_eq!(s.rows_with_ce, 2);
        assert_eq!(s.columns_with_ce, 2);
        assert_eq!(fx.events_seen(), 2);
    }

    #[test]
    fn distinct_location_counting_deduplicates() {
        let mut fx = extractor();
        // Same cell hit twice on the same DIMM.
        fx.update(&ce_event(1, 1, 3, 0, 0, 42, 7));
        fx.update(&ce_event(1, 2, 4, 0, 0, 42, 7));
        let s = fx.snapshot(0.0, 1);
        assert_eq!(s.dimms_with_ce, 1);
        assert_eq!(s.ranks_with_ce, 1);
        assert_eq!(s.rows_with_ce, 1);
        assert_eq!(s.columns_with_ce, 1);
    }

    #[test]
    fn boots_and_time_since_boot() {
        let mut fx = extractor();
        let mut boot = merged(1, 0);
        boot.boots = 1;
        fx.update(&boot);
        fx.update(&ce_event(1, 120, 1, 0, 0, 1, 1));
        let s = fx.snapshot(0.0, 1);
        assert_eq!(s.node_boots, 1);
        assert!((s.hours_since_boot - 2.0).abs() < 1e-9);

        // A new boot resets the clock.
        let mut boot2 = merged(1, 180);
        boot2.boots = 1;
        fx.update(&boot2);
        let s = fx.snapshot(0.0, 1);
        assert_eq!(s.node_boots, 2);
        assert_eq!(s.hours_since_boot, 0.0);
    }

    #[test]
    fn warnings_accumulate() {
        let mut fx = extractor();
        let mut w = merged(1, 5);
        w.ue_warnings = 2;
        fx.update(&w);
        let mut w2 = merged(1, 6);
        w2.ue_warnings = 1;
        fx.update(&w2);
        assert_eq!(fx.snapshot(0.0, 1).ue_warnings, 3);
    }

    #[test]
    fn variation_follows_equation_2() {
        let mut fx = extractor();
        // 10 CEs at t = 0 min, 30 CEs total at t = 30 min, 90 total at t = 65 min.
        fx.update(&ce_event(1, 0, 10, 0, 0, 1, 1));
        fx.update(&ce_event(1, 30, 20, 0, 0, 1, 2));
        fx.update(&ce_event(1, 65, 60, 0, 0, 1, 3));
        let s = fx.snapshot(0.0, 1);
        // One hour before t=65min is t=5min: the latest snapshot at or before that is the
        // one at t=0 with 10 CEs -> variation = 90 / 10 = 9.
        assert!((s.ce_var_1hour - 9.0).abs() < 1e-12);
        // One minute before t=65min is t=64min: latest snapshot is t=30min with 30 CEs.
        assert!((s.ce_var_1min - 3.0).abs() < 1e-12);
    }

    #[test]
    fn variation_is_zero_when_denominator_is_zero() {
        let mut fx = extractor();
        fx.update(&ce_event(1, 100, 50, 0, 0, 1, 1));
        let s = fx.snapshot(0.0, 1);
        // No history at t-1min / t-1h with non-zero CEs.
        assert_eq!(s.ce_var_1min, 0.0);
        assert_eq!(s.ce_var_1hour, 0.0);
    }

    #[test]
    fn snapshot_carries_cost_and_job_metadata() {
        let mut fx = extractor();
        fx.update(&ce_event(1, 10, 1, 0, 0, 1, 1));
        let s = fx.snapshot(123.5, 16);
        assert_eq!(s.potential_ue_cost, 123.5);
        assert_eq!(s.job_nodes, 16);
        assert_eq!(s.node, NodeId(1));
        assert_eq!(s.time, SimTime::from_minutes(10));
    }

    #[test]
    fn history_is_evicted_to_the_lookback_window() {
        let mut fx = extractor();
        // One event per minute for three hours: the buffer must hold only the last
        // hour's events plus the sentinel at the window edge, however long the stream.
        for minute in 0..=180 {
            fx.update(&ce_event(1, minute, 1, 0, 0, 1, 1));
        }
        // Cutoff is t=120min: minutes 121..=180 stay in-window (60 entries) and the
        // minute-120 entry survives as the sentinel.
        assert_eq!(fx.history_len(), 61);
        assert_eq!(
            fx.events_seen(),
            181,
            "eviction must not change events_seen"
        );
        assert!(fx.approx_heap_bytes() > 0);
    }

    #[test]
    fn eviction_preserves_equation_2_at_the_window_edge() {
        // The sentinel entry is exactly what the unbounded scan would select when the
        // 1-hour cutoff lands at or beyond the window edge.
        let mut fx = extractor();
        fx.update(&ce_event(1, 0, 10, 0, 0, 1, 1)); // 10 CEs total at t=0
        fx.update(&ce_event(1, 30, 20, 0, 0, 1, 2)); // 30 at t=30min
        fx.update(&ce_event(1, 65, 60, 0, 0, 1, 3)); // 90 at t=65min
                                                     // t=0 fell out of the 1-hour window of t=65min but is the sentinel.
        assert_eq!(fx.history_len(), 3);
        let s = fx.snapshot(0.0, 1);
        assert!(
            (s.ce_var_1hour - 9.0).abs() < 1e-12,
            "90 / 10 via the sentinel"
        );

        // A much later event evicts everything into a single sentinel (t=65min).
        fx.update(&ce_event(1, 600, 10, 0, 0, 1, 4)); // 100 at t=600min
        assert_eq!(fx.history_len(), 2);
        let s = fx.snapshot(0.0, 1);
        // One hour before t=600min is t=540min: latest snapshot ≤ that is t=65min.
        assert!((s.ce_var_1hour - 100.0 / 90.0).abs() < 1e-12);
        assert_eq!(fx.events_seen(), 4);
    }

    #[test]
    fn equal_time_events_keep_the_last_snapshot_as_sentinel() {
        // Two events at the same timestamp produce two history entries; the reverse
        // scan selects the later one, so eviction must keep exactly it as sentinel.
        let mut fx = extractor();
        fx.update(&ce_event(1, 0, 10, 0, 0, 1, 1)); // 10 CEs total
        fx.update(&ce_event(1, 0, 5, 0, 0, 1, 2)); // 15 CEs total, same time
        fx.update(&ce_event(1, 65, 30, 0, 0, 1, 3)); // 45 total
        assert_eq!(fx.history_len(), 2, "only the later t=0 entry survives");
        let s = fx.snapshot(0.0, 1);
        assert!((s.ce_var_1hour - 3.0).abs() < 1e-12, "45 / 15, not 45 / 10");
    }

    #[test]
    #[should_panic(expected = "wrong node")]
    fn wrong_node_rejected() {
        let mut fx = extractor();
        fx.update(&merged(2, 0));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_events_rejected() {
        let mut fx = extractor();
        fx.update(&merged(1, 10));
        fx.update(&merged(1, 5));
    }
}
