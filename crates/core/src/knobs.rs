//! Unified `UERL_*` environment-knob parsing for the crates above `uerl-core`.
//!
//! The parsers themselves live in [`uerl_obs::knob`] (the observability crate is the
//! workspace's dependency-free leaf, so even `uerl-rl` could use them); this module
//! re-exports them under the crate most consumers already depend on and adds the
//! gate accessor for the metrics knob. Knobs routed through here: `UERL_QUANT`
//! ([`crate::policies::QuantMode`]), `UERL_RETENTION`
//! ([`crate::session_core::RecordRetention`]), `UERL_HYPER_SEARCH` (the evaluator's
//! search strategy), `UERL_SCALE` (the bench harness) and `UERL_METRICS` (the
//! observability gate).

pub use uerl_obs::knob::{choice, env_choice};

/// Whether the `UERL_METRICS` gate is open (see [`uerl_obs::enabled`]).
pub fn metrics_enabled() -> bool {
    uerl_obs::enabled()
}

#[cfg(test)]
mod tests {
    #[test]
    fn the_metrics_gate_is_reachable_through_core() {
        // The gate's value depends on the process environment; this pins only that the
        // re-export resolves and agrees with the obs crate.
        assert_eq!(super::metrics_enabled(), uerl_obs::enabled());
    }
}
