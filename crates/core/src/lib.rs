//! # uerl-core
//!
//! The paper's primary contribution: adaptive mitigation of uncorrected DRAM errors,
//! formulated as a Markov decision process and solved with a dueling double deep
//! Q-network.
//!
//! * [`config`] — the user-facing knobs: mitigation cost (node-minutes) and whether the
//!   job can restart from a mitigation point. These are the *only* user-defined
//!   parameters of the method.
//! * [`cost`] — Equation 3 (potential UE cost) and Equation 4 (reward).
//! * [`state`] — the state feature vector of Table 1.
//! * [`features`] — the per-node feature extractor, including the Equation 2 feature
//!   variation over 1 minute and 1 hour.
//! * [`event_stream`] — per-node timelines of per-minute merged events, the episode
//!   substrate for training and evaluation.
//! * [`session_core`] — the shared per-node accounting core (cost reference point,
//!   mitigation/UE counters and logs, record-retention knob) that both the pull-mode
//!   environment and the push-mode serving session wrap.
//! * [`env`] — the environment: it walks a node's timeline, assigns jobs from the job
//!   sampler, queries a policy at every event, applies mitigations and pays UE costs.
//! * [`policy`] / [`policies`] — the mitigation-policy interface and the eight policies
//!   evaluated in the paper (Never, Always, SC20-RF with optimal and perturbed
//!   thresholds, Myopic-RF, the RL agent and the Oracle).
//! * [`rf_dataset`] — construction of the supervised training set for the SC20-RF
//!   baseline (1-day prediction window).
//! * [`trainer`] — the RL training loop over randomly drawn node episodes.
//! * [`knobs`] — unified `UERL_*` environment-knob parsing (re-exported from
//!   `uerl_obs::knob`) and the `UERL_METRICS` gate accessor.

pub mod config;
pub mod cost;
pub mod env;
pub mod event_stream;
pub mod features;
pub mod knobs;
pub mod policies;
pub mod policy;
pub mod rf_dataset;
pub mod session_core;
pub mod state;
pub mod trainer;

pub use config::MitigationConfig;
pub use env::{MitigationEnv, StepOutcome};
pub use event_stream::{NodeTimeline, TimelineSet};
pub use features::FeatureExtractor;
pub use policies::{
    AlwaysMitigate, MyopicRfPolicy, NeverMitigate, OraclePolicy, RlPolicy, ThresholdRfPolicy,
};
pub use policy::MitigationPolicy;
pub use session_core::{RecordRetention, SessionCore, UeRecord};
pub use state::{StateFeatures, STATE_DIM};
pub use trainer::{RlTrainer, TrainerConfig, TrainingOutcome};
