//! The eight mitigation policies evaluated in the paper (Section 4.2).

use crate::event_stream::TimelineSet;
use crate::policy::MitigationPolicy;
use crate::state::{StateFeatures, STATE_DIM};
use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::Arc;
use uerl_forest::RandomForest;
use uerl_nn::{QuantScratch, QuantizedNetwork};
use uerl_rl::{greedy_action, greedy_action_f32, DqnAgent, InferenceScratch};
use uerl_trace::types::{NodeId, SimTime};

thread_local! {
    /// Per-thread inference scratch shared by every RL policy instance. The evaluator
    /// replays policies over thousands of node timelines in parallel from one shared
    /// `&policy`, so the scratch cannot live in the policy itself; a thread-local keeps
    /// the rollout hot loop allocation-free without poisoning `decide`'s `&self`
    /// signature. Scratch contents are overwritten on every call and never influence
    /// results, so sharing across agents and threads is sound.
    static RL_SCRATCH: RefCell<InferenceScratch> = RefCell::new(InferenceScratch::new());

    /// Per-thread scratch of the quantized inference path (same sharing rationale).
    static QUANT_SCRATCH: RefCell<QuantScratch> = RefCell::new(QuantScratch::new());
}

/// Numeric path of RL inference: full-precision f64 (the default, bit-exact against the
/// offline evaluator) or the symmetric-i8 quantized mirror.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuantMode {
    /// Full-precision f64 inference.
    #[default]
    Off,
    /// Symmetric per-layer i8 weights, i32 accumulators, f32 dequant at layer
    /// boundaries. Decisions may diverge from f64 on near-ties but are themselves
    /// deterministic across batch sizes, shard counts and thread counts.
    I8,
}

impl QuantMode {
    /// Parse a `UERL_QUANT`-style value: `off` (or empty) / `i8`.
    ///
    /// # Panics
    /// Panics on any other value — a silently misread knob would invalidate a
    /// measurement run.
    pub fn parse(value: &str) -> Self {
        crate::knobs::choice(
            "UERL_QUANT",
            value,
            &[
                ("", QuantMode::Off),
                ("off", QuantMode::Off),
                ("i8", QuantMode::I8),
            ],
        )
    }

    /// The mode selected by the `UERL_QUANT` environment variable (default: off).
    pub fn from_env() -> Self {
        crate::knobs::env_choice(
            "UERL_QUANT",
            &[
                ("", QuantMode::Off),
                ("off", QuantMode::Off),
                ("i8", QuantMode::I8),
            ],
            QuantMode::Off,
        )
    }
}

/// Greedy decision for one state through the thread-local scratch (no allocation after
/// the thread's first call). Bit-identical to `agent.act_greedy(&state.to_vector())`.
fn decide_greedy(agent: &DqnAgent, state: &StateFeatures) -> bool {
    RL_SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        state.write_vector(scratch.input_mut(1, STATE_DIM).row_mut(0));
        greedy_action(agent.q_values_batch(scratch).row(0)) == 1
    })
}

/// Greedy decisions for a micro-batch of states through one batched forward pass over
/// the thread-local scratch. Each row's Q-values are bit-identical to single-state
/// inference, so the decisions are independent of how states are grouped into batches.
fn decide_greedy_batch(agent: &DqnAgent, states: &[StateFeatures], out: &mut Vec<bool>) {
    if states.is_empty() {
        return;
    }
    RL_SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        let input = scratch.input_mut(states.len(), STATE_DIM);
        for (i, state) in states.iter().enumerate() {
            state.write_vector(input.row_mut(i));
        }
        let q = agent.q_values_batch(scratch);
        out.extend((0..states.len()).map(|i| greedy_action(q.row(i)) == 1));
    });
}

/// Greedy decisions for a micro-batch of states through the i8 quantized network. The
/// f64 staging matrix is borrowed from the regular RL scratch; the quantized forward
/// pass runs through the per-thread [`QuantScratch`]. Each row's Q-values depend only
/// on that row (per-row input scales, exact integer accumulation), so the decisions are
/// independent of batching — the same transparency contract as the f64 path.
fn decide_quantized_batch(qnet: &QuantizedNetwork, states: &[StateFeatures], out: &mut Vec<bool>) {
    if states.is_empty() {
        return;
    }
    RL_SCRATCH.with(|scratch| {
        QUANT_SCRATCH.with(|quant| {
            let scratch = &mut *scratch.borrow_mut();
            let quant = &mut *quant.borrow_mut();
            let input = scratch.input_mut(states.len(), STATE_DIM);
            for (i, state) in states.iter().enumerate() {
                state.write_vector(input.row_mut(i));
            }
            let n = qnet.output_dim();
            let q = qnet.forward_batch_into(input, quant);
            out.extend((0..states.len()).map(|i| greedy_action_f32(&q[i * n..(i + 1) * n]) == 1));
        });
    });
}

/// *Never-mitigate*: never initiates a mitigation. Maximum UE cost, zero mitigation cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverMitigate;

impl MitigationPolicy for NeverMitigate {
    fn name(&self) -> &str {
        "Never-mitigate"
    }

    fn decide(&self, _state: &StateFeatures) -> bool {
        false
    }
}

/// *Always-mitigate*: triggers a mitigation at every error-log event. Minimum UE cost
/// among event-triggered policies, maximum mitigation cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysMitigate;

impl MitigationPolicy for AlwaysMitigate {
    fn name(&self) -> &str {
        "Always-mitigate"
    }

    fn decide(&self, _state: &StateFeatures) -> bool {
        true
    }
}

/// The *Oracle*: mitigates exactly on the last event before each uncorrected error. It is
/// not realisable (it needs future knowledge) but bounds the achievable saving.
#[derive(Debug, Clone, Default)]
pub struct OraclePolicy {
    mitigate_at: HashSet<(NodeId, SimTime)>,
}

impl OraclePolicy {
    /// Build the oracle from the evaluation timelines: for every fatal event, the last
    /// preceding non-fatal event of the same node becomes a mitigation point.
    pub fn from_timelines(timelines: &TimelineSet) -> Self {
        let mut mitigate_at = HashSet::new();
        for timeline in timelines.timelines() {
            let events = timeline.events();
            for (i, event) in events.iter().enumerate() {
                if !event.fatal {
                    continue;
                }
                if let Some(prev) = events[..i].iter().rev().find(|e| !e.fatal) {
                    mitigate_at.insert((timeline.node(), prev.time));
                }
            }
        }
        Self { mitigate_at }
    }

    /// Number of planned mitigations.
    pub fn planned_mitigations(&self) -> usize {
        self.mitigate_at.len()
    }
}

impl MitigationPolicy for OraclePolicy {
    fn name(&self) -> &str {
        "Oracle"
    }

    fn decide(&self, state: &StateFeatures) -> bool {
        self.mitigate_at.contains(&(state.node, state.time))
    }
}

/// *SC20-RF*: the random-forest predictor of Boixaderas et al. (SC 2020). Mitigates when
/// the predicted UE probability exceeds a user-supplied threshold. The probability is
/// computed from the error features only (the predictor is workload-blind).
///
/// The forest is held behind an [`Arc`] so the evaluator's threshold scan can run many
/// candidate thresholds over one shared fitted forest without deep-cloning the trees.
#[derive(Debug, Clone)]
pub struct ThresholdRfPolicy {
    forest: Arc<RandomForest>,
    threshold: f64,
    name: String,
    training_cost: f64,
}

impl ThresholdRfPolicy {
    /// Wrap a trained forest with a decision threshold.
    ///
    /// # Panics
    /// Panics if the threshold is outside `[0, 1]`.
    pub fn new(forest: RandomForest, threshold: f64, name: impl Into<String>) -> Self {
        Self::shared(Arc::new(forest), threshold, name)
    }

    /// Like [`ThresholdRfPolicy::new`] but sharing an already-wrapped forest (no tree
    /// copies; this is what the threshold grid scan uses).
    ///
    /// # Panics
    /// Panics if the threshold is outside `[0, 1]`.
    pub fn shared(forest: Arc<RandomForest>, threshold: f64, name: impl Into<String>) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0, 1]"
        );
        Self {
            forest,
            threshold,
            name: name.into(),
            training_cost: 0.0,
        }
    }

    /// Attach the node-hours spent training this model (for the cost-benefit analysis).
    pub fn with_training_cost(mut self, node_hours: f64) -> Self {
        self.training_cost = node_hours.max(0.0);
        self
    }

    /// The decision threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Predicted UE probability for a state (exposed for Figure 6, which uses the RF
    /// probability as a proxy for UE likelihood).
    pub fn probability(&self, state: &StateFeatures) -> f64 {
        self.forest.predict_proba(&state.to_error_vector())
    }
}

impl MitigationPolicy for ThresholdRfPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn decide(&self, state: &StateFeatures) -> bool {
        self.probability(state) >= self.threshold
    }

    fn training_cost_node_hours(&self) -> f64 {
        self.training_cost
    }
}

/// *Myopic-RF*: mitigates when the RF-estimated expected UE cost (probability × potential
/// UE cost) exceeds the mitigation cost. The adaptive-but-greedy extension of SC20-RF.
#[derive(Debug, Clone)]
pub struct MyopicRfPolicy {
    forest: RandomForest,
    mitigation_cost_node_hours: f64,
    training_cost: f64,
}

impl MyopicRfPolicy {
    /// Wrap a trained forest with the mitigation cost it should weigh against.
    ///
    /// # Panics
    /// Panics if the mitigation cost is negative.
    pub fn new(forest: RandomForest, mitigation_cost_node_hours: f64) -> Self {
        assert!(
            mitigation_cost_node_hours >= 0.0,
            "mitigation cost must be non-negative"
        );
        Self {
            forest,
            mitigation_cost_node_hours,
            training_cost: 0.0,
        }
    }

    /// Attach the node-hours spent training this model.
    pub fn with_training_cost(mut self, node_hours: f64) -> Self {
        self.training_cost = node_hours.max(0.0);
        self
    }

    /// The expected UE cost at a state.
    pub fn expected_ue_cost(&self, state: &StateFeatures) -> f64 {
        self.forest.predict_proba(&state.to_error_vector()) * state.potential_ue_cost
    }
}

impl MitigationPolicy for MyopicRfPolicy {
    fn name(&self) -> &str {
        "Myopic-RF"
    }

    fn decide(&self, state: &StateFeatures) -> bool {
        self.expected_ue_cost(state) > self.mitigation_cost_node_hours
    }

    fn training_cost_node_hours(&self) -> f64 {
        self.training_cost
    }
}

/// *RL*: the paper's agent — a trained dueling double deep Q-network queried greedily.
///
/// With [`RlPolicy::with_quantization`]`(QuantMode::I8)` the decisions route through a
/// frozen symmetric-i8 mirror of the online network (shared behind an [`Arc`], so
/// cloning the policy for the serving fan-out does not copy the quantized weights).
/// Quantized decisions may diverge from f64 on near-ties, but are themselves
/// batch-transparent and thread-count-deterministic, so every serving-parity guarantee
/// holds within the i8 run.
#[derive(Debug, Clone)]
pub struct RlPolicy {
    agent: DqnAgent,
    quantized: Option<Arc<QuantizedNetwork>>,
    training_cost: f64,
}

impl RlPolicy {
    /// Wrap a trained agent (full-precision inference).
    pub fn new(agent: DqnAgent) -> Self {
        Self {
            agent,
            quantized: None,
            training_cost: 0.0,
        }
    }

    /// Attach the node-hours spent training and validating this agent.
    pub fn with_training_cost(mut self, node_hours: f64) -> Self {
        self.training_cost = node_hours.max(0.0);
        self
    }

    /// Select the inference path: [`QuantMode::I8`] freezes the online network into its
    /// i8 mirror now (a snapshot; the f64 agent is kept for Q-value inspection),
    /// [`QuantMode::Off`] drops any mirror and restores full-precision decisions.
    pub fn with_quantization(mut self, mode: QuantMode) -> Self {
        self.quantized = match mode {
            QuantMode::Off => None,
            QuantMode::I8 => Some(Arc::new(self.agent.quantize())),
        };
        self
    }

    /// The active inference path.
    pub fn quant_mode(&self) -> QuantMode {
        if self.quantized.is_some() {
            QuantMode::I8
        } else {
            QuantMode::Off
        }
    }

    /// The underlying agent (e.g. for inspecting Q-values in Figure 6).
    pub fn agent(&self) -> &DqnAgent {
        &self.agent
    }

    /// Full-precision Q-values of (do-nothing, mitigate) at a state. Always the f64
    /// network, regardless of the decision path: Figure 6 inspects the learned
    /// Q-surface, not the quantization error.
    pub fn q_values(&self, state: &StateFeatures) -> Vec<f64> {
        self.agent.q_values(&state.to_vector())
    }
}

impl MitigationPolicy for RlPolicy {
    fn name(&self) -> &str {
        match self.quantized {
            Some(_) => "RL-i8",
            None => "RL",
        }
    }

    fn decide(&self, state: &StateFeatures) -> bool {
        match &self.quantized {
            Some(qnet) => {
                let mut out = Vec::with_capacity(1);
                decide_quantized_batch(qnet, std::slice::from_ref(state), &mut out);
                out[0]
            }
            None => decide_greedy(&self.agent, state),
        }
    }

    fn decide_batch(&self, states: &[StateFeatures], out: &mut Vec<bool>) {
        match &self.quantized {
            Some(qnet) => decide_quantized_batch(qnet, states, out),
            None => decide_greedy_batch(&self.agent, states, out),
        }
    }

    fn training_cost_node_hours(&self) -> f64 {
        self.training_cost
    }
}

/// A borrowing view of a (possibly still-training) agent as the greedy RL policy.
///
/// The successive-halving hyperparameter search scores every surviving candidate at
/// every rung; wrapping the live agent by reference lets those replays run without
/// cloning the agent (and its replay memory) or compacting it — compaction would end
/// the candidate's training. Decisions are identical to [`RlPolicy`] wrapping the same
/// agent state.
#[derive(Debug, Clone, Copy)]
pub struct RlPolicyView<'a> {
    agent: &'a DqnAgent,
}

impl<'a> RlPolicyView<'a> {
    /// Borrow a trained (or training) agent as a greedy policy.
    pub fn new(agent: &'a DqnAgent) -> Self {
        Self { agent }
    }
}

impl MitigationPolicy for RlPolicyView<'_> {
    fn name(&self) -> &str {
        "RL"
    }

    fn decide(&self, state: &StateFeatures) -> bool {
        decide_greedy(self.agent, state)
    }

    fn decide_batch(&self, states: &[StateFeatures], out: &mut Vec<bool>) {
        decide_greedy_batch(self.agent, states, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event_stream::NodeTimeline;
    use uerl_forest::{Dataset, RandomForestConfig};
    use uerl_rl::AgentConfig;
    use uerl_trace::log::MergedEvent;

    fn state(node: u32, minute: i64, ce_total: u64, cost: f64) -> StateFeatures {
        let mut s = StateFeatures::empty(NodeId(node), SimTime::from_minutes(minute));
        s.ce_since_start = ce_total;
        s.potential_ue_cost = cost;
        s
    }

    fn merged(node: u32, minute: i64, fatal: bool) -> MergedEvent {
        MergedEvent {
            time: SimTime::from_minutes(minute),
            node: NodeId(node),
            ce_count: 1,
            ce_details: Vec::new(),
            ue_warnings: 0,
            boots: 0,
            retired_slots: Vec::new(),
            fatal,
            ue_detector: None,
        }
    }

    /// A forest trained so that many CEs (a large error-feature vector) means "UE likely".
    fn trained_forest() -> RandomForest {
        let mut data = Dataset::new();
        for i in 0..200 {
            let ce = if i % 2 == 0 { 0 } else { 100_000 };
            let s = state(0, 0, ce, 0.0);
            data.push(s.to_error_vector(), ce > 0);
        }
        RandomForest::fit(&data, &RandomForestConfig::small(3))
    }

    #[test]
    fn never_and_always_are_constant() {
        let never = NeverMitigate;
        let always = AlwaysMitigate;
        let s = state(1, 10, 5, 100.0);
        assert!(!never.decide(&s));
        assert!(always.decide(&s));
        assert_eq!(never.name(), "Never-mitigate");
        assert_eq!(always.name(), "Always-mitigate");
    }

    #[test]
    fn oracle_mitigates_only_on_the_last_event_before_a_ue() {
        // Node 1: CE@10, CE@20, UE@30. The oracle mitigates at the CE@20 event only.
        let tl = NodeTimeline::new(
            NodeId(1),
            SimTime::ZERO,
            SimTime::from_days(1),
            vec![
                merged(1, 10, false),
                merged(1, 20, false),
                merged(1, 30, true),
            ],
        );
        let timelines = TimelineSet::from_timelines(SimTime::ZERO, SimTime::from_days(1), vec![tl]);
        let oracle = OraclePolicy::from_timelines(&timelines);
        assert_eq!(oracle.planned_mitigations(), 1);
        assert!(!oracle.decide(&state(1, 10, 1, 0.0)));
        assert!(oracle.decide(&state(1, 20, 2, 0.0)));
        assert!(
            !oracle.decide(&state(2, 20, 2, 0.0)),
            "other nodes are untouched"
        );
    }

    #[test]
    fn oracle_with_silent_ue_plans_no_mitigation_for_it() {
        // A UE with no preceding event cannot be mitigated by any event-triggered policy.
        let tl = NodeTimeline::new(
            NodeId(3),
            SimTime::ZERO,
            SimTime::from_days(1),
            vec![merged(3, 30, true), merged(3, 60, false)],
        );
        let timelines = TimelineSet::from_timelines(SimTime::ZERO, SimTime::from_days(1), vec![tl]);
        let oracle = OraclePolicy::from_timelines(&timelines);
        assert_eq!(oracle.planned_mitigations(), 0);
    }

    #[test]
    fn threshold_rf_policy_follows_the_forest_and_threshold() {
        let forest = trained_forest();
        let policy = ThresholdRfPolicy::new(forest, 0.5, "SC20-RF").with_training_cost(0.1);
        let quiet = state(1, 10, 0, 50.0);
        let noisy = state(1, 20, 100_000, 50.0);
        assert!(!policy.decide(&quiet));
        assert!(policy.decide(&noisy));
        assert!(policy.probability(&noisy) > policy.probability(&quiet));
        assert_eq!(policy.name(), "SC20-RF");
        assert_eq!(policy.training_cost_node_hours(), 0.1);
        assert_eq!(policy.threshold(), 0.5);
    }

    #[test]
    fn myopic_rf_weighs_cost_against_mitigation_cost() {
        let forest = trained_forest();
        let policy = MyopicRfPolicy::new(forest, 2.0 / 60.0);
        // High probability but negligible potential cost: not worth mitigating.
        let noisy_cheap = state(1, 10, 100_000, 0.001);
        // High probability and high potential cost: mitigate.
        let noisy_expensive = state(1, 20, 100_000, 1000.0);
        // Low probability, even with huge cost the expected cost may still exceed the
        // tiny 2-node-minute mitigation cost; just confirm ordering of expected costs.
        assert!(!policy.decide(&noisy_cheap));
        assert!(policy.decide(&noisy_expensive));
        assert!(policy.expected_ue_cost(&noisy_expensive) > policy.expected_ue_cost(&noisy_cheap));
        assert_eq!(policy.name(), "Myopic-RF");
    }

    #[test]
    fn rl_policy_wraps_a_greedy_agent() {
        let agent = DqnAgent::new(AgentConfig::small(crate::state::STATE_DIM).with_seed(1));
        let policy = RlPolicy::new(agent).with_training_cost(0.5);
        let s = state(1, 10, 5, 10.0);
        let decision = policy.decide(&s);
        let q = policy.q_values(&s);
        assert_eq!(q.len(), 2);
        assert_eq!(decision, q[1] > q[0]);
        assert_eq!(policy.name(), "RL");
        assert_eq!(policy.training_cost_node_hours(), 0.5);
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn bad_threshold_rejected() {
        ThresholdRfPolicy::new(trained_forest(), 1.5, "bad");
    }

    #[test]
    fn rl_decisions_match_the_allocating_agent_path_exactly() {
        // The scratch-routed decide must agree with act_greedy on to_vector for every
        // state, and decide_batch must be batch-transparent: the same decisions at any
        // grouping.
        let agent = DqnAgent::new(AgentConfig::small(crate::state::STATE_DIM).with_seed(9));
        let states: Vec<StateFeatures> = (0..13)
            .map(|i| {
                let mut s = state(i, i as i64 * 10, (i as u64) * 17 % 5, i as f64 * 3.5);
                s.ue_warnings = u64::from(i % 3);
                s.hours_since_boot = f64::from(i) * 0.7;
                s
            })
            .collect();
        let policy = RlPolicy::new(agent);
        let reference: Vec<bool> = states
            .iter()
            .map(|s| policy.agent().act_greedy(&s.to_vector()) == 1)
            .collect();
        let singles: Vec<bool> = states.iter().map(|s| policy.decide(s)).collect();
        assert_eq!(singles, reference);
        for batch_size in [1, 2, 5, 13] {
            let mut batched = Vec::new();
            for chunk in states.chunks(batch_size) {
                policy.decide_batch(chunk, &mut batched);
            }
            assert_eq!(batched, reference, "batch size {batch_size} diverged");
        }
        // The borrowing view decides identically.
        let view = RlPolicyView::new(policy.agent());
        let mut viewed = Vec::new();
        view.decide_batch(&states, &mut viewed);
        assert_eq!(viewed, reference);
    }

    #[test]
    fn quant_mode_parses_the_env_values() {
        assert_eq!(QuantMode::parse(""), QuantMode::Off);
        assert_eq!(QuantMode::parse("off"), QuantMode::Off);
        assert_eq!(QuantMode::parse("i8"), QuantMode::I8);
        assert_eq!(QuantMode::default(), QuantMode::Off);
    }

    #[test]
    #[should_panic(expected = "UERL_QUANT must be")]
    fn quant_mode_rejects_unknown_values() {
        let _ = QuantMode::parse("fp8");
    }

    #[test]
    fn quantized_rl_policy_is_batch_transparent_and_renamed() {
        // The i8 path must uphold the same batching-transparency contract as f64: the
        // same decisions at every grouping, and `decide` agreeing with `decide_batch`.
        let agent = DqnAgent::new(AgentConfig::small(crate::state::STATE_DIM).with_seed(9));
        let policy = RlPolicy::new(agent).with_quantization(QuantMode::I8);
        assert_eq!(policy.name(), "RL-i8");
        assert_eq!(policy.quant_mode(), QuantMode::I8);
        let states: Vec<StateFeatures> = (0..13)
            .map(|i| {
                let mut s = state(i, i as i64 * 10, (i as u64) * 17 % 5, i as f64 * 3.5);
                s.ue_warnings = u64::from(i % 3);
                s.hours_since_boot = f64::from(i) * 0.7;
                s
            })
            .collect();
        let singles: Vec<bool> = states.iter().map(|s| policy.decide(s)).collect();
        for batch_size in [1, 2, 5, 13] {
            let mut batched = Vec::new();
            for chunk in states.chunks(batch_size) {
                policy.decide_batch(chunk, &mut batched);
            }
            assert_eq!(batched, singles, "batch size {batch_size} diverged");
        }
        // Cloning shares the quantized mirror and decides identically.
        let cloned = policy.clone();
        let mut from_clone = Vec::new();
        cloned.decide_batch(&states, &mut from_clone);
        assert_eq!(from_clone, singles);
        // Switching back off restores the full-precision path and name.
        let off = cloned.with_quantization(QuantMode::Off);
        assert_eq!(off.name(), "RL");
        assert_eq!(off.quant_mode(), QuantMode::Off);
    }

    #[test]
    fn default_decide_batch_loops_decide() {
        let policy = AlwaysMitigate;
        let states = vec![state(1, 10, 0, 0.0), state(2, 20, 3, 5.0)];
        let mut out = vec![false]; // pre-existing entries must be preserved
        policy.decide_batch(&states, &mut out);
        assert_eq!(out, vec![false, true, true]);
    }
}
