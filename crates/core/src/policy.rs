//! The mitigation-policy interface.

use crate::state::StateFeatures;

/// A policy that decides, at every error-related event, whether to trigger a UE
/// mitigation action.
///
/// All eight approaches evaluated in the paper (Never/Always-mitigate, SC20-RF with
/// optimal and perturbed thresholds, Myopic-RF, the RL agent and the Oracle) implement
/// this trait, which is what lets the cost-benefit harness treat them uniformly.
///
/// `decide` takes `&self`: a policy is immutable during evaluation, which is what lets
/// the cost-benefit harness replay a policy over thousands of node timelines in
/// parallel from one shared reference.
pub trait MitigationPolicy {
    /// Human-readable policy name (used in reports, tables and figures).
    fn name(&self) -> &str;

    /// Decide whether to mitigate given the current state.
    fn decide(&self, state: &StateFeatures) -> bool;

    /// Decide a whole micro-batch of states at once, appending one decision per state
    /// to `out` in state order.
    ///
    /// This is the hook the online serving layer batches through: decision requests
    /// arriving in the same event-time tick are stacked and answered in one call.
    /// The contract every implementation must honour is **batch transparency** — the
    /// decisions must be identical (bit-identical, where floating point is involved)
    /// to calling [`MitigationPolicy::decide`] on each state alone, for any grouping
    /// of states into batches. The default simply loops `decide`; the RL policies
    /// override it with a single batched forward pass whose per-row results are
    /// bit-equal to single-row inference.
    fn decide_batch(&self, states: &[StateFeatures], out: &mut Vec<bool>) {
        out.extend(states.iter().map(|s| self.decide(s)));
    }

    /// Node-hours spent training and validating this policy's model (added to the
    /// mitigation cost in the cost-benefit analysis). Zero for model-free policies.
    fn training_cost_node_hours(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uerl_trace::types::{NodeId, SimTime};

    /// A minimal policy used to exercise the trait's default method.
    struct Threshold(f64);

    impl MitigationPolicy for Threshold {
        fn name(&self) -> &str {
            "threshold"
        }

        fn decide(&self, state: &StateFeatures) -> bool {
            state.potential_ue_cost > self.0
        }
    }

    #[test]
    fn trait_objects_work_and_default_training_cost_is_zero() {
        let policy: Box<dyn MitigationPolicy> = Box::new(Threshold(10.0));
        let mut cheap = StateFeatures::empty(NodeId(0), SimTime::ZERO);
        cheap.potential_ue_cost = 1.0;
        let mut expensive = cheap.clone();
        expensive.potential_ue_cost = 100.0;
        assert!(!policy.decide(&cheap));
        assert!(policy.decide(&expensive));
        assert_eq!(policy.name(), "threshold");
        assert_eq!(policy.training_cost_node_hours(), 0.0);
    }
}
