//! Supervised training-set construction for the SC20-RF baseline.
//!
//! The random-forest baseline is a classical supervised predictor: every non-fatal event
//! becomes one sample whose features are the Table 1 error features (without the
//! potential UE cost — SC20-RF is workload-blind) and whose label is "a fatal event
//! follows on this node within the prediction window" (one day, as in the original SC'20
//! study).

use crate::event_stream::TimelineSet;
use crate::features::FeatureExtractor;
use uerl_forest::Dataset;
use uerl_trace::types::{NodeId, SimTime};

/// Metadata for one sample of the RF dataset: which node/event it came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleOrigin {
    /// Node the sample belongs to.
    pub node: NodeId,
    /// Timestamp of the event the sample was extracted at.
    pub time: SimTime,
}

/// Build the supervised dataset for the RF baseline from a set of timelines.
///
/// Returns the dataset together with the per-sample origins (used by the evaluation
/// harness to map predictions back to events). `prediction_window` is the look-ahead in
/// seconds within which a fatal event makes the label positive (the paper uses one day).
pub fn build_rf_dataset(
    timelines: &TimelineSet,
    prediction_window: i64,
) -> (Dataset, Vec<SampleOrigin>) {
    let mut dataset = Dataset::new();
    let mut origins = Vec::new();
    for timeline in timelines.timelines() {
        let fatal_times: Vec<SimTime> = timeline
            .events()
            .iter()
            .filter(|e| e.fatal)
            .map(|e| e.time)
            .collect();
        let mut extractor = FeatureExtractor::new(timeline.node(), timeline.window_start());
        for event in timeline.events() {
            extractor.update(event);
            if event.fatal {
                continue;
            }
            let label = fatal_times
                .iter()
                .any(|&t| t > event.time && t.delta_secs(event.time) <= prediction_window);
            let features = extractor.snapshot(0.0, 1).to_error_vector();
            dataset.push(features, label);
            origins.push(SampleOrigin {
                node: timeline.node(),
                time: event.time,
            });
        }
    }
    (dataset, origins)
}

/// [`build_rf_dataset`] with the paper's one-day prediction window.
pub fn build_rf_dataset_1day(timelines: &TimelineSet) -> (Dataset, Vec<SampleOrigin>) {
    build_rf_dataset(timelines, SimTime::DAY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event_stream::NodeTimeline;
    use uerl_trace::log::MergedEvent;

    fn merged(node: u32, minute: i64, fatal: bool) -> MergedEvent {
        MergedEvent {
            time: SimTime::from_minutes(minute),
            node: NodeId(node),
            ce_count: 2,
            ce_details: Vec::new(),
            ue_warnings: 0,
            boots: 0,
            retired_slots: Vec::new(),
            fatal,
            ue_detector: None,
        }
    }

    fn set(timelines: Vec<NodeTimeline>) -> TimelineSet {
        TimelineSet::from_timelines(SimTime::ZERO, SimTime::from_days(10), timelines)
    }

    #[test]
    fn labels_follow_the_prediction_window() {
        // Node 1: CE at minute 10 (UE at minute 100 is within 1 day -> positive),
        //         CE at minute 2000 (next UE at minute 5000 is > 1 day away -> negative),
        //         UE at minute 100 and UE at minute 5000 are skipped as samples.
        let tl = NodeTimeline::new(
            NodeId(1),
            SimTime::ZERO,
            SimTime::from_days(10),
            vec![
                merged(1, 10, false),
                merged(1, 100, true),
                merged(1, 2000, false),
                merged(1, 5000, true),
            ],
        );
        let (data, origins) = build_rf_dataset_1day(&set(vec![tl]));
        assert_eq!(data.len(), 2);
        assert_eq!(origins.len(), 2);
        assert!(data.label_of(0), "UE 90 minutes later is inside the window");
        assert!(
            !data.label_of(1),
            "UE 50 hours later is outside the 1-day window"
        );
        assert_eq!(origins[0].time, SimTime::from_minutes(10));
    }

    #[test]
    fn fatal_events_are_not_samples() {
        let tl = NodeTimeline::new(
            NodeId(2),
            SimTime::ZERO,
            SimTime::from_days(10),
            vec![merged(2, 10, true), merged(2, 20, true)],
        );
        let (data, origins) = build_rf_dataset_1day(&set(vec![tl]));
        assert!(data.is_empty());
        assert!(origins.is_empty());
    }

    #[test]
    fn feature_dimension_matches_error_vector() {
        let tl = NodeTimeline::new(
            NodeId(1),
            SimTime::ZERO,
            SimTime::from_days(10),
            vec![merged(1, 10, false)],
        );
        let (data, _) = build_rf_dataset_1day(&set(vec![tl]));
        assert_eq!(data.n_features(), crate::state::STATE_DIM - 1);
    }

    #[test]
    fn window_length_changes_labels() {
        let tl = NodeTimeline::new(
            NodeId(1),
            SimTime::ZERO,
            SimTime::from_days(10),
            vec![merged(1, 10, false), merged(1, 10 + 3 * 60, true)],
        );
        // 3 hours to the UE: positive with a 1-day window, negative with a 1-hour window.
        let (wide, _) = build_rf_dataset(&set(vec![tl.clone()]), SimTime::DAY);
        let (narrow, _) = build_rf_dataset(&set(vec![tl]), SimTime::HOUR);
        assert!(wide.label_of(0));
        assert!(!narrow.label_of(0));
    }

    #[test]
    fn multiple_nodes_contribute_samples() {
        let a = NodeTimeline::new(
            NodeId(1),
            SimTime::ZERO,
            SimTime::from_days(10),
            vec![merged(1, 10, false)],
        );
        let b = NodeTimeline::new(
            NodeId(2),
            SimTime::ZERO,
            SimTime::from_days(10),
            vec![merged(2, 20, false), merged(2, 30, false)],
        );
        let (data, origins) = build_rf_dataset_1day(&set(vec![a, b]));
        assert_eq!(data.len(), 3);
        assert_eq!(origins.iter().filter(|o| o.node == NodeId(2)).count(), 2);
    }
}
