//! The shared per-node session accounting core.
//!
//! Exactly one type owns every parity-critical accounting rule of a cost lane:
//! [`CostAccount`] holds the Equation 3 cost reference point (`last_mitigation`, reset
//! by restartable mitigations, cleared when a fatal event pulls the node from
//! production), the mitigation / UE counters and cost totals, and the decision / UE
//! record logs — borrowing the job sequence at each call. [`SessionCore`] binds one
//! account to a node's owned jobs and configuration; the serving crate's shadow-policy
//! scoring runs extra accounts against the same shared jobs.
//!
//! Both the pull-mode [`crate::env::MitigationEnv`] (offline training and evaluation)
//! and the push-mode `NodeSession` of the serving crate wrap a [`SessionCore`] instead
//! of mirroring these fields, so the two paths cannot drift: the serving-parity
//! guarantee — served decisions and costs bit-identical to the offline rollout —
//! reduces to "both wrappers call the same methods in the same event order".
//!
//! Record retention is a knob: [`RecordRetention::Full`] keeps the per-event
//! `decisions` / `ue_records` logs (the evaluator needs them for the classical ML
//! metrics, and the parity suites compare them entry for entry);
//! [`RecordRetention::TotalsOnly`] keeps counters and cost totals only, so a
//! long-lived serving session's accounting footprint is O(1) regardless of how many
//! events the node ever produces. The retention mode never changes a counter, a cost
//! bit, or a decision — only whether the logs are kept.

use crate::config::MitigationConfig;
use crate::cost;
use serde::{Deserialize, Serialize};
use uerl_jobs::schedule::JobSequence;
use uerl_trace::types::SimTime;

/// A recorded fatal event: when it happened and how many node-hours it cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UeRecord {
    /// Timestamp of the fatal event.
    pub time: SimTime,
    /// Node-hours lost.
    pub cost: f64,
}

/// Whether a session keeps its per-event decision / UE logs or only running totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordRetention {
    /// Keep every `(time, mitigated)` decision and every [`UeRecord`]. Required by
    /// the evaluator (classical ML metrics read the logs) and by the bit-parity test
    /// suites, which compare logs entry for entry.
    #[default]
    Full,
    /// Keep counters and cost totals only; the logs stay empty. A session's
    /// accounting is O(1) in the number of events — the mode for long-lived serving
    /// fleets. Counters and cost bits are identical to [`RecordRetention::Full`].
    TotalsOnly,
}

impl RecordRetention {
    /// Parse a `UERL_RETENTION`-style value: `full` / `totals` (or empty for the
    /// default, totals-only).
    ///
    /// # Panics
    /// Panics on any other value — a silently misread knob would invalidate a
    /// measurement run.
    pub fn parse(value: &str) -> Self {
        crate::knobs::choice(
            "UERL_RETENTION",
            value,
            &[
                ("", RecordRetention::TotalsOnly),
                ("totals", RecordRetention::TotalsOnly),
                ("full", RecordRetention::Full),
            ],
        )
    }

    /// The serving-side retention selected by the `UERL_RETENTION` environment
    /// variable (default: totals-only — a fleet session should not grow with its
    /// node's event count).
    pub fn from_env() -> Self {
        crate::knobs::env_choice(
            "UERL_RETENTION",
            &[
                ("", RecordRetention::TotalsOnly),
                ("totals", RecordRetention::TotalsOnly),
                ("full", RecordRetention::Full),
            ],
            RecordRetention::TotalsOnly,
        )
    }
}

/// The accounting state of one *cost lane*: the Equation 3 reference point, the
/// mitigation / UE counters and cost totals, and the (retention-gated) logs — all the
/// parity-critical bookkeeping, with the job sequence and configuration **borrowed at
/// each call** rather than owned.
///
/// [`SessionCore`] wraps exactly one of these for the policy actually being served.
/// The serving crate's shadow-policy scoring holds one additional `CostAccount` per
/// shadow policy on each node, all sharing that node's single job sequence — which is
/// what keeps counterfactual scoring O(1) per lane and, because every lane runs these
/// same methods, bit-identical to an offline rollout of the same policy.
#[derive(Debug, Clone, Default)]
pub struct CostAccount {
    last_mitigation: Option<SimTime>,
    decision_count: u64,
    mitigation_count: u64,
    total_mitigation_cost: f64,
    ue_count: u64,
    total_ue_cost: f64,
    decisions: Vec<(SimTime, bool)>,
    ue_records: Vec<UeRecord>,
}

impl CostAccount {
    /// A fresh, zeroed account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Potential UE cost (Equation 3) and the running job's node count at instant
    /// `t`, measured from the job start or — when mitigations are restartable — this
    /// lane's last mitigation.
    pub fn potential_cost_at(
        &self,
        jobs: &JobSequence,
        restartable: bool,
        t: SimTime,
    ) -> (f64, u32) {
        cost::potential_cost_at(jobs, self.last_mitigation, restartable, t)
    }

    /// Account one fatal event at time `t` and return its cost: the Equation 3
    /// accrual since this lane's last mitigation (or job start), after which the
    /// mitigation reference is cleared (the node leaves production).
    pub fn account_fatal(
        &mut self,
        jobs: &JobSequence,
        restartable: bool,
        retention: RecordRetention,
        t: SimTime,
    ) -> f64 {
        let (ue_cost, _) = self.potential_cost_at(jobs, restartable, t);
        self.ue_count += 1;
        self.total_ue_cost += ue_cost;
        if retention == RecordRetention::Full {
            self.ue_records.push(UeRecord {
                time: t,
                cost: ue_cost,
            });
        }
        self.last_mitigation = None;
        ue_cost
    }

    /// Apply one resolved decision at time `t`: record it and, if it mitigates, pay
    /// `mitigation_cost_node_hours` and reset the Equation 3 reference point. Returns
    /// the node-hours paid (0 for "do nothing").
    pub fn apply_decision(
        &mut self,
        t: SimTime,
        mitigate: bool,
        mitigation_cost_node_hours: f64,
        retention: RecordRetention,
    ) -> f64 {
        self.decision_count += 1;
        if retention == RecordRetention::Full {
            self.decisions.push((t, mitigate));
        }
        if mitigate {
            self.mitigation_count += 1;
            self.total_mitigation_cost += mitigation_cost_node_hours;
            self.last_mitigation = Some(t);
            mitigation_cost_node_hours
        } else {
            0.0
        }
    }

    /// Decisions applied so far (mitigations plus "do nothing"s).
    pub fn decision_count(&self) -> u64 {
        self.decision_count
    }

    /// Number of mitigation actions taken.
    pub fn mitigation_count(&self) -> u64 {
        self.mitigation_count
    }

    /// Number of "do nothing" decisions taken.
    pub fn non_mitigation_count(&self) -> u64 {
        self.decision_count - self.mitigation_count
    }

    /// Node-hours spent on mitigation actions.
    pub fn total_mitigation_cost(&self) -> f64 {
        self.total_mitigation_cost
    }

    /// Number of fatal events accounted.
    pub fn ue_count(&self) -> u64 {
        self.ue_count
    }

    /// Node-hours lost to fatal events.
    pub fn total_ue_cost(&self) -> f64 {
        self.total_ue_cost
    }

    /// Every decision so far, in event order (empty under totals-only retention).
    pub fn decisions(&self) -> &[(SimTime, bool)] {
        &self.decisions
    }

    /// Every fatal event accounted so far, in event order (empty under totals-only
    /// retention).
    pub fn ue_records(&self) -> &[UeRecord] {
        &self.ue_records
    }

    /// Approximate heap footprint of the logs in bytes.
    pub fn approx_log_bytes(&self) -> usize {
        self.decisions.capacity() * std::mem::size_of::<(SimTime, bool)>()
            + self.ue_records.capacity() * std::mem::size_of::<UeRecord>()
    }
}

/// The accounting state of one node session, shared verbatim between the pull-mode
/// environment and the push-mode serving session: a [`CostAccount`] bound to the
/// node's owned job sequence, configuration and retention mode.
#[derive(Debug, Clone)]
pub struct SessionCore {
    jobs: JobSequence,
    config: MitigationConfig,
    retention: RecordRetention,
    account: CostAccount,
}

impl SessionCore {
    /// A fresh session over a node's assigned job sequence.
    pub fn new(jobs: JobSequence, config: MitigationConfig, retention: RecordRetention) -> Self {
        Self {
            jobs,
            config,
            retention,
            account: CostAccount::new(),
        }
    }

    /// The mitigation configuration.
    pub fn config(&self) -> &MitigationConfig {
        &self.config
    }

    /// The retention mode.
    pub fn retention(&self) -> RecordRetention {
        self.retention
    }

    /// The node's assigned job sequence.
    pub fn jobs(&self) -> &JobSequence {
        &self.jobs
    }

    /// Decisions applied so far (mitigations plus "do nothing"s).
    pub fn decision_count(&self) -> u64 {
        self.account.decision_count()
    }

    /// Number of mitigation actions taken.
    pub fn mitigation_count(&self) -> u64 {
        self.account.mitigation_count()
    }

    /// Number of "do nothing" decisions taken. Counted explicitly so totals-only
    /// sessions report it without a decision log.
    pub fn non_mitigation_count(&self) -> u64 {
        self.account.non_mitigation_count()
    }

    /// Node-hours spent on mitigation actions.
    pub fn total_mitigation_cost(&self) -> f64 {
        self.account.total_mitigation_cost()
    }

    /// Number of fatal events accounted.
    pub fn ue_count(&self) -> u64 {
        self.account.ue_count()
    }

    /// Node-hours lost to fatal events.
    pub fn total_ue_cost(&self) -> f64 {
        self.account.total_ue_cost()
    }

    /// Total cost: UE cost plus mitigation cost.
    pub fn total_cost(&self) -> f64 {
        self.account.total_ue_cost() + self.account.total_mitigation_cost()
    }

    /// Every decision so far: `(event time, mitigated)`, in event order (empty under
    /// [`RecordRetention::TotalsOnly`]).
    pub fn decisions(&self) -> &[(SimTime, bool)] {
        self.account.decisions()
    }

    /// Every fatal event accounted so far, in event order (empty under
    /// [`RecordRetention::TotalsOnly`]).
    pub fn ue_records(&self) -> &[UeRecord] {
        self.account.ue_records()
    }

    /// Potential UE cost (Equation 3) and the running job's node count at instant
    /// `t`, measured from the job start or — when mitigations are restartable — the
    /// last mitigation. The single shared home of the cost reference-point rule.
    pub fn potential_cost_at(&self, t: SimTime) -> (f64, u32) {
        self.account
            .potential_cost_at(&self.jobs, self.config.restartable, t)
    }

    /// Account one fatal event at time `t` and return its cost.
    ///
    /// The cost is the Equation 3 accrual since the last mitigation (or job start) —
    /// accounted first — and the mitigation reference is then cleared, because the
    /// node leaves production and returns with fresh jobs.
    pub fn account_fatal(&mut self, t: SimTime) -> f64 {
        self.account
            .account_fatal(&self.jobs, self.config.restartable, self.retention, t)
    }

    /// Apply one resolved decision at time `t`: record it and, if it mitigates, pay
    /// the mitigation cost and reset the Equation 3 reference point. Returns the
    /// node-hours paid (0 for "do nothing").
    pub fn apply_decision(&mut self, t: SimTime, mitigate: bool) -> f64 {
        self.account.apply_decision(
            t,
            mitigate,
            self.config.mitigation_cost_node_hours(),
            self.retention,
        )
    }

    /// Approximate heap footprint of the accounting state in bytes (the logs; the
    /// job sequence is excluded — it is sampled up front and never grows).
    pub fn approx_log_bytes(&self) -> usize {
        self.account.approx_log_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uerl_jobs::schedule::ScheduledJob;

    fn jobs() -> JobSequence {
        JobSequence::from_jobs(vec![ScheduledJob {
            job_id: 1,
            start: SimTime::ZERO,
            end: SimTime::from_hours(100),
            nodes: 16,
        }])
    }

    fn core(retention: RecordRetention) -> SessionCore {
        SessionCore::new(jobs(), MitigationConfig::paper_default(), retention)
    }

    #[test]
    fn totals_only_matches_full_on_every_counter_and_cost_bit() {
        let mut full = core(RecordRetention::Full);
        let mut totals = core(RecordRetention::TotalsOnly);
        let script: [(i64, bool); 4] = [(60, false), (120, true), (180, false), (240, true)];
        for (minute, mitigate) in script {
            let t = SimTime::from_minutes(minute);
            assert_eq!(
                full.potential_cost_at(t),
                totals.potential_cost_at(t),
                "the cost reference must not depend on retention"
            );
            let a = full.apply_decision(t, mitigate);
            let b = totals.apply_decision(t, mitigate);
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let a = full.account_fatal(SimTime::from_minutes(600));
        let b = totals.account_fatal(SimTime::from_minutes(600));
        assert_eq!(a.to_bits(), b.to_bits());

        assert_eq!(full.decision_count(), totals.decision_count());
        assert_eq!(full.mitigation_count(), totals.mitigation_count());
        assert_eq!(full.non_mitigation_count(), totals.non_mitigation_count());
        assert_eq!(full.ue_count(), totals.ue_count());
        assert_eq!(
            full.total_mitigation_cost().to_bits(),
            totals.total_mitigation_cost().to_bits()
        );
        assert_eq!(
            full.total_ue_cost().to_bits(),
            totals.total_ue_cost().to_bits()
        );
        assert_eq!(full.decisions().len(), 4);
        assert_eq!(full.ue_records().len(), 1);
        assert!(totals.decisions().is_empty(), "totals-only keeps no logs");
        assert!(totals.ue_records().is_empty());
        assert_eq!(totals.approx_log_bytes(), 0);
    }

    #[test]
    fn fatal_accounting_is_accounted_then_cleared() {
        let mut core = core(RecordRetention::Full);
        core.apply_decision(SimTime::from_minutes(60), true);
        // The fatal at t=10h is measured from the t=1h mitigation: 9 h × 16 nodes.
        let cost = core.account_fatal(SimTime::from_hours(10));
        assert!((cost - 144.0).abs() < 1e-9);
        // The reference was cleared, so a later fatal measures from the job start.
        let cost = core.account_fatal(SimTime::from_hours(20));
        assert!((cost - 320.0).abs() < 1e-9);
        assert_eq!(core.ue_count(), 2);
    }

    #[test]
    fn retention_parses_like_the_other_knobs() {
        assert_eq!(RecordRetention::parse("full"), RecordRetention::Full);
        assert_eq!(
            RecordRetention::parse("totals"),
            RecordRetention::TotalsOnly
        );
        assert_eq!(RecordRetention::parse(""), RecordRetention::TotalsOnly);
        assert!(std::panic::catch_unwind(|| RecordRetention::parse("nope")).is_err());
    }
}
