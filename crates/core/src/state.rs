//! The MDP state: the Table 1 features plus the bookkeeping metadata the evaluation
//! harness needs (node, timestamp, job size).

use serde::{Deserialize, Serialize};
use uerl_trace::types::{NodeId, SimTime};

/// Number of numeric features fed to the Q-network.
pub const STATE_DIM: usize = 15;

/// Names of the numeric features, in the order produced by [`StateFeatures::to_vector`].
pub const FEATURE_NAMES: [&str; STATE_DIM] = [
    "ce_since_last_event",
    "ce_since_start",
    "ce_since_start_var_1min",
    "ce_since_start_var_1hour",
    "ranks_with_ce",
    "banks_with_ce",
    "rows_with_ce",
    "columns_with_ce",
    "dimms_with_ce",
    "ue_warnings_since_start",
    "hours_since_last_boot",
    "node_boots",
    "node_boots_var_1min",
    "node_boots_var_1hour",
    "potential_ue_cost_node_hours",
];

/// The state observed by the mitigation policy at one event (Table 1 of the paper).
///
/// The corrected-error, uncorrected-error and system-state features are derived from the
/// error log of the node; the potential UE cost comes from the workload (Equation 3). The
/// `node`, `time` and `job_nodes` fields are metadata used by the environment, the Oracle
/// policy and the evaluation metrics; they are *not* part of the numeric feature vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateFeatures {
    /// Node this state belongs to.
    pub node: NodeId,
    /// Timestamp of the event that produced this state.
    pub time: SimTime,
    /// Number of nodes of the currently running job (used by the reward bookkeeping).
    pub job_nodes: u32,

    /// Corrected errors reported by the current (per-minute merged) event.
    pub ce_since_last_event: u64,
    /// Corrected errors since the beginning of operation.
    pub ce_since_start: u64,
    /// Equation 2 variation of `ce_since_start` over 1 minute.
    pub ce_var_1min: f64,
    /// Equation 2 variation of `ce_since_start` over 1 hour.
    pub ce_var_1hour: f64,
    /// Number of distinct DIMM ranks with at least one detailed CE.
    pub ranks_with_ce: u32,
    /// Number of distinct banks with at least one detailed CE.
    pub banks_with_ce: u32,
    /// Number of distinct rows with at least one detailed CE.
    pub rows_with_ce: u32,
    /// Number of distinct columns with at least one detailed CE.
    pub columns_with_ce: u32,
    /// Number of distinct DIMMs with at least one detailed CE.
    pub dimms_with_ce: u32,
    /// Firmware UE warnings since the beginning of operation.
    pub ue_warnings: u64,
    /// Hours since the last node boot.
    pub hours_since_boot: f64,
    /// Number of node boots since the beginning of operation.
    pub node_boots: u64,
    /// Equation 2 variation of `node_boots` over 1 minute.
    pub boots_var_1min: f64,
    /// Equation 2 variation of `node_boots` over 1 hour.
    pub boots_var_1hour: f64,
    /// Potential UE cost (Equation 3) in node-hours.
    pub potential_ue_cost: f64,
}

impl StateFeatures {
    /// The numeric feature vector fed to the Q-network (and the random-forest baseline).
    ///
    /// Counts and the potential cost are compressed with `ln(1 + x)`: the raw values span
    /// five or more orders of magnitude (single CEs to multi-million-CE storms, node-hour
    /// costs from minutes to tens of thousands), and a bounded, smooth input scale is
    /// what lets one network generalise across them — the paper's Figure 6 shows the
    /// agent extrapolating to UE costs one to two orders of magnitude beyond training.
    pub fn to_vector(&self) -> Vec<f64> {
        let mut out = vec![0.0; STATE_DIM];
        self.write_vector(&mut out);
        out
    }

    /// Write the numeric feature vector into a caller-provided slice (e.g. one row of a
    /// preallocated inference batch) — the allocation-free form of
    /// [`StateFeatures::to_vector`], producing identical values.
    ///
    /// # Panics
    /// Panics if the slice length is not [`STATE_DIM`].
    pub fn write_vector(&self, out: &mut [f64]) {
        assert_eq!(out.len(), STATE_DIM, "feature slice length mismatch");
        out[0] = (self.ce_since_last_event as f64).ln_1p();
        out[1] = (self.ce_since_start as f64).ln_1p();
        out[2] = self.ce_var_1min.max(0.0).ln_1p();
        out[3] = self.ce_var_1hour.max(0.0).ln_1p();
        out[4] = f64::from(self.ranks_with_ce).ln_1p();
        out[5] = f64::from(self.banks_with_ce).ln_1p();
        out[6] = f64::from(self.rows_with_ce).ln_1p();
        out[7] = f64::from(self.columns_with_ce).ln_1p();
        out[8] = f64::from(self.dimms_with_ce).ln_1p();
        out[9] = (self.ue_warnings as f64).ln_1p();
        out[10] = self.hours_since_boot.max(0.0).ln_1p();
        out[11] = (self.node_boots as f64).ln_1p();
        out[12] = self.boots_var_1min.max(0.0).ln_1p();
        out[13] = self.boots_var_1hour.max(0.0).ln_1p();
        out[14] = self.potential_ue_cost.max(0.0).ln_1p();
    }

    /// The feature vector *without* the potential UE cost, which is what the SC20-RF
    /// baseline sees (it is a pure error predictor, blind to the workload).
    pub fn to_error_vector(&self) -> Vec<f64> {
        let mut v = self.to_vector();
        v.truncate(STATE_DIM - 1);
        v
    }

    /// An all-zero state for a node (used as the neutral starting point of an episode).
    pub fn empty(node: NodeId, time: SimTime) -> Self {
        Self {
            node,
            time,
            job_nodes: 1,
            ce_since_last_event: 0,
            ce_since_start: 0,
            ce_var_1min: 0.0,
            ce_var_1hour: 0.0,
            ranks_with_ce: 0,
            banks_with_ce: 0,
            rows_with_ce: 0,
            columns_with_ce: 0,
            dimms_with_ce: 0,
            ue_warnings: 0,
            hours_since_boot: 0.0,
            node_boots: 0,
            boots_var_1min: 0.0,
            boots_var_1hour: 0.0,
            potential_ue_cost: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_has_declared_dimension_and_names() {
        let s = StateFeatures::empty(NodeId(3), SimTime::from_hours(1));
        assert_eq!(s.to_vector().len(), STATE_DIM);
        assert_eq!(FEATURE_NAMES.len(), STATE_DIM);
        assert_eq!(s.to_error_vector().len(), STATE_DIM - 1);
    }

    #[test]
    fn empty_state_is_all_zeros() {
        let s = StateFeatures::empty(NodeId(0), SimTime::ZERO);
        assert!(s.to_vector().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn log_compression_is_monotonic_and_bounded() {
        let mut small = StateFeatures::empty(NodeId(0), SimTime::ZERO);
        small.ce_since_start = 10;
        small.potential_ue_cost = 1.0;
        let mut large = small.clone();
        large.ce_since_start = 1_000_000;
        large.potential_ue_cost = 32_000.0;
        let sv = small.to_vector();
        let lv = large.to_vector();
        assert!(lv[1] > sv[1]);
        assert!(lv[14] > sv[14]);
        // Even a million CEs stays within a numerically comfortable range.
        assert!(lv[1] < 20.0);
        assert!(lv[14] < 20.0);
    }

    #[test]
    fn error_vector_drops_only_the_cost() {
        let mut s = StateFeatures::empty(NodeId(1), SimTime::ZERO);
        s.ce_since_start = 5;
        s.potential_ue_cost = 100.0;
        let full = s.to_vector();
        let err = s.to_error_vector();
        assert_eq!(&full[..STATE_DIM - 1], &err[..]);
    }

    #[test]
    fn metadata_does_not_enter_the_vector() {
        let a = StateFeatures::empty(NodeId(1), SimTime::from_hours(5));
        let b = StateFeatures::empty(NodeId(99), SimTime::from_hours(50));
        assert_eq!(a.to_vector(), b.to_vector());
    }
}
