//! The RL training loop (Section 3.3.3).
//!
//! Training is divided into episodes: each episode picks one node at random from the
//! training timelines, assigns it a random job sequence sampled from the job log
//! (weighted by node count), and replays the node's events. The agent acts ε-greedily at
//! every event, receives the Equation 4 reward at the next event, and the transition is
//! pushed to (prioritized) replay memory, from which the dueling double DQN trains.

use crate::config::MitigationConfig;
use crate::env::MitigationEnv;
use crate::event_stream::TimelineSet;
use crate::policies::RlPolicy;
use crate::session_core::RecordRetention;
use crate::state::STATE_DIM;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use uerl_jobs::schedule::NodeJobSampler;
use uerl_obs::{registry, Counter, Histogram, MetricClass};
use uerl_rl::{AgentConfig, DqnAgent, Transition};

/// Training-chunk instruments. Steps and episodes are event-time (deterministic for a
/// seeded session); the chunk duration is wall-clock and excluded from fingerprints.
struct TrainerMetrics {
    steps: Arc<Counter>,
    episodes: Arc<Counter>,
    chunk_duration_nanos: Arc<Histogram>,
}

fn trainer_metrics() -> &'static TrainerMetrics {
    static METRICS: OnceLock<TrainerMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = registry();
        TrainerMetrics {
            steps: r.counter(
                "uerl_train_steps_total",
                "Environment steps trained across all sessions",
                &[],
                MetricClass::EventTime,
            ),
            episodes: r.counter(
                "uerl_train_episodes_total",
                "Training episodes completed across all sessions",
                &[],
                MetricClass::EventTime,
            ),
            chunk_duration_nanos: r.histogram(
                "uerl_train_chunk_duration_nanos",
                "Wall-clock duration of each train_until_steps chunk",
                &[],
                MetricClass::WallClock,
            ),
        }
    })
}

/// Configuration of the training loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Number of training episodes (the paper uses 20,000 per agent).
    pub episodes: usize,
    /// Agent configuration (architecture, learning hyperparameters).
    pub agent: AgentConfig,
    /// Mitigation cost / restartability.
    pub mitigation: MitigationConfig,
    /// Seed for episode sampling (node choice and job sequences).
    pub seed: u64,
}

impl TrainerConfig {
    /// The paper's budget: 20,000 episodes with the full DDDQN + PER agent.
    pub fn paper() -> Self {
        Self {
            episodes: 20_000,
            agent: AgentConfig::paper(STATE_DIM),
            mitigation: MitigationConfig::paper_default(),
            seed: 0,
        }
    }

    /// A reduced budget for tests, examples and laptop-scale experiment runs.
    pub fn reduced(episodes: usize) -> Self {
        Self {
            episodes,
            agent: AgentConfig::small(STATE_DIM),
            mitigation: MitigationConfig::paper_default(),
            seed: 0,
        }
    }

    /// A copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.agent = self.agent.clone().with_seed(seed.wrapping_add(1));
        self
    }
}

/// Modelled training cost per environment step, in node-seconds. Calibrated to the
/// single-core wall-clock of one DQN decision + replay update on the paper's Q-network
/// size, it keeps the charged training cost in the paper's "below twenty node-hours per
/// year of data" regime while making the cost a **pure function of the seeded run** —
/// wall-clock charging would leak scheduler noise into the experiment output and break
/// bit-identical results across runs and thread counts.
pub const TRAIN_COST_SECONDS_PER_STEP: f64 = 5e-3;

/// The deterministic step-count cost model: node-hours charged for training `steps`
/// environment steps. The successive-halving search charges each rung increment through
/// this, so only steps actually trained are ever billed.
pub fn step_cost_node_hours(steps: u64) -> f64 {
    steps as f64 * TRAIN_COST_SECONDS_PER_STEP / 3600.0
}

/// What a training run produced.
#[derive(Debug, Clone)]
pub struct TrainingOutcome {
    /// The trained agent.
    pub agent: DqnAgent,
    /// Episodes actually run.
    pub episodes: usize,
    /// Total environment steps (decisions) observed.
    pub total_steps: u64,
    /// Mean undiscounted episode return (negative node-hours).
    pub mean_episode_return: f64,
    /// Wall-clock training time in seconds (diagnostic only — the charged cost is the
    /// deterministic step-based model below).
    pub wall_time_secs: f64,
}

impl TrainingOutcome {
    /// Training cost in node-hours, assuming training runs on a single node (as in the
    /// paper, where the total is below twenty node-hours per year of data). Modelled
    /// from the step count so identical seeded runs charge identical costs.
    pub fn training_cost_node_hours(&self) -> f64 {
        step_cost_node_hours(self.total_steps)
    }

    /// Wrap the trained agent as an evaluation policy, carrying the training cost into
    /// the cost-benefit accounting.
    pub fn into_policy(self) -> RlPolicy {
        let cost = self.training_cost_node_hours();
        RlPolicy::new(self.agent).with_training_cost(cost)
    }
}

/// The episode-based RL trainer.
#[derive(Debug, Clone)]
pub struct RlTrainer {
    config: TrainerConfig,
}

impl RlTrainer {
    /// Create a trainer.
    ///
    /// # Panics
    /// Panics if the agent's state dimension does not match [`STATE_DIM`].
    pub fn new(config: TrainerConfig) -> Self {
        assert_eq!(
            config.agent.state_dim, STATE_DIM,
            "agent state dimension must match the Table 1 feature vector"
        );
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Start a resumable training session (agent freshly built, nothing trained yet).
    pub fn session(&self) -> TrainingSession {
        TrainingSession {
            agent: DqnAgent::new(self.config.agent.clone()),
            rng: StdRng::seed_from_u64(self.config.seed),
            config: self.config.clone(),
            episodes_run: 0,
            total_steps: 0,
            total_return: 0.0,
            wall_secs: 0.0,
        }
    }

    /// Train an agent on the given timelines and job sampler, to the full episode
    /// budget. Equivalent to (and implemented as) a session trained in one chunk.
    pub fn train(&self, timelines: &TimelineSet, jobs: &NodeJobSampler) -> TrainingOutcome {
        let mut session = self.session();
        session.train_until_steps(timelines, jobs, u64::MAX);
        session.into_outcome()
    }
}

/// A resumable, checkpointable RL training run.
///
/// The session owns everything the episode loop mutates — the agent (networks,
/// optimizer, replay memory, exploration RNG, env-step/update counters) and the episode
/// RNG (node choice, job sequences) — so training can stop at any episode boundary and
/// continue later **bit-equal** to a run that never paused. The successive-halving
/// hyperparameter search trains each surviving candidate rung by rung through one
/// session; [`RlTrainer::train`] is a session trained in a single chunk, so the two
/// paths cannot drift apart.
#[derive(Debug, Clone)]
pub struct TrainingSession {
    config: TrainerConfig,
    agent: DqnAgent,
    rng: StdRng,
    episodes_run: usize,
    total_steps: u64,
    total_return: f64,
    wall_secs: f64,
}

impl TrainingSession {
    /// The agent in its current training state (for scoring mid-training candidates).
    pub fn agent(&self) -> &DqnAgent {
        &self.agent
    }

    /// Environment steps trained so far.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// Episodes run so far.
    pub fn episodes_run(&self) -> usize {
        self.episodes_run
    }

    /// Whether the configured episode budget is exhausted (no further training).
    pub fn exhausted(&self) -> bool {
        self.episodes_run >= self.config.episodes
    }

    /// Train whole episodes until the cumulative step counter reaches `target_steps`
    /// (`u64::MAX` = the full episode budget) or the episode budget runs out, and
    /// return the number of steps trained by this call. Stopping happens at episode
    /// boundaries only, which is what keeps chunked training bit-equal to
    /// straight-through training: the loop state between episodes is exactly the
    /// session's fields, nothing more.
    pub fn train_until_steps(
        &mut self,
        timelines: &TimelineSet,
        jobs: &NodeJobSampler,
        target_steps: u64,
    ) -> u64 {
        let start = Instant::now();
        let before = self.total_steps;
        let episodes_before = self.episodes_run;
        let _chunk_span = trainer_metrics().chunk_duration_nanos.span();
        while self.episodes_run < self.config.episodes && self.total_steps < target_steps {
            let Some(timeline) = timelines.random_timeline(&mut self.rng) else {
                break;
            };
            let sequence = jobs.sample_sequence(
                timeline.window_start(),
                timeline.window_end(),
                &mut self.rng,
            );
            // Training never reads the decision / UE logs, so episodes run with
            // totals-only retention: rewards and counters are identical, and episode
            // memory stays O(window) however long the node's timeline is.
            let mut env = MitigationEnv::with_retention(
                timeline.clone(),
                sequence,
                self.config.mitigation,
                true,
                RecordRetention::TotalsOnly,
            );
            self.episodes_run += 1;
            let Some(first) = env.reset() else {
                continue;
            };
            let mut state_vec = first.to_vector();
            let mut episode_return = 0.0;
            loop {
                let action = self.agent.act(&state_vec);
                let outcome = env.step(action == 1);
                episode_return += outcome.reward;
                self.total_steps += 1;
                match outcome.next_state {
                    Some(next) => {
                        let next_vec = next.to_vector();
                        self.agent.observe(Transition::new(
                            state_vec,
                            action,
                            outcome.reward,
                            next_vec.clone(),
                        ));
                        state_vec = next_vec;
                    }
                    None => {
                        self.agent
                            .observe(Transition::terminal(state_vec, action, outcome.reward));
                        break;
                    }
                }
            }
            self.total_return += episode_return;
        }
        self.wall_secs += start.elapsed().as_secs_f64();
        let m = trainer_metrics();
        m.steps.add(self.total_steps - before);
        m.episodes.add((self.episodes_run - episodes_before) as u64);
        self.total_steps - before
    }

    /// Finish the session, producing the same [`TrainingOutcome`] a straight
    /// [`RlTrainer::train`] call would have returned.
    pub fn into_outcome(self) -> TrainingOutcome {
        TrainingOutcome {
            agent: self.agent,
            episodes: self.episodes_run,
            total_steps: self.total_steps,
            mean_episode_return: if self.episodes_run > 0 {
                self.total_return / self.episodes_run as f64
            } else {
                0.0
            },
            wall_time_secs: self.wall_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uerl_jobs::{JobLogConfig, JobTraceGenerator};
    use uerl_trace::generator::{SyntheticLogConfig, TraceGenerator};
    use uerl_trace::reduction::preprocess;

    fn training_inputs(seed: u64) -> (TimelineSet, NodeJobSampler) {
        let log = TraceGenerator::new(SyntheticLogConfig::small(30, 60, seed)).generate();
        let timelines = TimelineSet::from_log(&preprocess(&log));
        let jobs = JobTraceGenerator::new(JobLogConfig::small(64, 30, seed)).generate();
        (timelines, NodeJobSampler::from_log(&jobs))
    }

    #[test]
    fn training_runs_and_produces_a_usable_policy() {
        let (timelines, sampler) = training_inputs(3);
        let trainer = RlTrainer::new(TrainerConfig::reduced(40).with_seed(5));
        let outcome = trainer.train(&timelines, &sampler);
        assert_eq!(outcome.episodes, 40);
        assert!(outcome.total_steps > 0);
        assert!(
            outcome.mean_episode_return <= 0.0,
            "returns are negative costs"
        );
        assert!(outcome.wall_time_secs > 0.0);
        assert!(outcome.training_cost_node_hours() < 1.0);
        let policy = outcome.into_policy();
        use crate::policy::MitigationPolicy;
        let s = crate::state::StateFeatures::empty(
            uerl_trace::types::NodeId(0),
            uerl_trace::types::SimTime::ZERO,
        );
        let _ = policy.decide(&s);
        assert!(policy.training_cost_node_hours() > 0.0);
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let (timelines, sampler) = training_inputs(7);
        let a = RlTrainer::new(TrainerConfig::reduced(15).with_seed(9)).train(&timelines, &sampler);
        let b = RlTrainer::new(TrainerConfig::reduced(15).with_seed(9)).train(&timelines, &sampler);
        assert_eq!(a.total_steps, b.total_steps);
        assert!((a.mean_episode_return - b.mean_episode_return).abs() < 1e-9);
        let probe = vec![0.1; STATE_DIM];
        assert_eq!(a.agent.q_values(&probe), b.agent.q_values(&probe));
    }

    #[test]
    fn chunked_session_training_is_bit_equal_to_straight_through() {
        // A session paused at step/rung boundaries and resumed must reproduce the
        // uninterrupted run exactly: same episode draws, same steps, same network bits.
        // This is the property the successive-halving search's resumed rungs rely on.
        let (timelines, sampler) = training_inputs(11);
        let trainer = RlTrainer::new(TrainerConfig::reduced(30).with_seed(13));
        let straight = trainer.train(&timelines, &sampler);

        let mut session = trainer.session();
        let mut chunk_steps = Vec::new();
        // Rung-style doubling targets followed by "train to completion".
        for target in [25u64, 50, 100, 200, u64::MAX] {
            chunk_steps.push(session.train_until_steps(&timelines, &sampler, target));
            assert!(
                session.exhausted() || session.total_steps() >= target,
                "a non-exhausted session must reach the step target"
            );
        }
        assert!(session.exhausted());
        let chunked = session.into_outcome();

        assert_eq!(chunked.total_steps, straight.total_steps);
        assert_eq!(chunked.episodes, straight.episodes);
        assert_eq!(
            chunk_steps.iter().sum::<u64>(),
            straight.total_steps,
            "per-chunk increments must add up to the straight-through step count"
        );
        assert_eq!(
            chunked.mean_episode_return.to_bits(),
            straight.mean_episode_return.to_bits()
        );
        let probe = vec![0.1; STATE_DIM];
        for (a, b) in chunked
            .agent
            .q_values(&probe)
            .iter()
            .zip(straight.agent.q_values(&probe))
        {
            assert_eq!(a.to_bits(), b.to_bits(), "chunked training diverged");
        }
        assert_eq!(chunked.agent.updates(), straight.agent.updates());
    }

    #[test]
    fn session_stops_at_the_first_episode_boundary_past_the_target() {
        let (timelines, sampler) = training_inputs(12);
        let trainer = RlTrainer::new(TrainerConfig::reduced(50).with_seed(14));
        let mut session = trainer.session();
        let added = session.train_until_steps(&timelines, &sampler, 10);
        assert!(added >= 10, "must train at least to the target");
        assert!(session.episodes_run() > 0);
        assert!(!session.exhausted());
        // A target at or below the trained amount is a no-op.
        let again = session.train_until_steps(&timelines, &sampler, session.total_steps());
        assert_eq!(again, 0);
        // The step-cost model charges exactly the steps trained.
        assert_eq!(
            step_cost_node_hours(session.total_steps()).to_bits(),
            (session.total_steps() as f64 * TRAIN_COST_SECONDS_PER_STEP / 3600.0).to_bits()
        );
    }

    #[test]
    fn different_seeds_explore_differently() {
        let (timelines, sampler) = training_inputs(7);
        let a = RlTrainer::new(TrainerConfig::reduced(15).with_seed(1)).train(&timelines, &sampler);
        let b = RlTrainer::new(TrainerConfig::reduced(15).with_seed(2)).train(&timelines, &sampler);
        let probe = vec![0.1; STATE_DIM];
        assert_ne!(a.agent.q_values(&probe), b.agent.q_values(&probe));
    }

    #[test]
    fn paper_budget_is_twenty_thousand_episodes() {
        let cfg = TrainerConfig::paper();
        assert_eq!(cfg.episodes, 20_000);
        assert_eq!(cfg.agent.hidden, vec![256, 256, 128, 64]);
    }

    #[test]
    #[should_panic(expected = "state dimension")]
    fn wrong_state_dimension_rejected() {
        let mut cfg = TrainerConfig::reduced(1);
        cfg.agent.state_dim = 3;
        RlTrainer::new(cfg);
    }
}
