//! Property tests pinning the ring-buffer feature history **bit-identical** to an
//! unbounded reference extractor.
//!
//! The production [`FeatureExtractor`] bounds its Equation 2 variation history to the
//! 1-hour lookback window (plus one sentinel at or before the window edge); the
//! reference below keeps the full lifetime history in a plain `Vec` and answers every
//! variation query with the original unbounded reverse scan. For random event streams
//! — ragged timestamp gaps including equal-time events, CE bursts, boots, firmware
//! warnings — every snapshot taken after every event must agree field for field, with
//! the floating-point variation features compared at the bit level. Any future change
//! to the eviction rule that shifts a single lookup result fails here.

use proptest::prelude::*;
use uerl_core::features::{FeatureExtractor, HISTORY_WINDOW_SECS};
use uerl_core::state::StateFeatures;
use uerl_trace::events::{CeDetail, Detector};
use uerl_trace::log::MergedEvent;
use uerl_trace::types::{CellLocation, DimmId, NodeId, SimTime};

const NODE: NodeId = NodeId(7);

/// The original unbounded extractor semantics: every `(time, ce_total, boots)`
/// snapshot is retained forever, and Equation 2 scans the whole history backwards.
/// Only the variation machinery is duplicated — the counter features are taken from
/// the production extractor's own snapshot, which the test compares against this
/// reference's variations.
struct UnboundedHistory {
    history: Vec<(SimTime, u64, u64)>,
    ce_total: u64,
    boots: u64,
}

impl UnboundedHistory {
    fn new() -> Self {
        Self {
            history: Vec::new(),
            ce_total: 0,
            boots: 0,
        }
    }

    fn update(&mut self, event: &MergedEvent) {
        self.ce_total += u64::from(event.ce_count);
        self.boots += u64::from(event.boots);
        self.history.push((event.time, self.ce_total, self.boots));
    }

    fn variation(&self, delta_secs: i64, select: impl Fn(&(SimTime, u64, u64)) -> u64) -> f64 {
        let now = self.history.last().expect("updated at least once").0;
        let cutoff = now.plus_secs(-delta_secs);
        let past = self
            .history
            .iter()
            .rev()
            .find(|(t, _, _)| *t <= cutoff)
            .map(&select)
            .unwrap_or(0);
        if past == 0 {
            return 0.0;
        }
        let current = self.history.last().map(&select).unwrap_or(0);
        current as f64 / past as f64
    }

    /// Events whose time is within the lookback window behind `now` (the bound the
    /// ring buffer must respect, up to one extra sentinel entry).
    fn events_in_window(&self) -> usize {
        let now = self.history.last().expect("updated at least once").0;
        let cutoff = now.plus_secs(-HISTORY_WINDOW_SECS);
        self.history.iter().filter(|(t, _, _)| *t > cutoff).count()
    }
}

/// One generated event: a timestamp gap (0 keeps equal-time events in play) and the
/// minute's observation counts. CE locations cycle over a small pool so the distinct
/// location sets see collisions.
#[derive(Debug, Clone)]
struct GenEvent {
    gap_secs: i64,
    ce_count: u32,
    details: usize,
    boots: u32,
    ue_warnings: u32,
}

fn gen_event() -> impl Strategy<Value = GenEvent> {
    // The vendored proptest has no `prop_oneof!`; a selector drawn alongside the raw
    // gap mixes the regimes — dense in-window traffic (4/8), gaps straddling the
    // 1-hour edge (2/8), equal-time events (1/8) and window-flushing jumps (1/8).
    (
        (0u8..8, 0i64..180, 180i64..4200, 4200i64..20_000),
        0u32..25,
        0usize..4,
        0u32..2,
        0u32..3,
    )
        .prop_map(
            |((kind, dense, straddle, flush), ce_count, details, boots, ue_warnings)| GenEvent {
                gap_secs: match kind {
                    0..=3 => dense,
                    4..=5 => straddle,
                    6 => 0,
                    _ => flush,
                },
                ce_count,
                details,
                boots,
                ue_warnings,
            },
        )
}

fn materialize(stream: &[GenEvent]) -> Vec<MergedEvent> {
    let mut t = 0i64;
    let mut k = 0u32;
    stream
        .iter()
        .map(|g| {
            t += g.gap_secs;
            k = k.wrapping_add(1);
            let details = (0..g.details)
                .map(|i| {
                    let cell = (k as usize + i) % 16;
                    CeDetail {
                        dimm: DimmId::new(NODE, (cell % 4) as u8),
                        location: CellLocation::new(
                            (cell % 2) as u8,
                            (cell % 4) as u8,
                            (cell / 4) as u32,
                            (cell % 8) as u32,
                        ),
                        detector: Detector::DemandRead,
                    }
                })
                .collect();
            MergedEvent {
                time: SimTime(t),
                node: NODE,
                ce_count: g.ce_count,
                ce_details: details,
                ue_warnings: g.ue_warnings,
                boots: g.boots,
                retired_slots: Vec::new(),
                fatal: false,
                ue_detector: None,
            }
        })
        .collect()
}

fn assert_bit_equal(actual: &StateFeatures, reference: &UnboundedHistory) {
    let pairs = [
        (
            "ce_var_1min",
            actual.ce_var_1min,
            reference.variation(SimTime::MINUTE, |h| h.1),
        ),
        (
            "ce_var_1hour",
            actual.ce_var_1hour,
            reference.variation(SimTime::HOUR, |h| h.1),
        ),
        (
            "boots_var_1min",
            actual.boots_var_1min,
            reference.variation(SimTime::MINUTE, |h| h.2),
        ),
        (
            "boots_var_1hour",
            actual.boots_var_1hour,
            reference.variation(SimTime::HOUR, |h| h.2),
        ),
    ];
    for (name, got, want) in pairs {
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "{name} diverged from the unbounded reference: ring {got} vs full {want}"
        );
    }
    assert_eq!(actual.ce_since_start, reference.ce_total);
    assert_eq!(actual.node_boots, reference.boots);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_buffer_extractor_matches_the_unbounded_reference_bitwise(
        stream in proptest::collection::vec(gen_event(), 1..120),
    ) {
        let events = materialize(&stream);
        let mut ring = FeatureExtractor::new(NODE, SimTime::ZERO);
        let mut full = UnboundedHistory::new();
        for (i, event) in events.iter().enumerate() {
            ring.update(event);
            full.update(event);
            let snapshot = ring.snapshot(0.0, 1);
            assert_bit_equal(&snapshot, &full);
            prop_assert_eq!(ring.events_seen(), i + 1, "eviction must not change events_seen");
            prop_assert!(
                ring.history_len() <= full.events_in_window() + 1,
                "history holds {} entries but only {} events are in-window (+1 sentinel)",
                ring.history_len(),
                full.events_in_window()
            );
        }
    }

    #[test]
    fn equal_time_bursts_keep_the_scan_result_identical(
        burst in proptest::collection::vec((0u32..25, 0u32..2), 2..20),
        later_gap in (HISTORY_WINDOW_SECS - 120)..(HISTORY_WINDOW_SECS + 7200),
    ) {
        // Pathological shape for the sentinel rule: many snapshots share one
        // timestamp, then a later event puts the cutoff at or beyond that timestamp.
        // The unbounded reverse scan picks the *last* equal-time snapshot; the ring
        // buffer must keep exactly it.
        let stream: Vec<GenEvent> = burst
            .iter()
            .map(|&(ce_count, boots)| GenEvent {
                gap_secs: 0,
                ce_count,
                details: 0,
                boots,
                ue_warnings: 0,
            })
            .chain(std::iter::once(GenEvent {
                gap_secs: later_gap,
                ce_count: 3,
                details: 0,
                boots: 0,
                ue_warnings: 0,
            }))
            .collect();
        let events = materialize(&stream);
        let mut ring = FeatureExtractor::new(NODE, SimTime::ZERO);
        let mut full = UnboundedHistory::new();
        for event in &events {
            ring.update(event);
            full.update(event);
            assert_bit_equal(&ring.snapshot(0.0, 1), &full);
        }
        if later_gap >= HISTORY_WINDOW_SECS {
            // The cutoff reached (or passed) the burst timestamp: everything must
            // collapse to one sentinel plus the new event.
            prop_assert!(ring.history_len() <= 2, "the burst must collapse to one sentinel");
        } else {
            // Gap short of the window: the burst is still in-window and must survive.
            prop_assert_eq!(ring.history_len(), events.len());
        }
    }
}
