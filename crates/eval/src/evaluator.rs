//! The full evaluation protocol: per cross-validation split, train the baselines and the
//! RL agent on the data preceding the test part, then evaluate every policy on the test
//! part and accumulate the cost-benefit results.

use crate::metrics::ClassificationMetrics;
use crate::run::{run_policy, PolicyRun};
use crate::scenario::{EvalBudget, ExperimentContext};
use crate::splits::{nested_splits, SplitSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::sync::{Arc, OnceLock};
use uerl_core::event_stream::TimelineSet;
use uerl_core::policies::{
    AlwaysMitigate, MyopicRfPolicy, NeverMitigate, OraclePolicy, RlPolicy, RlPolicyView,
    ThresholdRfPolicy,
};
use uerl_core::policy::MitigationPolicy;
use uerl_core::rf_dataset::build_rf_dataset_1day;
use uerl_core::state::STATE_DIM;
use uerl_core::trainer::{step_cost_node_hours, RlTrainer, TrainerConfig, TrainingSession};
use uerl_core::MitigationConfig;
use uerl_forest::{
    optimal_threshold, perturb_threshold, Dataset, RandomForest, RandomForestConfig,
};
use uerl_jobs::schedule::NodeJobSampler;
use uerl_rl::{
    better_score, AgentConfig, HyperParams, HyperSearch, RungTrace, SearchOutcome, Trainable,
};

/// The canonical policy ordering used in every figure and table.
pub const POLICY_ORDER: [&str; 8] = [
    "Never-mitigate",
    "Always-mitigate",
    "SC20-RF",
    "SC20-RF-2%",
    "SC20-RF-5%",
    "Myopic-RF",
    "RL",
    "Oracle",
];

/// A policy's accumulated run plus its classical ML metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyTotals {
    /// Accumulated cost-benefit run.
    pub run: PolicyRun,
    /// Classification metrics over the accumulated decisions.
    pub metrics: ClassificationMetrics,
}

/// The per-split outcome: one [`PolicyRun`] per policy, in [`POLICY_ORDER`].
#[derive(Debug, Clone, PartialEq)]
pub struct SplitOutcome {
    /// The split that was evaluated.
    pub split: SplitSpec,
    /// One run per policy, in [`POLICY_ORDER`].
    pub runs: Vec<PolicyRun>,
}

/// The complete evaluation result.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationResult {
    /// Scenario label (e.g. "MN/All").
    pub label: String,
    /// Per-split outcomes in split order.
    pub per_split: Vec<SplitOutcome>,
    /// Per-policy runs merged across all splits, in [`POLICY_ORDER`].
    pub totals: Vec<PolicyRun>,
}

impl EvaluationResult {
    /// The accumulated run of a policy.
    pub fn total_for(&self, policy: &str) -> Option<&PolicyRun> {
        self.totals.iter().find(|r| r.policy == policy)
    }

    /// The accumulated run plus metrics of a policy.
    pub fn totals_for(&self, policy: &str) -> Option<PolicyTotals> {
        self.total_for(policy).map(|run| PolicyTotals {
            run: run.clone(),
            metrics: ClassificationMetrics::from_run_1day(run),
        })
    }

    /// Total cost (node-hours) of a policy, or infinity if it was not evaluated.
    pub fn total_cost_of(&self, policy: &str) -> f64 {
        self.total_for(policy)
            .map_or(f64::INFINITY, PolicyRun::total_cost)
    }
}

/// The evaluation driver.
#[derive(Debug, Clone, Copy)]
pub struct Evaluator {
    /// Job-size scaling factor applied to the workload (Figure 7). 1.0 = as logged.
    pub job_scaling: f64,
    /// Run the cross-validation splits on parallel threads.
    pub parallel_splits: bool,
}

impl Default for Evaluator {
    fn default() -> Self {
        Self {
            job_scaling: 1.0,
            parallel_splits: true,
        }
    }
}

impl Evaluator {
    /// An evaluator with the default (unscaled, parallel) settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the job-size scaling factor.
    ///
    /// # Panics
    /// Panics if the factor is not strictly positive and finite.
    pub fn with_job_scaling(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scaling factor must be positive"
        );
        self.job_scaling = factor;
        self
    }

    /// Disable split-level parallelism (useful for debugging and deterministic profiling).
    pub fn sequential(mut self) -> Self {
        self.parallel_splits = false;
        self
    }

    /// Run the full protocol on a context.
    pub fn evaluate(&self, ctx: &ExperimentContext) -> EvaluationResult {
        let sampler = ctx.job_sampler(self.job_scaling);
        let splits = nested_splits(
            ctx.timelines.window_start(),
            ctx.timelines.window_end(),
            ctx.budget.cv_parts,
        );

        let outcomes: Vec<SplitOutcome> = if self.parallel_splits {
            // Each split is independent and every per-split seed derives only from
            // (ctx.seed, split index), so the rayon fan-out preserves split order and is
            // bit-identical to the sequential path.
            splits
                .par_iter()
                .map(|spec| evaluate_split(ctx, &sampler, *spec))
                .collect()
        } else {
            splits
                .iter()
                .map(|spec| evaluate_split(ctx, &sampler, *spec))
                .collect()
        };

        // Merge per-policy totals across splits.
        let mut totals: Vec<PolicyRun> =
            POLICY_ORDER.iter().map(|&p| PolicyRun::empty(p)).collect();
        for outcome in &outcomes {
            for (total, run) in totals.iter_mut().zip(&outcome.runs) {
                total.merge(run);
            }
        }

        EvaluationResult {
            label: ctx.label.clone(),
            per_split: outcomes,
            totals,
        }
    }
}

/// Evaluate every policy on one cross-validation split.
fn evaluate_split(
    ctx: &ExperimentContext,
    sampler: &NodeJobSampler,
    spec: SplitSpec,
) -> SplitOutcome {
    let config = ctx.mitigation;
    let seed = ctx.seed ^ (spec.index as u64).wrapping_mul(0xA5A5_5A5A);
    let train_tl = ctx.timelines.slice(spec.train.0, spec.train.1);
    let validate_tl = ctx.timelines.slice(spec.validate.0, spec.validate.1);
    let test_tl = ctx.timelines.slice(spec.test.0, spec.test.1);
    let train_val_tl = ctx.timelines.slice(spec.train.0, spec.validate.1);

    if test_tl.is_empty() {
        return SplitOutcome {
            split: spec,
            runs: POLICY_ORDER.iter().map(|&p| PolicyRun::empty(p)).collect(),
        };
    }

    // --- Baselines + RL --------------------------------------------------------------
    let (forest, train_val_data) = train_forest(ctx, &train_val_tl, seed);
    let forest = Arc::new(forest);

    // The two expensive split stages — the SC20-RF threshold selection and the RL
    // hyperparameter search — are independent, so they run as the two branches of a
    // `rayon::join`: the work-stealing pool interleaves threshold-scan replays with RL
    // candidate training instead of serializing the stages (and without dividing a
    // static thread budget across nesting levels, as the pre-pool fork-join had to).
    // Each branch is deterministic on its own, so the overlap cannot change results.
    let ((best_threshold, sc20_run), rl_run) = rayon::join(
        || {
            // SC20-RF with its cost-optimal threshold ("maximum advantage"; the cost of
            // finding this threshold is not charged, exactly as in the paper). Besides
            // the uniform grid, the candidate set includes a data-driven threshold
            // swept from the forest's own training-period probabilities via the
            // incremental confusion-matrix optimiser.
            let data_driven = data_driven_threshold(
                &forest,
                &train_val_data,
                &train_val_tl,
                sampler,
                config,
                seed,
            );
            select_optimal_threshold(ctx, &forest, data_driven, &test_tl, sampler, config, seed)
        },
        || {
            let rl_policy = train_rl_agent(ctx, &train_tl, &validate_tl, sampler, config, seed);
            run_policy(&rl_policy, &test_tl, sampler, config, seed)
        },
    );

    // --- Everything else: per-policy fan-out ------------------------------------------
    // The six remaining policies are immutable once constructed, so their replays fan
    // out in parallel; each replay further parallelises over node timelines.
    let oracle = OraclePolicy::from_timelines(&test_tl);
    let sc20_2_policy = ThresholdRfPolicy::shared(
        Arc::clone(&forest),
        perturb_threshold(best_threshold, 0.02),
        "SC20-RF-2%",
    );
    let sc20_5_policy = ThresholdRfPolicy::shared(
        Arc::clone(&forest),
        perturb_threshold(best_threshold, 0.05),
        "SC20-RF-5%",
    );
    let myopic = MyopicRfPolicy::new(
        Arc::unwrap_or_clone(forest),
        config.mitigation_cost_node_hours(),
    );
    let policies: Vec<&(dyn MitigationPolicy + Sync)> = vec![
        &NeverMitigate,
        &AlwaysMitigate,
        &sc20_2_policy,
        &sc20_5_policy,
        &myopic,
        &oracle,
    ];
    let mut fanned: Vec<PolicyRun> = policies
        .into_par_iter()
        .map(|policy| run_policy(policy, &test_tl, sampler, config, seed))
        .collect();
    let oracle_run = fanned.pop().expect("six fanned runs");
    let myopic_run = fanned.pop().expect("five fanned runs");
    let sc20_5 = fanned.pop().expect("four fanned runs");
    let sc20_2 = fanned.pop().expect("three fanned runs");
    let always_run = fanned.pop().expect("two fanned runs");
    let never_run = fanned.pop().expect("one fanned run");

    SplitOutcome {
        split: spec,
        runs: vec![
            never_run, always_run, sc20_run, sc20_2, sc20_5, myopic_run, rl_run, oracle_run,
        ],
    }
}

/// Train the SC20-RF random forest on the training + validation data of a split,
/// returning the forest together with the supervised dataset it was fitted on (the
/// threshold selection reuses the dataset for its data-driven candidate).
fn train_forest(
    ctx: &ExperimentContext,
    train_val: &TimelineSet,
    seed: u64,
) -> (RandomForest, Dataset) {
    let (mut dataset, _) = build_rf_dataset_1day(train_val);
    if dataset.is_empty() {
        // Degenerate split (no events before the test part): a forest that always
        // predicts "no UE".
        dataset.push(vec![0.0; STATE_DIM - 1], false);
    }
    let mut rf_config = RandomForestConfig::sc20(STATE_DIM - 1, seed);
    rf_config.n_trees = ctx.budget.rf_trees.max(1);
    if dataset.positives() == 0 {
        // Under-sampling needs at least one positive; fall back to plain bagging.
        rf_config.undersample_ratio = None;
    }
    let forest = RandomForest::fit(&dataset, &rf_config);
    (forest, dataset)
}

/// A data-driven threshold candidate for the SC20-RF scan: sweep every distinct
/// training-period probability with [`optimal_threshold`]'s incrementally updated
/// confusion matrix, scoring `FP · mitigation cost + FN · mean UE cost` — `O(n log n)`
/// over the training samples instead of one full fleet replay per candidate. The mean
/// UE cost comes from a single policy-independent (Never-mitigate) replay of the
/// training window.
fn data_driven_threshold(
    forest: &RandomForest,
    train_val_data: &Dataset,
    train_val_tl: &TimelineSet,
    sampler: &NodeJobSampler,
    config: MitigationConfig,
    seed: u64,
) -> Option<f64> {
    if train_val_data.is_empty() || train_val_data.positives() == 0 || train_val_tl.is_empty() {
        return None;
    }
    let baseline = run_policy(&NeverMitigate, train_val_tl, sampler, config, seed);
    if baseline.ue_count == 0 {
        return None;
    }
    let mean_ue_cost = baseline.ue_cost / baseline.ue_count as f64;
    let mitigation_cost = config.mitigation_cost_node_hours();
    let probabilities: Vec<f64> = (0..train_val_data.len())
        .into_par_iter()
        .map(|i| forest.predict_proba(train_val_data.features_of(i)))
        .collect();
    let (threshold, _) = optimal_threshold(&probabilities, train_val_data.labels(), |c| {
        c.false_positives as f64 * mitigation_cost + c.false_negatives as f64 * mean_ue_cost
    });
    Some(threshold)
}

/// Scan the threshold candidates — a uniform grid plus the optional data-driven
/// candidate — and return the cost-optimal threshold together with its run. Every
/// candidate replays the same policy-independent workload, so the scan fans out in
/// parallel; the argmin is reduced in candidate order (grid first), keeping ties
/// deterministic.
fn select_optimal_threshold(
    ctx: &ExperimentContext,
    forest: &Arc<RandomForest>,
    data_driven: Option<f64>,
    test_tl: &TimelineSet,
    sampler: &NodeJobSampler,
    config: MitigationConfig,
    seed: u64,
) -> (f64, PolicyRun) {
    let grid = ctx.budget.threshold_grid.max(2);
    let mut thresholds: Vec<f64> = (0..grid).map(|i| i as f64 / (grid - 1) as f64).collect();
    if let Some(extra) = data_driven {
        if thresholds.iter().all(|&t| (t - extra).abs() > 1e-12) {
            thresholds.push(extra);
        }
    }
    let candidates: Vec<(f64, PolicyRun)> = thresholds
        .into_par_iter()
        .map(|threshold| {
            let policy = ThresholdRfPolicy::shared(Arc::clone(forest), threshold, "SC20-RF");
            let run = run_policy(&policy, test_tl, sampler, config, seed);
            (threshold, run)
        })
        .collect();
    let mut best: Option<(f64, PolicyRun)> = None;
    for (threshold, run) in candidates {
        // Lower cost wins, but through the NaN-safe reduction (negated, since
        // `better_score` prefers higher): a non-finite cost must never become the
        // incumbent — the old `run.total_cost() < b.total_cost()` let a NaN first
        // candidate win unconditionally, because every later `<` against NaN is false.
        let better = best
            .as_ref()
            .map(|(_, b)| better_score(-run.total_cost(), -b.total_cost()))
            .unwrap_or(true);
        if better {
            best = Some((threshold, run));
        }
    }
    best.expect("grid has at least two thresholds")
}

/// Train the RL agent for one split: random hyperparameter search on the training data,
/// model selection on the validation data (or the training data if the validation range
/// has no UEs, as in the paper), best agent kept. The whole search — every candidate
/// trained, not just the winner — is charged as the policy's training cost, using the
/// deterministic step-based cost model so results are identical across runs and thread
/// counts.
fn train_rl_agent(
    ctx: &ExperimentContext,
    train_tl: &TimelineSet,
    validate_tl: &TimelineSet,
    sampler: &NodeJobSampler,
    config: MitigationConfig,
    seed: u64,
) -> RlPolicy {
    let search = rl_hyper_search(ctx, train_tl, validate_tl, sampler, config, seed);
    search
        .outcome
        .best
        .with_training_cost(search.outcome.total_cost)
}

/// Whether the hyperparameter search should run the successive-halving schedule.
/// The per-process `UERL_HYPER_SEARCH` environment variable (`halving` / `exhaustive`,
/// read once) overrides the budget's [`EvalBudget::hyper_halving`] flag — CI uses it to
/// run the determinism suite under both strategies.
pub fn halving_enabled(budget: &EvalBudget) -> bool {
    static OVERRIDE: OnceLock<Option<bool>> = OnceLock::new();
    OVERRIDE
        .get_or_init(|| {
            uerl_core::knobs::env_choice(
                "UERL_HYPER_SEARCH",
                &[
                    ("", None),
                    ("halving", Some(true)),
                    ("exhaustive", Some(false)),
                ],
                None,
            )
        })
        .unwrap_or(budget.hyper_halving)
}

/// A completed RL hyperparameter search: the winner/trace/cost outcome shared by both
/// drivers, plus the rung-by-rung elimination trace when successive halving ran
/// (empty for the exhaustive strategy).
#[derive(Debug, Clone)]
pub struct RlSearch {
    /// Winner policy, candidate trace and the charged search cost.
    pub outcome: SearchOutcome<RlPolicy>,
    /// The halving rung trace (empty when the exhaustive driver ran).
    pub rungs: Vec<RungTrace>,
    /// Which strategy actually ran (after the environment override).
    pub halving: bool,
}

/// The split-level hyperparameter search behind [`train_rl_agent`], exposed with its
/// full candidate and rung traces for the cost-accounting and determinism tests.
///
/// Candidate parameters and per-candidate trainer seeds are pre-drawn by the generic
/// two-round driver, so the candidates of a round train and score in parallel while the
/// outcome stays bit-identical at any thread count — under both strategies. With
/// halving enabled ([`halving_enabled`]), candidates train rung by rung through
/// resumable sessions and losers stop early; the deterministic step-count cost model
/// charges only the steps actually trained.
pub fn rl_hyper_search(
    ctx: &ExperimentContext,
    train_tl: &TimelineSet,
    validate_tl: &TimelineSet,
    sampler: &NodeJobSampler,
    config: MitigationConfig,
    seed: u64,
) -> RlSearch {
    // Model selection set: validation if it contains UEs, training otherwise.
    let selection_tl = if validate_tl.total_fatal() > 0 {
        validate_tl
    } else {
        train_tl
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
    run_rl_search(
        &ctx.budget,
        &mut rng,
        train_tl,
        selection_tl,
        sampler,
        config,
        seed,
    )
}

/// The strategy dispatch every RL search call site (the evaluator's per-split stage and
/// the figure pipelines' prefix training) goes through, so halving-vs-exhaustive is
/// decided in exactly one place.
pub fn run_rl_search(
    budget: &EvalBudget,
    rng: &mut StdRng,
    train_tl: &TimelineSet,
    selection_tl: &TimelineSet,
    sampler: &NodeJobSampler,
    config: MitigationConfig,
    seed: u64,
) -> RlSearch {
    let search = HyperSearch::reduced(budget.hyper_initial, budget.hyper_refined);
    if halving_enabled(budget) {
        let full_steps = estimated_full_steps(train_tl, budget.rl_episodes);
        let halving = search.run_halving(
            rng,
            full_steps,
            dqn_candidate_session_factory(
                train_tl,
                selection_tl,
                sampler,
                config,
                seed,
                budget.rl_episodes,
            ),
        );
        RlSearch {
            outcome: halving.search,
            rungs: halving.rungs,
            halving: true,
        }
    } else {
        let outcome = search.run_parallel(
            rng,
            dqn_candidate_evaluator(
                train_tl,
                selection_tl,
                sampler,
                config,
                seed,
                budget.rl_episodes,
            ),
        );
        RlSearch {
            outcome,
            rungs: Vec::new(),
            halving: false,
        }
    }
}

/// Deterministic estimate of a full training run's environment steps, used to scale
/// **rung 0** of the halving schedule: the expected episode length under uniform node
/// sampling is the mean number of events per timeline, so `episodes × mean events per
/// timeline` approximates the steps a full run would take. Only rung 0 depends on it —
/// from rung 1 on, the driver recalibrates the schedule from the step counts the rung-0
/// candidates actually trained ([`Trainable::trained_units`]), which tracks realised
/// episode lengths on skewed fleets; the final rung always trains to the full episode
/// budget regardless. The estimate is a pure function of the training data, so the
/// schedule is identical across runs and thread counts.
pub fn estimated_full_steps(train_tl: &TimelineSet, episodes: usize) -> u64 {
    let timelines = train_tl.timelines();
    let mean_events = if timelines.is_empty() {
        1
    } else {
        let total: usize = timelines.iter().map(|t| t.events().len()).sum();
        (total / timelines.len()).max(1)
    };
    episodes.max(1) as u64 * mean_events as u64
}

/// The candidate-evaluation closure every hyper-search call site feeds to
/// [`HyperSearch::run_parallel`]: train a DQN with the candidate's hyperparameters
/// (trainer seed mixed as `seed ^ seed_draw`), score it as the negated total cost of a
/// replay on `selection_tl`, and charge the deterministic step-based training cost.
/// Centralised so the evaluator, the figure pipelines and the benchmarks cannot drift
/// apart in seed-mixing or scoring semantics.
pub fn dqn_candidate_evaluator<'a>(
    train_tl: &'a TimelineSet,
    selection_tl: &'a TimelineSet,
    sampler: &'a NodeJobSampler,
    config: MitigationConfig,
    seed: u64,
    episodes: usize,
) -> impl Fn(&HyperParams, u64) -> (RlPolicy, f64, f64) + Sync + 'a {
    let base_agent = AgentConfig::small(STATE_DIM);
    move |params, seed_draw| {
        let trainer_config = TrainerConfig {
            episodes: episodes.max(1),
            agent: params.apply_to(&base_agent).with_seed(seed),
            mitigation: config,
            seed: seed ^ seed_draw,
        };
        let outcome = RlTrainer::new(trainer_config).train(train_tl, sampler);
        let cost = outcome.training_cost_node_hours();
        // Compact before wrapping: a round of candidates is held alive until the
        // reduction, and the filled replay buffer dominates each agent's footprint.
        let mut agent = outcome.agent;
        agent.compact_for_inference();
        let policy = RlPolicy::new(agent);
        let score = if selection_tl.is_empty() {
            0.0
        } else {
            -run_policy(&policy, selection_tl, sampler, config, seed).total_cost()
        };
        (policy, score, cost)
    }
}

/// One live successive-halving candidate: a resumable DQN training session plus the
/// data needed to score it at each rung and finish it into a policy.
///
/// `train_to` budgets are cumulative environment-step targets (`u64::MAX` = the full
/// episode budget); each increment is charged through the deterministic step-count cost
/// model, so the search bills exactly the steps actually trained. Scoring borrows the
/// live agent through [`RlPolicyView`] — no clone, no compaction — and the final
/// artifact is compacted exactly like the exhaustive path's candidates.
pub struct DqnCandidateSession<'a> {
    session: TrainingSession,
    train_tl: &'a TimelineSet,
    selection_tl: &'a TimelineSet,
    sampler: &'a NodeJobSampler,
    config: MitigationConfig,
    seed: u64,
}

impl DqnCandidateSession<'_> {
    /// Environment steps this candidate has trained so far.
    pub fn total_steps(&self) -> u64 {
        self.session.total_steps()
    }
}

impl Trainable for DqnCandidateSession<'_> {
    type Artifact = RlPolicy;

    fn train_to(&mut self, budget: u64) -> f64 {
        let added = self
            .session
            .train_until_steps(self.train_tl, self.sampler, budget);
        step_cost_node_hours(added)
    }

    fn trained_units(&self) -> u64 {
        self.session.total_steps()
    }

    fn score(&self) -> f64 {
        if self.selection_tl.is_empty() {
            0.0
        } else {
            -run_policy(
                &RlPolicyView::new(self.session.agent()),
                self.selection_tl,
                self.sampler,
                self.config,
                self.seed,
            )
            .total_cost()
        }
    }

    fn into_artifact(self) -> RlPolicy {
        let mut agent = self.session.into_outcome().agent;
        agent.compact_for_inference();
        RlPolicy::new(agent)
    }
}

/// The candidate factory the halving driver uses: same seed-mixing and agent base
/// configuration as [`dqn_candidate_evaluator`], but the candidate comes back as a
/// resumable session instead of being trained to completion up front. Centralised next
/// to the exhaustive closure so the two strategies cannot drift apart in semantics.
pub fn dqn_candidate_session_factory<'a>(
    train_tl: &'a TimelineSet,
    selection_tl: &'a TimelineSet,
    sampler: &'a NodeJobSampler,
    config: MitigationConfig,
    seed: u64,
    episodes: usize,
) -> impl Fn(&HyperParams, u64) -> DqnCandidateSession<'a> + Sync + 'a {
    let base_agent = AgentConfig::small(STATE_DIM);
    move |params, seed_draw| {
        let trainer_config = TrainerConfig {
            episodes: episodes.max(1),
            agent: params.apply_to(&base_agent).with_seed(seed),
            mitigation: config,
            seed: seed ^ seed_draw,
        };
        DqnCandidateSession {
            session: RlTrainer::new(trainer_config).session(),
            train_tl,
            selection_tl,
            sampler,
            config,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EvalBudget;

    fn small_result() -> EvaluationResult {
        let ctx = ExperimentContext::synthetic_small(35, 90, EvalBudget::tiny(), 41);
        Evaluator::new().evaluate(&ctx)
    }

    #[test]
    fn full_protocol_produces_all_policies_and_splits() {
        let result = small_result();
        assert_eq!(result.per_split.len(), EvalBudget::tiny().cv_parts);
        assert_eq!(result.totals.len(), POLICY_ORDER.len());
        for (run, &name) in result.totals.iter().zip(POLICY_ORDER.iter()) {
            assert_eq!(run.policy, name);
        }
        // Every policy saw the same UEs (workload and log are policy-independent).
        let never = result.total_for("Never-mitigate").unwrap();
        let always = result.total_for("Always-mitigate").unwrap();
        assert_eq!(never.ue_count, always.ue_count);
        assert!(
            never.ue_count > 0,
            "the synthetic test data must contain UEs"
        );
    }

    #[test]
    fn cost_orderings_match_the_paper_shape() {
        let result = small_result();
        let never = result.total_cost_of("Never-mitigate");
        let always = result.total_cost_of("Always-mitigate");
        let oracle = result.total_cost_of("Oracle");
        let sc20 = result.total_cost_of("SC20-RF");
        // The Oracle is the cheapest policy; Never-mitigate pays the full UE bill.
        assert!(oracle <= always + 1e-9);
        assert!(oracle <= never + 1e-9);
        assert!(oracle <= sc20 + 1e-9);
        // SC20-RF with the cost-optimal threshold can never lose to both static policies
        // simultaneously (the grid contains threshold 0 ≈ Always and 1 ≈ Never).
        assert!(sc20 <= never.max(always) + 1e-9);
        // Perturbed thresholds are at best as good as the optimal one.
        assert!(result.total_cost_of("SC20-RF-2%") + 1e-9 >= sc20);
        assert!(result.total_cost_of("SC20-RF-5%") + 1e-9 >= sc20);
    }

    #[test]
    fn metrics_are_available_for_every_policy() {
        let result = small_result();
        for &name in POLICY_ORDER.iter() {
            let totals = result.totals_for(name).unwrap();
            let m = totals.metrics;
            assert_eq!(
                m.true_positives + m.false_negatives,
                result.total_for(name).unwrap().ue_count,
                "TP+FN must equal the number of UEs for {name}"
            );
        }
        // The Oracle performs the fewest mitigations needed to cover the predictable UEs,
        // so its precision is the best among all policies that mitigate at all. (It can
        // fall short of 100% only when the last event before a UE lies outside the 1-day
        // classification window, which the cost-benefit analysis does not penalise.)
        let oracle = result.totals_for("Oracle").unwrap().metrics;
        if let Some(oracle_precision) = oracle.precision() {
            for &name in POLICY_ORDER.iter() {
                if let Some(p) = result.totals_for(name).unwrap().metrics.precision() {
                    assert!(
                        oracle_precision + 1e-9 >= p,
                        "oracle precision {oracle_precision} below {name}'s {p}"
                    );
                }
            }
        }
        // Never-mitigate has undefined precision.
        assert!(result
            .totals_for("Never-mitigate")
            .unwrap()
            .metrics
            .precision()
            .is_none());
    }

    /// A context split into train/validate parts for direct search-level tests.
    fn search_fixture(
        budget: EvalBudget,
        ctx_seed: u64,
    ) -> (ExperimentContext, TimelineSet, TimelineSet) {
        let ctx = ExperimentContext::synthetic_small(20, 60, budget, ctx_seed);
        let window = ctx.timelines.window_end() - ctx.timelines.window_start();
        let mid = ctx
            .timelines
            .window_start()
            .plus_secs((window as f64 * 0.7) as i64);
        let train_tl = ctx.timelines.slice(ctx.timelines.window_start(), mid);
        let validate_tl = ctx.timelines.slice(mid, ctx.timelines.window_end());
        (ctx, train_tl, validate_tl)
    }

    /// The strategy-pinned tests below require one concrete search strategy; the
    /// per-process `UERL_HYPER_SEARCH` override (CI's determinism passes set it)
    /// deliberately trumps every budget flag, so skip them when it is active rather
    /// than fail on assertions about the strategy they could not choose.
    fn strategy_override_active() -> bool {
        std::env::var("UERL_HYPER_SEARCH").is_ok()
    }

    #[test]
    fn search_cost_is_the_sum_over_all_candidates_in_candidate_order() {
        if strategy_override_active() {
            return;
        }
        // Multiple candidates in both rounds, tiny training budget. This test pins the
        // *exhaustive* strategy's cost semantics (every candidate fully trained), so it
        // opts out of halving explicitly.
        let budget = EvalBudget {
            rl_episodes: 8,
            hyper_initial: 3,
            hyper_refined: 2,
            rf_trees: 4,
            cv_parts: 3,
            threshold_grid: 4,
            hyper_halving: false,
        };
        let (ctx, train_tl, validate_tl) = search_fixture(budget, 71);
        let sampler = ctx.job_sampler(1.0);
        let seed = 1234u64;

        let outcome = rl_hyper_search(
            &ctx,
            &train_tl,
            &validate_tl,
            &sampler,
            ctx.mitigation,
            seed,
        )
        .outcome;
        // The paper's budget semantics: the default point counts as one of
        // `hyper_initial`, so exactly initial + refined candidates are trained.
        assert_eq!(
            outcome.candidates.len(),
            budget.hyper_initial + budget.hyper_refined
        );

        // The charged search cost is the in-order sum of the per-candidate costs, and
        // each recorded cost is reproducible by retraining that candidate from its
        // recorded parameters and pre-drawn trainer seed.
        let base_agent = AgentConfig::small(STATE_DIM);
        let mut recomputed = 0.0f64;
        for candidate in &outcome.candidates {
            let trainer_config = TrainerConfig {
                episodes: budget.rl_episodes,
                agent: candidate.params.apply_to(&base_agent).with_seed(seed),
                mitigation: ctx.mitigation,
                seed: seed ^ candidate.trainer_seed,
            };
            let trained = RlTrainer::new(trainer_config).train(&train_tl, &sampler);
            let cost = trained.training_cost_node_hours();
            assert_eq!(cost.to_bits(), candidate.cost.to_bits());
            recomputed += cost;
        }
        assert_eq!(outcome.total_cost.to_bits(), recomputed.to_bits());
        assert!(outcome.total_cost > 0.0);

        // And `train_rl_agent` charges exactly that cost to the returned policy.
        let policy = train_rl_agent(
            &ctx,
            &train_tl,
            &validate_tl,
            &sampler,
            ctx.mitigation,
            seed,
        );
        assert_eq!(
            policy.training_cost_node_hours().to_bits(),
            outcome.total_cost.to_bits()
        );
    }

    /// The halving budget used by the halving-specific tests below: enough candidates
    /// for several rungs, tiny training.
    fn halving_budget() -> EvalBudget {
        EvalBudget {
            rl_episodes: 8,
            hyper_initial: 5,
            hyper_refined: 3,
            rf_trees: 4,
            cv_parts: 3,
            threshold_grid: 4,
            hyper_halving: true,
        }
    }

    #[test]
    fn halving_search_charges_the_in_order_sum_of_steps_actually_trained() {
        if strategy_override_active() {
            return;
        }
        let (ctx, train_tl, validate_tl) = search_fixture(halving_budget(), 72);
        let sampler = ctx.job_sampler(1.0);
        let seed = 4321u64;
        let search = rl_hyper_search(
            &ctx,
            &train_tl,
            &validate_tl,
            &sampler,
            ctx.mitigation,
            seed,
        );
        assert!(search.halving);
        assert!(!search.rungs.is_empty());
        let outcome = &search.outcome;
        assert_eq!(
            outcome.candidates.len(),
            ctx.budget.hyper_initial + ctx.budget.hyper_refined
        );

        // Reconstruct every candidate's training straight from its recorded params and
        // pre-drawn trainer seed, replaying the rung targets it actually saw; the
        // charged total cost must be the rung-major, candidate-order sum of the
        // per-increment step costs — to the bit.
        let base_agent = AgentConfig::small(STATE_DIM);
        let mut sessions: Vec<TrainingSession> = outcome
            .candidates
            .iter()
            .map(|c| {
                let trainer_config = TrainerConfig {
                    episodes: ctx.budget.rl_episodes,
                    agent: c.params.apply_to(&base_agent).with_seed(seed),
                    mitigation: ctx.mitigation,
                    seed: seed ^ c.trainer_seed,
                };
                RlTrainer::new(trainer_config).session()
            })
            .collect();
        let mut expected_total = 0.0f64;
        let mut per_candidate = vec![0.0f64; outcome.candidates.len()];
        for rung in &search.rungs {
            for (&candidate, &recorded_cost) in rung.survivors.iter().zip(&rung.costs) {
                let added = sessions[candidate].train_until_steps(&train_tl, &sampler, rung.budget);
                let cost = step_cost_node_hours(added);
                assert_eq!(
                    cost.to_bits(),
                    recorded_cost.to_bits(),
                    "rung {} cost of candidate {candidate} not reproducible",
                    rung.rung
                );
                expected_total += cost;
                per_candidate[candidate] += cost;
            }
        }
        assert_eq!(
            outcome.total_cost.to_bits(),
            expected_total.to_bits(),
            "charged cost must equal the in-order sum of steps actually trained"
        );
        for (candidate, cost) in outcome.candidates.iter().zip(per_candidate) {
            assert_eq!(candidate.cost.to_bits(), cost.to_bits());
        }

        // And the winner's resumed training is bit-equal to having trained it straight
        // through to the same final step count.
        let winner = &sessions[outcome.best_index];
        let probe = vec![0.1; STATE_DIM];
        for (a, b) in winner
            .agent()
            .q_values(&probe)
            .iter()
            .zip(outcome.best.agent().q_values(&probe))
        {
            assert_eq!(a.to_bits(), b.to_bits(), "winner network diverged");
        }

        // `train_rl_agent` charges exactly the halving search cost to the policy.
        let policy = train_rl_agent(
            &ctx,
            &train_tl,
            &validate_tl,
            &sampler,
            ctx.mitigation,
            seed,
        );
        assert_eq!(
            policy.training_cost_node_hours().to_bits(),
            outcome.total_cost.to_bits()
        );
    }

    #[test]
    fn halving_trains_strictly_fewer_steps_than_exhaustive() {
        if strategy_override_active() {
            return;
        }
        let (ctx, train_tl, validate_tl) = search_fixture(halving_budget(), 73);
        let sampler = ctx.job_sampler(1.0);
        let seed = 99u64;
        let halving = rl_hyper_search(
            &ctx,
            &train_tl,
            &validate_tl,
            &sampler,
            ctx.mitigation,
            seed,
        );
        let mut exhaustive_ctx = ctx.clone();
        exhaustive_ctx.budget = exhaustive_ctx.budget.with_halving(false);
        let exhaustive = rl_hyper_search(
            &exhaustive_ctx,
            &train_tl,
            &validate_tl,
            &sampler,
            ctx.mitigation,
            seed,
        );
        assert!(halving.halving && !exhaustive.halving);
        // Same pre-drawn candidate sets in the broad round (the refined round may
        // differ if the two strategies anchor on different broad winners).
        let broad = ctx.budget.hyper_initial;
        for (a, b) in halving.outcome.candidates[..broad]
            .iter()
            .zip(&exhaustive.outcome.candidates[..broad])
        {
            assert_eq!(a.params, b.params);
            assert_eq!(a.trainer_seed, b.trainer_seed);
        }
        assert!(
            halving.outcome.total_cost < exhaustive.outcome.total_cost,
            "halving ({}) must train strictly fewer steps than exhaustive ({})",
            halving.outcome.total_cost,
            exhaustive.outcome.total_cost
        );
        assert!(halving.outcome.total_cost > 0.0);
    }

    #[test]
    fn sequential_and_parallel_evaluation_agree() {
        let ctx = ExperimentContext::synthetic_small(25, 60, EvalBudget::tiny(), 43);
        let par = Evaluator::new().evaluate(&ctx);
        let seq = Evaluator::new().sequential().evaluate(&ctx);
        for (a, b) in par.totals.iter().zip(&seq.totals) {
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.ue_count, b.ue_count);
            assert_eq!(a.mitigations, b.mitigations);
            assert!((a.ue_cost - b.ue_cost).abs() < 1e-9);
        }
    }

    #[test]
    fn job_scaling_raises_unmitigated_costs() {
        let ctx = ExperimentContext::synthetic_small(25, 60, EvalBudget::tiny(), 47);
        let base = Evaluator::new().sequential().evaluate(&ctx);
        let scaled = Evaluator::new()
            .sequential()
            .with_job_scaling(10.0)
            .evaluate(&ctx);
        let never_base = base.total_cost_of("Never-mitigate");
        let never_scaled = scaled.total_cost_of("Never-mitigate");
        assert!(
            never_scaled > 3.0 * never_base,
            "10x larger jobs must cost much more ({never_base} -> {never_scaled})"
        );
    }
}
