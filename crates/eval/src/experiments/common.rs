//! Shared helpers for the experiment drivers that need a trained agent outside the
//! cross-validation loop (Figure 6's behaviour map and Table 2's cost-conditioned rows).

use crate::evaluator::run_rl_search;
use crate::run::run_policy;
use crate::scenario::{EvalBudget, ExperimentContext};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::sync::{Arc, Mutex};
use uerl_core::env::MitigationEnv;
use uerl_core::event_stream::TimelineSet;
use uerl_core::policies::{RlPolicy, ThresholdRfPolicy};
use uerl_core::rf_dataset::build_rf_dataset_1day;
use uerl_core::state::{StateFeatures, STATE_DIM};
use uerl_core::MitigationConfig;
use uerl_forest::{RandomForest, RandomForestConfig};
use uerl_jobs::schedule::NodeJobSampler;
use uerl_trace::types::SimTime;

/// Models trained on the leading fraction of the observation window, plus the boundary.
pub struct TrainedModels {
    /// The SC20-style random forest (the Figure 6 y-axis probability proxy).
    pub forest: RandomForest,
    /// The trained RL policy.
    pub rl: RlPolicy,
    /// End of the training range; the remainder of the window is held out.
    pub train_end: SimTime,
}

impl TrainedModels {
    /// A threshold-free view of the forest for probability queries.
    pub fn rf_probe(&self) -> ThresholdRfPolicy {
        ThresholdRfPolicy::new(self.forest.clone(), 0.5, "RF-probe")
    }
}

/// One FNV-1a style mixing step for the content digests below.
fn fnv_mix(hash: u64, value: u64) -> u64 {
    (hash ^ value).wrapping_mul(0x0000_0100_0000_01B3)
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Order-sensitive digest of every event the timelines carry (node, time, severity).
/// O(events), trivially cheap next to the hyper search it guards, and it distinguishes
/// contexts whose logs differ in content but agree on label/seed/shape.
fn timelines_digest(timelines: &TimelineSet) -> u64 {
    let mut hash = FNV_OFFSET;
    for timeline in timelines.timelines() {
        hash = fnv_mix(hash, u64::from(timeline.node().0));
        hash = fnv_mix(hash, timeline.events().len() as u64);
        for event in timeline.events() {
            hash = fnv_mix(hash, event.time.0 as u64);
            hash = fnv_mix(hash, u64::from(event.fatal));
        }
    }
    hash
}

/// Cache key for [`train_models_on_prefix`]: everything the training depends on,
/// fingerprinted — scenario identity (label, seed, budget, mitigation, fraction),
/// window/shape, and content digests of the error timelines and the job log, so
/// hand-built contexts that reuse a label but differ in log content never collide.
#[derive(Debug, Clone, PartialEq)]
struct PrefixKey {
    label: String,
    seed: u64,
    budget: EvalBudget,
    mitigation: MitigationConfig,
    fraction_bits: u64,
    window: (SimTime, SimTime),
    timelines_digest: u64,
    jobs_digest: u64,
}

impl PrefixKey {
    fn new(ctx: &ExperimentContext, train_fraction: f64) -> Self {
        let jobs_digest = fnv_mix(
            fnv_mix(FNV_OFFSET, ctx.job_log.len() as u64),
            ctx.job_log.total_node_hours().to_bits(),
        );
        Self {
            label: ctx.label.clone(),
            seed: ctx.seed,
            budget: ctx.budget,
            mitigation: ctx.mitigation,
            fraction_bits: train_fraction.to_bits(),
            window: (ctx.timelines.window_start(), ctx.timelines.window_end()),
            timelines_digest: timelines_digest(&ctx.timelines),
            jobs_digest,
        }
    }
}

/// At most this many `(ctx, fraction)` entries stay cached (FIFO eviction). Figure runs
/// need exactly one; the bound only guards long-lived processes that sweep scenarios.
const PREFIX_CACHE_CAPACITY: usize = 8;

/// The memoized prefix-trained models. `train_models_on_prefix` is deterministic in its
/// inputs, so sharing one `TrainedModels` per `(ctx, fraction)` is observationally
/// identical to retraining — and fig6 + table2, which both train on the 0.75 prefix,
/// stop paying the full two-round hyper search twice per figure run.
static PREFIX_CACHE: Mutex<Vec<(PrefixKey, Arc<TrainedModels>)>> = Mutex::new(Vec::new());

/// Drop every memoized prefix model. For benchmarks (`perf_report`) that must time the
/// full training cost of each pipeline invocation instead of a cache hit; production
/// callers never need this — the cache is semantically invisible.
pub fn clear_prefix_cache() {
    PREFIX_CACHE.lock().expect("prefix cache poisoned").clear();
}

/// Train the forest and the RL agent on the first `train_fraction` of the window.
///
/// The RL agent goes through the same two-round random hyperparameter search as the
/// cross-validation protocol (`budget.hyper_initial` broad + `budget.hyper_refined`
/// narrowed candidates, trained in parallel — successive-halving or exhaustive, exactly
/// as the evaluator resolves it through [`run_rl_search`]). Model selection scores
/// candidates on the training prefix itself — the held-out remainder of the window is
/// the figures' evaluation data and must stay unseen — and the whole search, not just
/// the winner, is charged as the policy's training cost.
///
/// Results are memoized per `(ctx, fraction)` fingerprint: the training is a pure
/// function of those inputs, so callers that share a context (fig6 and table2 both
/// train on the 0.75 prefix) share one search instead of re-running it.
pub fn train_models_on_prefix(ctx: &ExperimentContext, train_fraction: f64) -> Arc<TrainedModels> {
    let key = PrefixKey::new(ctx, train_fraction);
    if let Some(hit) = PREFIX_CACHE
        .lock()
        .expect("prefix cache poisoned")
        .iter()
        .find(|(k, _)| *k == key)
    {
        return Arc::clone(&hit.1);
    }
    // Train outside the lock: the search is the dominant cost of a figure run and must
    // not serialize unrelated contexts behind a global mutex. A racing duplicate of the
    // same key computes the identical value; first insert wins below.
    let models = Arc::new(train_models_on_prefix_uncached(ctx, train_fraction));
    let mut cache = PREFIX_CACHE.lock().expect("prefix cache poisoned");
    if let Some(hit) = cache.iter().find(|(k, _)| *k == key) {
        return Arc::clone(&hit.1);
    }
    if cache.len() >= PREFIX_CACHE_CAPACITY {
        cache.remove(0);
    }
    cache.push((key, Arc::clone(&models)));
    models
}

fn train_models_on_prefix_uncached(ctx: &ExperimentContext, train_fraction: f64) -> TrainedModels {
    let window = ctx.timelines.window_end() - ctx.timelines.window_start();
    let train_end = ctx
        .timelines
        .window_start()
        .plus_secs((window as f64 * train_fraction.clamp(0.1, 0.95)) as i64);
    let train_tl = ctx.timelines.slice(ctx.timelines.window_start(), train_end);
    let sampler = ctx.job_sampler(1.0);

    // Random forest on the training prefix.
    let (mut dataset, _) = build_rf_dataset_1day(&train_tl);
    if dataset.is_empty() {
        dataset.push(vec![0.0; STATE_DIM - 1], false);
    }
    let mut rf_config = RandomForestConfig::sc20(STATE_DIM - 1, ctx.seed);
    rf_config.n_trees = ctx.budget.rf_trees.max(1);
    if dataset.positives() == 0 {
        rf_config.undersample_ratio = None;
    }
    let forest = RandomForest::fit(&dataset, &rf_config);

    // RL agent on the same prefix, with the full two-round hyperparameter search
    // (halving or exhaustive, resolved exactly as the evaluator resolves it).
    let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x0F16);
    let search = run_rl_search(
        &ctx.budget,
        &mut rng,
        &train_tl,
        &train_tl,
        &sampler,
        ctx.mitigation,
        ctx.seed,
    );
    TrainedModels {
        forest,
        rl: search
            .outcome
            .best
            .with_training_cost(search.outcome.total_cost),
        train_end,
    }
}

/// The held-out timelines (after [`TrainedModels::train_end`]).
pub fn holdout(ctx: &ExperimentContext, models: &TrainedModels) -> TimelineSet {
    ctx.timelines
        .slice(models.train_end, ctx.timelines.window_end())
}

/// Replay the held-out timelines without mitigating and collect every observed state.
/// The per-node replays are independent (seeded by node id only), so they fan out over
/// rayon; results are flattened in timeline order.
pub fn collect_states(
    timelines: &TimelineSet,
    sampler: &NodeJobSampler,
    config: MitigationConfig,
    seed: u64,
) -> Vec<StateFeatures> {
    let per_node: Vec<Vec<StateFeatures>> = timelines
        .timelines()
        .par_iter()
        .map(|timeline| {
            let mut states = Vec::new();
            let mut rng = StdRng::seed_from_u64(seed ^ u64::from(timeline.node().0));
            let sequence =
                sampler.sample_sequence(timeline.window_start(), timeline.window_end(), &mut rng);
            let mut env = MitigationEnv::new(timeline.clone(), sequence, config, false);
            let mut state = env.reset();
            while let Some(s) = state {
                states.push(s.clone());
                state = env.step(false).next_state;
            }
            states
        })
        .collect();
    per_node.into_iter().flatten().collect()
}

/// Convenience: the total cost a trained RL policy achieves on the held-out data (used by
/// tests to sanity-check the helpers).
pub fn holdout_cost(ctx: &ExperimentContext, models: &TrainedModels) -> f64 {
    let holdout_tl = holdout(ctx, models);
    let sampler = ctx.job_sampler(1.0);
    run_policy(&models.rl, &holdout_tl, &sampler, ctx.mitigation, ctx.seed).total_cost()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EvalBudget;
    use uerl_core::policy::MitigationPolicy;

    #[test]
    fn prefix_training_and_state_collection_work_together() {
        let ctx = ExperimentContext::synthetic_small(30, 75, EvalBudget::tiny(), 61);
        let models = train_models_on_prefix(&ctx, 0.5);
        assert!(models.train_end > ctx.timelines.window_start());
        assert!(models.train_end < ctx.timelines.window_end());
        assert!(models.rl.training_cost_node_hours() > 0.0);

        let holdout_tl = holdout(&ctx, &models);
        let sampler = ctx.job_sampler(1.0);
        let states = collect_states(&holdout_tl, &sampler, ctx.mitigation, ctx.seed);
        assert!(!states.is_empty());
        assert!(states.iter().all(|s| s.time >= models.train_end));

        // The probe and the policy can both evaluate collected states.
        let probe = models.rf_probe();
        let p = probe.probability(&states[0]);
        assert!((0.0..=1.0).contains(&p));
        let cost = holdout_cost(&ctx, &models);
        assert!(cost >= 0.0);
        let _ = models.rl.decide(&states[0]);
    }

    #[test]
    fn prefix_training_is_memoized_per_context_and_fraction() {
        let ctx = ExperimentContext::synthetic_small(20, 60, EvalBudget::tiny(), 62);
        let first = train_models_on_prefix(&ctx, 0.75);
        let second = train_models_on_prefix(&ctx, 0.75);
        assert!(
            Arc::ptr_eq(&first, &second),
            "same (ctx, fraction) must share one trained instance"
        );
        // A different fraction — or a different context — is a different cache entry.
        let other_fraction = train_models_on_prefix(&ctx, 0.5);
        assert!(!Arc::ptr_eq(&first, &other_fraction));
        assert!(other_fraction.train_end < first.train_end);
        let other_ctx = ExperimentContext::synthetic_small(20, 60, EvalBudget::tiny(), 63);
        let other = train_models_on_prefix(&other_ctx, 0.75);
        assert!(!Arc::ptr_eq(&first, &other));
    }
}
