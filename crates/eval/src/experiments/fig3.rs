//! Figure 3: total cost (UE cost + mitigation cost) for the whole system, for mitigation
//! costs of 2, 5 and 10 node-minutes, across all eight policies. Also derives the
//! Section 5.1 headline numbers (reduction vs Never-mitigate, distance to the Oracle).

use crate::evaluator::{EvaluationResult, Evaluator, POLICY_ORDER};
use crate::report::{format_table, node_hours, percent};
use crate::scenario::ExperimentContext;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One bar of Figure 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Mitigation cost in node-minutes (2, 5 or 10).
    pub mitigation_cost_minutes: f64,
    /// Policy name.
    pub policy: String,
    /// UE cost in node-hours (the solid part of the bar).
    pub ue_cost: f64,
    /// Mitigation cost in node-hours, including model training (the dashed part).
    pub mitigation_cost: f64,
}

impl Fig3Row {
    /// Total cost (bar height).
    pub fn total_cost(&self) -> f64 {
        self.ue_cost + self.mitigation_cost
    }
}

/// The Figure 3 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Scenario label.
    pub label: String,
    /// All bars, grouped by mitigation cost then by policy (in [`POLICY_ORDER`]).
    pub rows: Vec<Fig3Row>,
}

impl Fig3Result {
    /// The row for a policy at a mitigation cost, if present.
    pub fn row(&self, policy: &str, mitigation_cost_minutes: f64) -> Option<&Fig3Row> {
        self.rows.iter().find(|r| {
            r.policy == policy && (r.mitigation_cost_minutes - mitigation_cost_minutes).abs() < 1e-9
        })
    }

    /// Section 5.1 headline: `(reduction of RL vs Never-mitigate, RL excess over Oracle)`
    /// at the given mitigation cost, both as fractions.
    pub fn headline(&self, mitigation_cost_minutes: f64) -> Option<(f64, f64)> {
        let never = self
            .row("Never-mitigate", mitigation_cost_minutes)?
            .total_cost();
        let rl = self.row("RL", mitigation_cost_minutes)?.total_cost();
        let oracle = self.row("Oracle", mitigation_cost_minutes)?.total_cost();
        if never <= 0.0 || oracle <= 0.0 {
            return None;
        }
        Some(((never - rl) / never, (rl - oracle) / oracle))
    }

    /// Render the figure as a text table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    format!("{}", r.mitigation_cost_minutes),
                    r.policy.clone(),
                    node_hours(r.ue_cost),
                    node_hours(r.mitigation_cost),
                    node_hours(r.total_cost()),
                ]
            })
            .collect();
        let mut out = format!("Figure 3 — total cost ({})\n", self.label);
        out.push_str(&format_table(
            &[
                "mit. cost (node-min)",
                "policy",
                "UE cost (nh)",
                "mitigation (nh)",
                "total (nh)",
            ],
            &rows,
        ));
        if let Some((reduction, gap)) = self.headline(2.0) {
            out.push_str(&format!(
                "headline @2 node-min: RL reduces lost compute by {} vs Never-mitigate, {} above Oracle\n",
                percent(reduction),
                percent(gap)
            ));
        }
        out
    }
}

/// Run Figure 3: evaluate the context at each mitigation cost. The cost scenarios are
/// independent evaluations of the same logs, so they fan out in parallel; rows keep the
/// input cost order.
pub fn run(ctx: &ExperimentContext, mitigation_costs_minutes: &[f64]) -> Fig3Result {
    let per_cost: Vec<(f64, EvaluationResult)> = mitigation_costs_minutes
        .par_iter()
        .map(|&cost| {
            let scenario = ctx.with_mitigation_cost_minutes(cost);
            (cost, Evaluator::new().evaluate(&scenario))
        })
        .collect();
    let mut rows = Vec::new();
    for (cost, result) in &per_cost {
        for &policy in POLICY_ORDER.iter() {
            let run = result.total_for(policy).expect("every policy is evaluated");
            rows.push(Fig3Row {
                mitigation_cost_minutes: *cost,
                policy: policy.to_string(),
                ue_cost: run.ue_cost,
                mitigation_cost: run.mitigation_cost,
            });
        }
    }
    Fig3Result {
        label: ctx.label.clone(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EvalBudget;

    #[test]
    fn figure3_smoke_test_reproduces_the_shape() {
        let ctx = ExperimentContext::synthetic_small(30, 75, EvalBudget::tiny(), 51);
        let result = run(&ctx, &[2.0]);
        assert_eq!(result.rows.len(), POLICY_ORDER.len());
        let never = result.row("Never-mitigate", 2.0).unwrap();
        let oracle = result.row("Oracle", 2.0).unwrap();
        assert_eq!(never.mitigation_cost, 0.0);
        assert!(never.total_cost() > 0.0);
        assert!(oracle.total_cost() <= never.total_cost() + 1e-9);
        let rendered = result.render();
        assert!(rendered.contains("Figure 3"));
        assert!(rendered.contains("Never-mitigate"));
        let (reduction, _gap) = result.headline(2.0).unwrap();
        assert!((-1.0..=1.0).contains(&reduction));
    }
}
