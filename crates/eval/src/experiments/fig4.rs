//! Figure 4: the time-series nested cross-validation results — total cost per
//! four-month split for every policy at the 2 node-minute mitigation cost.

use crate::evaluator::{Evaluator, POLICY_ORDER};
use crate::report::{format_table, node_hours};
use crate::scenario::ExperimentContext;
use serde::{Deserialize, Serialize};

/// One split's costs for one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Cell {
    /// 1-based split index (time order).
    pub split: usize,
    /// Policy name.
    pub policy: String,
    /// UE cost in node-hours.
    pub ue_cost: f64,
    /// Mitigation cost in node-hours.
    pub mitigation_cost: f64,
}

impl Fig4Cell {
    /// Total cost of this policy in this split.
    pub fn total_cost(&self) -> f64 {
        self.ue_cost + self.mitigation_cost
    }
}

/// The Figure 4 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Scenario label.
    pub label: String,
    /// Number of splits.
    pub splits: usize,
    /// One cell per (split, policy).
    pub cells: Vec<Fig4Cell>,
}

impl Fig4Result {
    /// The cell for a split and policy.
    pub fn cell(&self, split: usize, policy: &str) -> Option<&Fig4Cell> {
        self.cells
            .iter()
            .find(|c| c.split == split && c.policy == policy)
    }

    /// Sum over splits for one policy (matches the corresponding Figure 3 bar).
    pub fn total_for(&self, policy: &str) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.policy == policy)
            .map(Fig4Cell::total_cost)
            .sum()
    }

    /// Render the figure as a text table (splits as rows, policies as columns).
    pub fn render(&self) -> String {
        let mut headers = vec!["split"];
        headers.extend(POLICY_ORDER.iter().copied());
        let rows: Vec<Vec<String>> = (1..=self.splits)
            .map(|s| {
                let mut row = vec![format!("{s}")];
                for &p in POLICY_ORDER.iter() {
                    row.push(
                        self.cell(s, p)
                            .map(|c| node_hours(c.total_cost()))
                            .unwrap_or_else(|| "-".to_string()),
                    );
                }
                row
            })
            .collect();
        format!(
            "Figure 4 — per-split total cost, 2 node-minute mitigation ({})\n{}",
            self.label,
            format_table(&headers, &rows)
        )
    }
}

/// Run Figure 4 on a context (which should use the 2 node-minute mitigation cost).
pub fn run(ctx: &ExperimentContext) -> Fig4Result {
    let result = Evaluator::new().evaluate(ctx);
    let mut cells = Vec::new();
    for outcome in &result.per_split {
        for run in &outcome.runs {
            cells.push(Fig4Cell {
                split: outcome.split.index,
                policy: run.policy.clone(),
                ue_cost: run.ue_cost,
                mitigation_cost: run.mitigation_cost,
            });
        }
    }
    Fig4Result {
        label: ctx.label.clone(),
        splits: result.per_split.len(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EvalBudget;

    #[test]
    fn figure4_covers_every_split_and_policy() {
        let ctx = ExperimentContext::synthetic_small(30, 75, EvalBudget::tiny(), 53);
        let result = run(&ctx);
        assert_eq!(result.splits, EvalBudget::tiny().cv_parts);
        assert_eq!(result.cells.len(), result.splits * POLICY_ORDER.len());
        // Per-split totals add up to a positive overall cost for Never-mitigate.
        assert!(result.total_for("Never-mitigate") > 0.0);
        assert!(result.render().contains("Figure 4"));
    }
}
