//! Figure 5: total cost per DRAM manufacturer — the whole system (MN/All), each
//! anonymised manufacturer evaluated separately (MN/A, MN/B, MN/C), and the sum of the
//! three separately-trained subsystems (MN/ABC).

use crate::evaluator::{Evaluator, POLICY_ORDER};
use crate::report::{format_table, node_hours};
use crate::scenario::ExperimentContext;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use uerl_trace::types::Manufacturer;

/// One bar of Figure 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Scenario label ("MN/All", "MN/A", "MN/B", "MN/C", "MN/ABC").
    pub scenario: String,
    /// Policy name.
    pub policy: String,
    /// UE cost in node-hours.
    pub ue_cost: f64,
    /// Mitigation cost in node-hours.
    pub mitigation_cost: f64,
}

impl Fig5Row {
    /// Total cost (bar height).
    pub fn total_cost(&self) -> f64 {
        self.ue_cost + self.mitigation_cost
    }
}

/// The Figure 5 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// All bars, grouped by scenario then policy.
    pub rows: Vec<Fig5Row>,
}

impl Fig5Result {
    /// The row for a scenario and policy.
    pub fn row(&self, scenario: &str, policy: &str) -> Option<&Fig5Row> {
        self.rows
            .iter()
            .find(|r| r.scenario == scenario && r.policy == policy)
    }

    /// Render the figure as a text table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.scenario.clone(),
                    r.policy.clone(),
                    node_hours(r.ue_cost),
                    node_hours(r.mitigation_cost),
                    node_hours(r.total_cost()),
                ]
            })
            .collect();
        format!(
            "Figure 5 — total cost per DRAM manufacturer\n{}",
            format_table(
                &[
                    "scenario",
                    "policy",
                    "UE cost (nh)",
                    "mitigation (nh)",
                    "total (nh)"
                ],
                &rows
            )
        )
    }
}

/// Run Figure 5: evaluate MN/All plus one scenario per manufacturer, and synthesise
/// MN/ABC as the sum of the three per-manufacturer scenarios.
pub fn run(ctx: &ExperimentContext) -> Fig5Result {
    let mut rows = Vec::new();
    let mut push_result = |scenario: &str, result: &crate::evaluator::EvaluationResult| {
        for &policy in POLICY_ORDER.iter() {
            let run = result.total_for(policy).expect("every policy is evaluated");
            rows.push(Fig5Row {
                scenario: scenario.to_string(),
                policy: policy.to_string(),
                ue_cost: run.ue_cost,
                mitigation_cost: run.mitigation_cost,
            });
        }
    };

    // The whole-fleet scenario and the per-manufacturer restrictions are independent
    // evaluations; fan them out in parallel, keeping the scenario order.
    let mut scenarios: Vec<ExperimentContext> = vec![ctx.clone()];
    scenarios[0].label = "MN/All".to_string();
    for manufacturer in Manufacturer::ALL {
        let sub_ctx = ctx.restricted_to_manufacturer(manufacturer);
        if !sub_ctx.timelines.is_empty() {
            scenarios.push(sub_ctx);
        }
    }
    let results: Vec<_> = scenarios
        .par_iter()
        .map(|scenario| Evaluator::new().evaluate(scenario))
        .collect();

    let mut abc_totals: Vec<(f64, f64)> = vec![(0.0, 0.0); POLICY_ORDER.len()];
    for (scenario, result) in scenarios.iter().zip(&results) {
        push_result(&scenario.label, result);
        if scenario.label != "MN/All" {
            for (i, &policy) in POLICY_ORDER.iter().enumerate() {
                if let Some(run) = result.total_for(policy) {
                    abc_totals[i].0 += run.ue_cost;
                    abc_totals[i].1 += run.mitigation_cost;
                }
            }
        }
    }
    for (i, &policy) in POLICY_ORDER.iter().enumerate() {
        rows.push(Fig5Row {
            scenario: "MN/ABC".to_string(),
            policy: policy.to_string(),
            ue_cost: abc_totals[i].0,
            mitigation_cost: abc_totals[i].1,
        });
    }

    Fig5Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EvalBudget;

    #[test]
    fn figure5_produces_all_scenarios_and_sums_abc() {
        let ctx = ExperimentContext::synthetic_small(36, 75, EvalBudget::tiny(), 57);
        let result = run(&ctx);
        for scenario in ["MN/All", "MN/ABC"] {
            assert!(
                result.row(scenario, "Never-mitigate").is_some(),
                "missing scenario {scenario}"
            );
        }
        // MN/ABC is the sum of the per-manufacturer rows.
        let abc = result.row("MN/ABC", "Never-mitigate").unwrap().total_cost();
        let parts: f64 = ["MN/A", "MN/B", "MN/C"]
            .iter()
            .filter_map(|s| result.row(s, "Never-mitigate"))
            .map(Fig5Row::total_cost)
            .sum();
        assert!((abc - parts).abs() < 1e-6);
        assert!(result.render().contains("Figure 5"));
    }
}
