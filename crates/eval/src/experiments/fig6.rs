//! Figure 6: RL agent behaviour — the fraction of events at which the agent triggers a
//! mitigation, as a function of the potential UE cost (x-axis, log scale) and the
//! likelihood of a UE (y-axis, proxied by the SC20-RF predicted probability, exactly as
//! in the paper, because the agent itself exposes no probability).

use super::common::{collect_states, holdout, train_models_on_prefix};
use crate::report::format_table;
use crate::scenario::ExperimentContext;
use serde::{Deserialize, Serialize};
use uerl_core::policy::MitigationPolicy;
use uerl_stats::LogHistogram;

/// The Figure 6 behaviour map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Geometric centres of the UE-cost bins (node-hours, log-spaced).
    pub cost_bin_centers: Vec<f64>,
    /// Centres of the RF-probability bins (linear, 0–1).
    pub prob_bin_centers: Vec<f64>,
    /// `mitigation_fraction[prob_bin][cost_bin]`: fraction of events in the bin for which
    /// the agent mitigates; `None` when the bin received no data.
    pub mitigation_fraction: Vec<Vec<Option<f64>>>,
    /// Number of states the map was built from.
    pub states_observed: usize,
}

impl Fig6Result {
    /// Mean mitigation fraction over a range of cost bins (ignoring empty bins).
    pub fn mean_fraction_for_cost_range(&self, min_cost: f64, max_cost: f64) -> Option<f64> {
        let mut total = 0.0;
        let mut count = 0usize;
        for row in &self.mitigation_fraction {
            for (j, cell) in row.iter().enumerate() {
                let center = self.cost_bin_centers[j];
                if center >= min_cost && center <= max_cost {
                    if let Some(f) = cell {
                        total += f;
                        count += 1;
                    }
                }
            }
        }
        (count > 0).then(|| total / count as f64)
    }

    /// Render the map as a text table (probability rows from high to low).
    pub fn render(&self) -> String {
        let mut headers: Vec<String> = vec!["P(UE) \\ cost".to_string()];
        headers.extend(self.cost_bin_centers.iter().map(|c| format!("{c:.0}")));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut rows = Vec::new();
        for (i, row) in self.mitigation_fraction.iter().enumerate().rev() {
            let mut cells = vec![format!("{:.2}", self.prob_bin_centers[i])];
            for cell in row {
                cells.push(match cell {
                    Some(f) => format!("{:.2}", f),
                    None => "  . ".to_string(),
                });
            }
            rows.push(cells);
        }
        format!(
            "Figure 6 — fraction of events mitigated by the RL agent ({} states)\n{}",
            self.states_observed,
            format_table(&header_refs, &rows)
        )
    }
}

/// Run Figure 6.
///
/// The forest and the agent are trained on the first 75% of the window; states are
/// collected from the held-out remainder. For every observed state, the y coordinate is
/// the RF probability of that state; the agent is then queried across the whole x-axis by
/// substituting each cost-bin centre into the state's potential-UE-cost feature, which is
/// how the map also shows the agent's generalisation to costs far beyond those observed
/// (the paper's 10^4–10^6 node-hour region).
pub fn run(ctx: &ExperimentContext, cost_bins: usize, prob_bins: usize) -> Fig6Result {
    assert!(cost_bins >= 2 && prob_bins >= 2, "need at least 2x2 bins");
    let models = train_models_on_prefix(ctx, 0.75);
    let holdout_tl = holdout(ctx, &models);
    let sampler = ctx.job_sampler(1.0);
    let states = collect_states(&holdout_tl, &sampler, ctx.mitigation, ctx.seed);
    let probe = models.rf_probe();

    // Log-spaced cost bins from 1 to 10^6 node-hours, as in the paper's x-axis.
    let cost_hist = LogHistogram::new(1.0, 1e6, cost_bins);
    let cost_bin_centers: Vec<f64> = (0..cost_bins).map(|i| cost_hist.bin_center(i)).collect();
    let prob_bin_centers: Vec<f64> = (0..prob_bins)
        .map(|i| (i as f64 + 0.5) / prob_bins as f64)
        .collect();

    let mut mitigate_counts = vec![vec![0u64; cost_bins]; prob_bins];
    let mut total_counts = vec![vec![0u64; cost_bins]; prob_bins];
    for state in &states {
        let probability = probe.probability(state);
        let prob_bin = ((probability * prob_bins as f64) as usize).min(prob_bins - 1);
        for (cost_bin, &center) in cost_bin_centers.iter().enumerate() {
            let mut probe_state = state.clone();
            probe_state.potential_ue_cost = center;
            let mitigate = models.rl.decide(&probe_state);
            total_counts[prob_bin][cost_bin] += 1;
            if mitigate {
                mitigate_counts[prob_bin][cost_bin] += 1;
            }
        }
    }

    let mitigation_fraction = mitigate_counts
        .iter()
        .zip(&total_counts)
        .map(|(m_row, t_row)| {
            m_row
                .iter()
                .zip(t_row)
                .map(|(&m, &t)| (t > 0).then(|| m as f64 / t as f64))
                .collect()
        })
        .collect();

    Fig6Result {
        cost_bin_centers,
        prob_bin_centers,
        mitigation_fraction,
        states_observed: states.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EvalBudget;

    #[test]
    fn figure6_builds_a_complete_map() {
        let ctx = ExperimentContext::synthetic_small(30, 75, EvalBudget::tiny(), 67);
        let result = run(&ctx, 6, 4);
        assert_eq!(result.cost_bin_centers.len(), 6);
        assert_eq!(result.prob_bin_centers.len(), 4);
        assert_eq!(result.mitigation_fraction.len(), 4);
        assert!(result.states_observed > 0);
        // Cost bins are log-spaced and increasing.
        assert!(result
            .cost_bin_centers
            .windows(2)
            .all(|w| w[1] > w[0] * 2.0));
        // Fractions are valid probabilities.
        for row in &result.mitigation_fraction {
            for cell in row.iter().flatten() {
                assert!((0.0..=1.0).contains(cell));
            }
        }
        assert!(result.render().contains("Figure 6"));
        let _ = result.mean_fraction_for_cost_range(1.0, 1e6);
    }
}
