//! Figure 7: job-size sensitivity analysis — total cost (7a) and mitigation cost (7b) as
//! a function of the job-size scaling factor (0.1× to 10×), each factor evaluated with a
//! separately trained model, at the 2 node-minute mitigation cost.

use crate::evaluator::{Evaluator, POLICY_ORDER};
use crate::report::{format_table, node_hours};
use crate::scenario::ExperimentContext;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One point of Figure 7 (one policy at one scaling factor).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Point {
    /// Job-size scaling factor.
    pub scaling: f64,
    /// Policy name.
    pub policy: String,
    /// UE cost in node-hours.
    pub ue_cost: f64,
    /// Mitigation cost in node-hours (the 7b series).
    pub mitigation_cost: f64,
}

impl Fig7Point {
    /// Total cost (the 7a series).
    pub fn total_cost(&self) -> f64 {
        self.ue_cost + self.mitigation_cost
    }
}

/// The Figure 7 result (both panels).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Scenario label.
    pub label: String,
    /// All points, grouped by scaling factor then policy.
    pub points: Vec<Fig7Point>,
}

impl Fig7Result {
    /// The point for a policy at a scaling factor.
    pub fn point(&self, policy: &str, scaling: f64) -> Option<&Fig7Point> {
        self.points
            .iter()
            .find(|p| p.policy == policy && (p.scaling - scaling).abs() < 1e-9)
    }

    /// The scaling factors evaluated, in order.
    pub fn scalings(&self) -> Vec<f64> {
        let mut s: Vec<f64> = self.points.iter().map(|p| p.scaling).collect();
        s.dedup();
        s
    }

    /// Render both panels as a text table.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .points
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.scaling),
                    p.policy.clone(),
                    node_hours(p.total_cost()),
                    node_hours(p.mitigation_cost),
                ]
            })
            .collect();
        format!(
            "Figure 7 — job-size sensitivity ({})\n{}",
            self.label,
            format_table(
                &[
                    "scaling",
                    "policy",
                    "total cost (nh) [7a]",
                    "mitigation cost (nh) [7b]"
                ],
                &rows
            )
        )
    }
}

/// Run Figure 7 over the given scaling factors (the paper uses 0.1, 0.3, 1, 3 and 10).
/// The scaling scenarios are independent, so they fan out in parallel; points keep the
/// input scaling order.
pub fn run(ctx: &ExperimentContext, scalings: &[f64]) -> Fig7Result {
    let per_scaling: Vec<_> = scalings
        .par_iter()
        .map(|&scaling| {
            (
                scaling,
                Evaluator::new().with_job_scaling(scaling).evaluate(ctx),
            )
        })
        .collect();
    let mut points = Vec::new();
    for (scaling, result) in &per_scaling {
        for &policy in POLICY_ORDER.iter() {
            let run = result.total_for(policy).expect("every policy is evaluated");
            points.push(Fig7Point {
                scaling: *scaling,
                policy: policy.to_string(),
                ue_cost: run.ue_cost,
                mitigation_cost: run.mitigation_cost,
            });
        }
    }
    Fig7Result {
        label: ctx.label.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EvalBudget;

    #[test]
    fn figure7_total_cost_scales_with_job_size() {
        let ctx = ExperimentContext::synthetic_small(28, 60, EvalBudget::tiny(), 79);
        let result = run(&ctx, &[0.3, 3.0]);
        assert_eq!(result.points.len(), 2 * POLICY_ORDER.len());
        let never_small = result.point("Never-mitigate", 0.3).unwrap().total_cost();
        let never_large = result.point("Never-mitigate", 3.0).unwrap().total_cost();
        assert!(
            never_large > 3.0 * never_small,
            "unmitigated cost must grow roughly with the scaling factor ({never_small} -> {never_large})"
        );
        // Static policies have scaling-independent mitigation cost; Never-mitigate's is 0.
        assert_eq!(
            result.point("Never-mitigate", 3.0).unwrap().mitigation_cost,
            0.0
        );
        let always_small = result
            .point("Always-mitigate", 0.3)
            .unwrap()
            .mitigation_cost;
        let always_large = result
            .point("Always-mitigate", 3.0)
            .unwrap()
            .mitigation_cost;
        assert!((always_small - always_large).abs() < 1e-6);
        assert!(result.render().contains("Figure 7"));
    }
}
