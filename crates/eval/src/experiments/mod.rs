//! One driver per paper artefact.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`fig3`] | Figure 3 — total cost for MN/All at 2 / 5 / 10 node-minute mitigation cost |
//! | [`fig4`] | Figure 4 — per-split time-series cross-validation at 2 node-minutes |
//! | [`fig5`] | Figure 5 — per-DRAM-manufacturer total cost (MN/All, MN/A, MN/B, MN/C, MN/ABC) |
//! | [`fig6`] | Figure 6 — RL agent behaviour vs potential UE cost × UE likelihood |
//! | [`table2`] | Table 2 — classical ML metrics for every approach |
//! | [`fig7`] | Figure 7a/7b — job-size scaling sensitivity (total and mitigation cost) |

pub mod common;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod table2;
