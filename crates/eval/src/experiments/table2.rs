//! Table 2: prediction results and classical machine-learning metrics for every
//! approach, plus the three cost-conditioned RL rows (UE cost < 100, 100–1000 and
//! ≥ 1000 node-hours).

use super::common::{collect_states, holdout, train_models_on_prefix};
use crate::evaluator::{Evaluator, POLICY_ORDER};
use crate::metrics::ClassificationMetrics;
use crate::report::{format_table, percent, percent_or_na};
use crate::run::{Decision, PolicyRun, UeEvent};
use crate::scenario::ExperimentContext;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use uerl_core::policy::MitigationPolicy;

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Approach name (policy name or the RL cost-range label).
    pub approach: String,
    /// Confusion-matrix counts and totals.
    pub metrics: ClassificationMetrics,
}

/// The Table 2 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Result {
    /// All rows, in the paper's order.
    pub rows: Vec<Table2Row>,
}

impl Table2Result {
    /// The row for an approach.
    pub fn row(&self, approach: &str) -> Option<&Table2Row> {
        self.rows.iter().find(|r| r.approach == approach)
    }

    /// Render the table as text.
    pub fn render(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                let m = &r.metrics;
                vec![
                    r.approach.clone(),
                    m.true_positives.to_string(),
                    m.false_negatives.to_string(),
                    m.false_positives.to_string(),
                    m.true_negatives.to_string(),
                    m.mitigations.to_string(),
                    percent(m.recall()),
                    percent_or_na(m.precision()),
                ]
            })
            .collect();
        format!(
            "Table 2 — classical machine-learning metrics\n{}",
            format_table(
                &[
                    "approach",
                    "TPs",
                    "FNs",
                    "FPs",
                    "TNs",
                    "mitigations",
                    "recall",
                    "precision"
                ],
                &rows
            )
        )
    }
}

/// The six primary approaches of Table 2 (the SC20-RF threshold variants are omitted in
/// the paper's table).
const TABLE2_POLICIES: [&str; 6] = [
    "Never-mitigate",
    "Always-mitigate",
    "SC20-RF",
    "Myopic-RF",
    "RL",
    "Oracle",
];

/// The three cost-conditioned RL rows: `(label, low, high)` in node-hours.
const COST_RANGES: [(&str, f64, f64); 3] = [
    ("RL (UE cost < 100 nh)", 0.0, 100.0),
    ("RL (100 <= UE cost < 1000 nh)", 100.0, 1000.0),
    ("RL (UE cost >= 1000 nh)", 1000.0, 32_000.0),
];

/// Run Table 2.
pub fn run(ctx: &ExperimentContext) -> Table2Result {
    // Rows 1–6: metrics from the full cross-validation evaluation.
    let evaluation = Evaluator::new().evaluate(ctx);
    let mut rows = Vec::new();
    for &policy in POLICY_ORDER.iter() {
        if !TABLE2_POLICIES.contains(&policy) {
            continue;
        }
        let totals = evaluation.totals_for(policy).expect("policy evaluated");
        let label = if policy == "RL" {
            "RL (MN4 job distribution)".to_string()
        } else {
            policy.to_string()
        };
        rows.push(Table2Row {
            approach: label,
            metrics: totals.metrics,
        });
    }

    // Rows 7–9: the RL agent queried with potential UE costs drawn uniformly from each
    // range, mirroring the paper's "uniformly randomly distributed ranges of UE costs".
    let models = train_models_on_prefix(ctx, 0.75);
    let holdout_tl = holdout(ctx, &models);
    let sampler = ctx.job_sampler(1.0);
    let states = collect_states(&holdout_tl, &sampler, ctx.mitigation, ctx.seed);
    let ue_events: Vec<UeEvent> = holdout_tl
        .timelines()
        .iter()
        .flat_map(|t| {
            t.events()
                .iter()
                .filter(|e| e.fatal)
                .map(|e| UeEvent {
                    node: t.node(),
                    time: e.time,
                    cost: 0.0,
                })
                .collect::<Vec<_>>()
        })
        .collect();

    for (label, low, high) in COST_RANGES {
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ low.to_bits());
        let mut decisions = Vec::with_capacity(states.len());
        for state in &states {
            let mut probe = state.clone();
            probe.potential_ue_cost = rng.gen_range(low..high.max(low + 1.0));
            decisions.push(Decision {
                node: state.node,
                time: state.time,
                mitigated: models.rl.decide(&probe),
            });
        }
        let mitigations = decisions.iter().filter(|d| d.mitigated).count() as u64;
        let run = PolicyRun {
            policy: label.to_string(),
            mitigations,
            non_mitigations: decisions.len() as u64 - mitigations,
            mitigation_cost: 0.0,
            ue_count: ue_events.len() as u64,
            ue_cost: 0.0,
            decisions,
            ue_events: ue_events.clone(),
        };
        rows.push(Table2Row {
            approach: label.to_string(),
            metrics: ClassificationMetrics::from_run_1day(&run),
        });
    }

    Table2Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::EvalBudget;

    #[test]
    fn table2_has_all_rows_with_consistent_counts() {
        let ctx = ExperimentContext::synthetic_small(30, 75, EvalBudget::tiny(), 71);
        let result = run(&ctx);
        assert_eq!(result.rows.len(), 6 + 3);
        let never = result.row("Never-mitigate").unwrap();
        assert_eq!(never.metrics.mitigations, 0);
        assert_eq!(never.metrics.recall(), 0.0);
        assert!(never.metrics.precision().is_none());
        let oracle = result.row("Oracle").unwrap();
        if let Some(p) = oracle.metrics.precision() {
            // The Oracle's mitigations all target real UEs; only UEs whose last preceding
            // event falls outside the 1-day classification window can degrade this.
            assert!(p > 0.3, "oracle precision {p}");
        }
        // All approaches saw the same number of UEs in the cross-validated rows.
        let ue_total = never.metrics.true_positives + never.metrics.false_negatives;
        for name in [
            "Always-mitigate",
            "SC20-RF",
            "Myopic-RF",
            "RL (MN4 job distribution)",
        ] {
            let m = &result.row(name).unwrap().metrics;
            assert_eq!(m.true_positives + m.false_negatives, ue_total, "{name}");
        }
        assert!(result.render().contains("Table 2"));
    }

    #[test]
    fn cost_conditioned_rows_are_internally_consistent() {
        let ctx = ExperimentContext::synthetic_small(30, 75, EvalBudget::tiny(), 73);
        let result = run(&ctx);
        // With a realistic training budget the mitigation count grows with the UE-cost
        // range (the paper's 17% -> 93% progression); at the tiny test budget the agent
        // is deliberately under-trained, so here we only check structural consistency of
        // the three cost-conditioned rows.
        for (label, _, _) in COST_RANGES {
            let m = &result.row(label).unwrap().metrics;
            assert_eq!(
                m.true_positives + m.false_positives,
                m.mitigations,
                "{label}: TP+FP must equal the mitigation count"
            );
            assert!(m.mitigations <= m.mitigations + m.non_mitigations);
        }
    }
}
