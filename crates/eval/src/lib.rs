//! # uerl-eval
//!
//! Evaluation harness reproducing the paper's methodology (Section 4) and every figure
//! and table of its results section (Section 5).
//!
//! * [`splits`] — time-series nested cross-validation (Figure 2): six parts, six splits,
//!   75%/25% train/validation before each test part.
//! * [`run`] — cost-benefit rollouts: replay a policy over every node timeline of a test
//!   range, with identical job sequences across policies, and account UE cost, mitigation
//!   cost and every decision.
//! * [`metrics`] — the classical machine-learning metrics of Section 4.4 (TP/FN/FP/TN,
//!   recall, precision, 1-day prediction window).
//! * [`scenario`] — experiment context assembly: synthetic MareNostrum-scale or
//!   test-scale logs, evaluation budgets, manufacturer partitioning, job-size scaling.
//! * [`evaluator`] — the full protocol: per split, train the RF baseline and the RL agent
//!   on the training data, pick thresholds/hyperparameters, evaluate all eight policies
//!   on the test data, and accumulate.
//! * [`experiments`] — one driver per paper artefact: Figure 3, Figure 4, Figure 5,
//!   Figure 6, Table 2 and Figure 7a/7b.
//! * [`report`] — plain-text rendering of experiment results (the tables printed by the
//!   `uerl-bench` binaries and recorded in EXPERIMENTS.md).

pub mod evaluator;
pub mod experiments;
pub mod metrics;
pub mod report;
pub mod run;
pub mod scenario;
pub mod splits;

pub use evaluator::{EvaluationResult, Evaluator, PolicyTotals, SplitOutcome};
pub use metrics::ClassificationMetrics;
pub use run::{run_policy, PolicyRun};
pub use scenario::{EvalBudget, ExperimentContext};
pub use splits::{nested_splits, SplitSpec};
