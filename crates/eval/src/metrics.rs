//! Classical machine-learning metrics (Section 4.4).
//!
//! A UE counts as mitigated (true positive) if at least one mitigation action *completed*
//! within the preceding 24 hours, i.e. was initiated at least the mitigation overhead
//! before the UE and at most one day before it. UEs with no event in the preceding day
//! cannot be mitigated by any event-triggered policy; they are counted as implicit
//! "no-mitigate" false negatives so that the hardest UEs are not silently dropped.

use crate::run::PolicyRun;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use uerl_trace::types::{NodeId, SimTime};

/// Confusion-matrix counts and the derived recall / precision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassificationMetrics {
    /// UEs with a qualifying mitigation in the prediction window.
    pub true_positives: u64,
    /// UEs without one.
    pub false_negatives: u64,
    /// Mitigations that did not correspond to a UE (redundant or spurious).
    pub false_positives: u64,
    /// Non-mitigations that were not false negatives.
    pub true_negatives: u64,
    /// Total mitigation actions.
    pub mitigations: u64,
    /// Total non-mitigation decisions (including the implicit ones for unpredictable UEs).
    pub non_mitigations: u64,
}

impl ClassificationMetrics {
    /// Recall: fraction of UEs that were mitigated.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Precision: fraction of mitigations that mitigated a UE. `None` when no mitigation
    /// was performed (undefined, as for Never-mitigate in Table 2).
    pub fn precision(&self) -> Option<f64> {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            None
        } else {
            Some(self.true_positives as f64 / denom as f64)
        }
    }

    /// Compute the metrics of a policy run.
    ///
    /// `prediction_window` is the look-back window in seconds (one day in the paper) and
    /// `mitigation_overhead` the time a mitigation needs to complete (the mitigation cost
    /// in wallclock seconds; 2 minutes in the default configuration).
    pub fn from_run(run: &PolicyRun, prediction_window: i64, mitigation_overhead: i64) -> Self {
        // Index mitigation times and all decision times per node.
        let mut mitigation_times: HashMap<NodeId, Vec<SimTime>> = HashMap::new();
        let mut event_times: HashMap<NodeId, Vec<SimTime>> = HashMap::new();
        for d in &run.decisions {
            event_times.entry(d.node).or_default().push(d.time);
            if d.mitigated {
                mitigation_times.entry(d.node).or_default().push(d.time);
            }
        }

        let mut true_positives = 0u64;
        let mut false_negatives = 0u64;
        let mut implicit_non_mitigations = 0u64;
        for ue in &run.ue_events {
            let mitigated = mitigation_times
                .get(&ue.node)
                .map(|times| {
                    times.iter().any(|&m| {
                        m < ue.time
                            && ue.time.delta_secs(m) <= prediction_window
                            && ue.time.delta_secs(m) >= mitigation_overhead
                    })
                })
                .unwrap_or(false);
            if mitigated {
                true_positives += 1;
            } else {
                false_negatives += 1;
            }
            // A UE with no event at all in the preceding day is unmitigable; the policy
            // makes an implicit "no-mitigate" decision for it.
            let any_event = event_times
                .get(&ue.node)
                .map(|times| {
                    times
                        .iter()
                        .any(|&t| t < ue.time && ue.time.delta_secs(t) <= prediction_window)
                })
                .unwrap_or(false);
            if !any_event {
                implicit_non_mitigations += 1;
            }
        }

        let mitigations = run.mitigations;
        let non_mitigations = run.non_mitigations + implicit_non_mitigations;
        let false_positives = mitigations.saturating_sub(true_positives);
        let true_negatives = non_mitigations.saturating_sub(false_negatives);
        Self {
            true_positives,
            false_negatives,
            false_positives,
            true_negatives,
            mitigations,
            non_mitigations,
        }
    }

    /// [`ClassificationMetrics::from_run`] with the paper's defaults: a 1-day window and
    /// a 2-minute mitigation overhead.
    pub fn from_run_1day(run: &PolicyRun) -> Self {
        Self::from_run(run, SimTime::DAY, 2 * SimTime::MINUTE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{Decision, UeEvent};

    fn decision(node: u32, minute: i64, mitigated: bool) -> Decision {
        Decision {
            node: NodeId(node),
            time: SimTime::from_minutes(minute),
            mitigated,
        }
    }

    fn ue(node: u32, minute: i64) -> UeEvent {
        UeEvent {
            node: NodeId(node),
            time: SimTime::from_minutes(minute),
            cost: 100.0,
        }
    }

    fn run(decisions: Vec<Decision>, ues: Vec<UeEvent>) -> PolicyRun {
        let mitigations = decisions.iter().filter(|d| d.mitigated).count() as u64;
        let non_mitigations = decisions.len() as u64 - mitigations;
        PolicyRun {
            policy: "test".into(),
            mitigations,
            non_mitigations,
            mitigation_cost: 0.0,
            ue_count: ues.len() as u64,
            ue_cost: 0.0,
            decisions,
            ue_events: ues,
        }
    }

    #[test]
    fn mitigation_within_window_is_a_true_positive() {
        // Mitigation 3 hours before the UE on the same node.
        let r = run(vec![decision(1, 60, true)], vec![ue(1, 240)]);
        let m = ClassificationMetrics::from_run_1day(&r);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.false_negatives, 0);
        assert_eq!(m.false_positives, 0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.precision(), Some(1.0));
    }

    #[test]
    fn mitigation_on_another_node_does_not_count() {
        let r = run(vec![decision(2, 60, true)], vec![ue(1, 240)]);
        let m = ClassificationMetrics::from_run_1day(&r);
        assert_eq!(m.true_positives, 0);
        assert_eq!(m.false_negatives, 1);
        assert_eq!(m.false_positives, 1);
    }

    #[test]
    fn stale_mitigation_outside_the_window_is_a_false_positive() {
        // Mitigation 30 hours before the UE: outside the 24-hour window.
        let r = run(vec![decision(1, 0, true)], vec![ue(1, 30 * 60)]);
        let m = ClassificationMetrics::from_run_1day(&r);
        assert_eq!(m.true_positives, 0);
        assert_eq!(m.false_negatives, 1);
        assert_eq!(m.false_positives, 1);
    }

    #[test]
    fn mitigation_that_cannot_complete_in_time_does_not_count() {
        // Mitigation one minute before the UE: the 2-minute action has not completed.
        let r = run(vec![decision(1, 239, true)], vec![ue(1, 240)]);
        let m = ClassificationMetrics::from_run_1day(&r);
        assert_eq!(m.true_positives, 0);
        assert_eq!(m.false_negatives, 1);
    }

    #[test]
    fn unpredictable_ue_is_an_implicit_non_mitigation_false_negative() {
        // A UE with no decision/event anywhere near it.
        let r = run(vec![decision(1, 10, false)], vec![ue(2, 5000)]);
        let m = ClassificationMetrics::from_run_1day(&r);
        assert_eq!(m.false_negatives, 1);
        // One explicit non-mitigation plus one implicit one.
        assert_eq!(m.non_mitigations, 2);
        assert_eq!(m.true_negatives, 1);
    }

    #[test]
    fn redundant_mitigations_count_once_as_tp_rest_as_fp() {
        // Three mitigations before the same UE: one TP, two FP.
        let r = run(
            vec![
                decision(1, 100, true),
                decision(1, 150, true),
                decision(1, 200, true),
            ],
            vec![ue(1, 300)],
        );
        let m = ClassificationMetrics::from_run_1day(&r);
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.false_positives, 2);
        assert_eq!(m.mitigations, 3);
        assert!((m.precision().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn never_mitigate_has_undefined_precision_and_zero_recall() {
        let r = run(vec![decision(1, 10, false)], vec![ue(1, 240)]);
        let m = ClassificationMetrics::from_run_1day(&r);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.precision(), None);
        assert_eq!(m.mitigations, 0);
    }

    #[test]
    fn empty_run_is_all_zero() {
        let r = run(vec![], vec![]);
        let m = ClassificationMetrics::from_run_1day(&r);
        assert_eq!(m.true_positives + m.false_negatives + m.false_positives, 0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.precision(), None);
    }
}
