//! Plain-text rendering of experiment results.

/// Render a simple fixed-width text table.
///
/// # Panics
/// Panics if any row has a different number of cells than the header.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width must match the header");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:>w$} |", w = w));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(row, &widths));
    }
    out
}

/// Format a node-hours quantity with a sensible precision.
pub fn node_hours(value: f64) -> String {
    if value.abs() >= 1000.0 {
        format!("{value:.0}")
    } else if value.abs() >= 10.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.3}")
    }
}

/// Format a ratio as a percentage.
pub fn percent(value: f64) -> String {
    format!("{:.1}%", value * 100.0)
}

/// Format an optional ratio (e.g. precision, which is undefined for Never-mitigate).
pub fn percent_or_na(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{:.2}%", v * 100.0),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            &["policy", "cost"],
            &[
                vec!["Never".into(), "74035".into()],
                vec!["RL".into(), "33843".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("policy"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[2].contains("Never"));
        // All lines have equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn number_formatting() {
        assert_eq!(node_hours(74035.4), "74035");
        assert_eq!(node_hours(33.333), "33.3");
        assert_eq!(node_hours(0.0333), "0.033");
        assert_eq!(percent(0.54321), "54.3%");
        assert_eq!(percent_or_na(None), "n/a");
        assert_eq!(percent_or_na(Some(0.0002)), "0.02%");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_rejected() {
        format_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
