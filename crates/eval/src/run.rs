//! Cost-benefit rollouts: replay one policy over every node timeline of a range.
//!
//! Fairness requirement: every policy must see exactly the same workload. The job
//! sequence assigned to a node is therefore derived from a seed that depends only on the
//! evaluation seed and the node id, never on the policy.
//!
//! That same contract is what makes the rollouts embarrassingly parallel: each node's
//! job sequence and RNG are fully determined by `(seed, node_id)`, so [`run_policy`]
//! fans the timelines out over rayon and merges the per-node results in timeline order —
//! the outcome is bit-identical at any thread count.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use uerl_core::env::MitigationEnv;
use uerl_core::event_stream::TimelineSet;
use uerl_core::policy::MitigationPolicy;
use uerl_core::MitigationConfig;
use uerl_jobs::schedule::{node_workload_seed, NodeJobSampler};
use uerl_trace::types::{NodeId, SimTime};

/// One recorded mitigation / no-mitigation decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decision {
    /// Node the decision was made on.
    pub node: NodeId,
    /// Timestamp of the event that triggered the decision.
    pub time: SimTime,
    /// Whether a mitigation was requested.
    pub mitigated: bool,
}

/// One recorded fatal event and its cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UeEvent {
    /// Node the fatal event occurred on.
    pub node: NodeId,
    /// Timestamp of the fatal event.
    pub time: SimTime,
    /// Node-hours lost.
    pub cost: f64,
}

/// The outcome of evaluating one policy over one timeline set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRun {
    /// Policy name.
    pub policy: String,
    /// Number of mitigation actions taken.
    pub mitigations: u64,
    /// Number of "do nothing" decisions taken.
    pub non_mitigations: u64,
    /// Node-hours spent on mitigation actions plus model training/validation.
    pub mitigation_cost: f64,
    /// Number of fatal events in the evaluated range.
    pub ue_count: u64,
    /// Node-hours lost to fatal events.
    pub ue_cost: f64,
    /// Every decision, for the classical ML metrics.
    pub decisions: Vec<Decision>,
    /// Every fatal event, for the classical ML metrics.
    pub ue_events: Vec<UeEvent>,
}

impl PolicyRun {
    /// Total cost: UE cost plus mitigation cost (including training cost).
    pub fn total_cost(&self) -> f64 {
        self.ue_cost + self.mitigation_cost
    }

    /// Merge another run into this one (used to accumulate across splits).
    ///
    /// # Panics
    /// Panics if the runs belong to different policies.
    pub fn merge(&mut self, other: &PolicyRun) {
        assert_eq!(
            self.policy, other.policy,
            "cannot merge runs of different policies"
        );
        self.mitigations += other.mitigations;
        self.non_mitigations += other.non_mitigations;
        self.mitigation_cost += other.mitigation_cost;
        self.ue_count += other.ue_count;
        self.ue_cost += other.ue_cost;
        self.decisions.extend_from_slice(&other.decisions);
        self.ue_events.extend_from_slice(&other.ue_events);
    }

    /// An empty run for a policy (identity element of [`PolicyRun::merge`]).
    pub fn empty(policy: impl Into<String>) -> Self {
        Self {
            policy: policy.into(),
            mitigations: 0,
            non_mitigations: 0,
            mitigation_cost: 0.0,
            ue_count: 0,
            ue_cost: 0.0,
            decisions: Vec::new(),
            ue_events: Vec::new(),
        }
    }
}

/// Evaluate a policy over every timeline in `timelines`, fanning the per-node rollouts
/// out over rayon. Results are merged in timeline order, so the run is bit-identical at
/// any thread count.
///
/// The policy's `training_cost_node_hours` is added to the mitigation cost once, as in
/// the paper's accounting ("the total cost of the mitigation actions plus ... the cost of
/// all training and validation used to create the model").
pub fn run_policy<P: MitigationPolicy + Sync + ?Sized>(
    policy: &P,
    timelines: &TimelineSet,
    jobs: &NodeJobSampler,
    config: MitigationConfig,
    seed: u64,
) -> PolicyRun {
    let mut run = PolicyRun::empty(policy.name().to_string());
    run.mitigation_cost += policy.training_cost_node_hours();

    let partials: Vec<PolicyRun> = timelines
        .timelines()
        .par_iter()
        .map(|timeline| {
            let mut partial = PolicyRun::empty(run.policy.clone());
            let mut rng = StdRng::seed_from_u64(node_workload_seed(seed, timeline.node()));
            let sequence =
                jobs.sample_sequence(timeline.window_start(), timeline.window_end(), &mut rng);
            let mut env = MitigationEnv::new(timeline.clone(), sequence, config, false);
            let mut state = env.reset();
            while let Some(s) = state {
                let mitigate = policy.decide(&s);
                let outcome = env.step(mitigate);
                state = outcome.next_state;
            }
            partial.mitigations = env.mitigation_count();
            partial.non_mitigations = env.non_mitigation_count();
            partial.mitigation_cost = env.total_mitigation_cost();
            partial.ue_count = env.ue_count();
            partial.ue_cost = env.total_ue_cost();
            partial
                .decisions
                .extend(env.decisions().iter().map(|&(time, mitigated)| Decision {
                    node: timeline.node(),
                    time,
                    mitigated,
                }));
            partial
                .ue_events
                .extend(env.ue_records().iter().map(|r| UeEvent {
                    node: timeline.node(),
                    time: r.time,
                    cost: r.cost,
                }));
            partial
        })
        .collect();

    for partial in &partials {
        run.merge(partial);
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use uerl_core::event_stream::TimelineSet;
    use uerl_core::policies::{AlwaysMitigate, NeverMitigate, OraclePolicy};
    use uerl_jobs::{JobLogConfig, JobTraceGenerator};
    use uerl_trace::generator::{SyntheticLogConfig, TraceGenerator};
    use uerl_trace::reduction::preprocess;

    fn inputs(seed: u64) -> (TimelineSet, NodeJobSampler) {
        let log = TraceGenerator::new(SyntheticLogConfig::small(40, 90, seed)).generate();
        let timelines = TimelineSet::from_log(&preprocess(&log));
        let jobs = JobTraceGenerator::new(JobLogConfig::small(64, 30, seed)).generate();
        (timelines, NodeJobSampler::from_log(&jobs))
    }

    #[test]
    fn never_mitigate_has_zero_mitigation_cost_and_full_ue_cost() {
        let (timelines, jobs) = inputs(21);
        let run = run_policy(
            &NeverMitigate,
            &timelines,
            &jobs,
            MitigationConfig::paper_default(),
            7,
        );
        assert_eq!(run.mitigations, 0);
        assert_eq!(run.mitigation_cost, 0.0);
        assert!(run.ue_count > 0);
        assert!(run.ue_cost > 0.0);
        assert_eq!(run.total_cost(), run.ue_cost);
        assert_eq!(run.ue_events.len() as u64, run.ue_count);
    }

    #[test]
    fn always_mitigate_reduces_ue_cost_but_pays_for_every_event() {
        let (timelines, jobs) = inputs(22);
        let config = MitigationConfig::paper_default();
        let never = run_policy(&NeverMitigate, &timelines, &jobs, config, 7);
        let always = run_policy(&AlwaysMitigate, &timelines, &jobs, config, 7);
        assert!(
            always.ue_cost < never.ue_cost,
            "mitigating must reduce the UE cost"
        );
        assert_eq!(
            always.ue_count, never.ue_count,
            "the UEs themselves still happen"
        );
        assert_eq!(
            always.mitigations,
            always.decisions.len() as u64,
            "every decision is a mitigation"
        );
        let expected_cost = always.mitigations as f64 * config.mitigation_cost_node_hours();
        assert!((always.mitigation_cost - expected_cost).abs() < 1e-6);
    }

    #[test]
    fn same_seed_gives_identical_workloads_across_policies() {
        let (timelines, jobs) = inputs(23);
        let config = MitigationConfig::paper_default();
        let a = run_policy(&NeverMitigate, &timelines, &jobs, config, 99);
        let b = run_policy(&NeverMitigate, &timelines, &jobs, config, 99);
        assert_eq!(a, b);
        // The UE events (and their costs) must be identical for any non-mitigating pair
        // of runs with the same seed, because the workload is policy-independent.
        let c = run_policy(&NeverMitigate, &timelines, &jobs, config, 100);
        assert_ne!(
            a.ue_cost, c.ue_cost,
            "a different seed draws different jobs"
        );
    }

    #[test]
    fn oracle_beats_always_mitigate_on_total_cost() {
        let (timelines, jobs) = inputs(24);
        let config = MitigationConfig::paper_default();
        let oracle = OraclePolicy::from_timelines(&timelines);
        let oracle_run = run_policy(&oracle, &timelines, &jobs, config, 7);
        let always = run_policy(&AlwaysMitigate, &timelines, &jobs, config, 7);
        let never = run_policy(&NeverMitigate, &timelines, &jobs, config, 7);
        assert!(oracle_run.total_cost() <= always.total_cost());
        assert!(oracle_run.total_cost() <= never.total_cost());
        assert!(oracle_run.mitigations <= always.mitigations);
    }

    #[test]
    fn training_cost_is_charged_once() {
        struct Costly;
        impl MitigationPolicy for Costly {
            fn name(&self) -> &str {
                "costly"
            }
            fn decide(&self, _: &uerl_core::StateFeatures) -> bool {
                false
            }
            fn training_cost_node_hours(&self) -> f64 {
                5.0
            }
        }
        let (timelines, jobs) = inputs(25);
        let run = run_policy(
            &Costly,
            &timelines,
            &jobs,
            MitigationConfig::paper_default(),
            7,
        );
        assert!((run.mitigation_cost - 5.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_counts_and_costs() {
        let mut a = PolicyRun::empty("p");
        a.mitigations = 2;
        a.ue_cost = 10.0;
        let mut b = PolicyRun::empty("p");
        b.mitigations = 3;
        b.ue_cost = 5.0;
        b.mitigation_cost = 1.0;
        a.merge(&b);
        assert_eq!(a.mitigations, 5);
        assert!((a.ue_cost - 15.0).abs() < 1e-12);
        assert!((a.total_cost() - 16.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different policies")]
    fn merging_different_policies_rejected() {
        let mut a = PolicyRun::empty("a");
        a.merge(&PolicyRun::empty("b"));
    }
}
