//! Experiment context assembly: logs, budgets and scenario variants.

use serde::{Deserialize, Serialize};
use uerl_core::event_stream::TimelineSet;
use uerl_core::MitigationConfig;
use uerl_jobs::schedule::NodeJobSampler;
use uerl_jobs::{JobLog, JobLogConfig, JobTraceGenerator};
use uerl_trace::generator::{SyntheticLogConfig, TraceGenerator};
use uerl_trace::log::ErrorLog;
use uerl_trace::reduction::preprocess;
use uerl_trace::types::Manufacturer;

/// How much compute an evaluation is allowed to spend.
///
/// The protocol (nested cross-validation, random hyperparameter search, 20,000-episode
/// agents) is identical at every budget; only the counts change. The paper-scale budget
/// reproduces the published setup; the laptop and test budgets shrink it so the full
/// pipeline runs in minutes or seconds respectively (documented per experiment in
/// EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalBudget {
    /// RL training episodes per agent.
    pub rl_episodes: usize,
    /// Hyperparameter configurations in the broad random-search round.
    pub hyper_initial: usize,
    /// Hyperparameter configurations in the narrowed second round.
    pub hyper_refined: usize,
    /// Trees in the random-forest baseline.
    pub rf_trees: usize,
    /// Number of parts (and splits) of the time-series nested cross-validation.
    pub cv_parts: usize,
    /// Candidate thresholds scanned when giving SC20-RF its optimal threshold.
    pub threshold_grid: usize,
    /// Run the hyperparameter search with the successive-halving rung schedule
    /// (`HyperSearch::run_halving`) instead of training every candidate to the full
    /// budget. Same pre-drawn candidates, bit-identical at any thread count, strictly
    /// fewer training steps. Overridable per process with `UERL_HYPER_SEARCH=halving` /
    /// `=exhaustive`.
    pub hyper_halving: bool,
}

impl EvalBudget {
    /// The paper's budget.
    pub fn paper() -> Self {
        Self {
            rl_episodes: 20_000,
            hyper_initial: 60,
            hyper_refined: 20,
            rf_trees: 100,
            cv_parts: 6,
            threshold_grid: 41,
            hyper_halving: true,
        }
    }

    /// A budget that completes the full pipeline on a laptop in minutes.
    pub fn laptop() -> Self {
        Self {
            rl_episodes: 400,
            hyper_initial: 3,
            hyper_refined: 1,
            rf_trees: 40,
            cv_parts: 6,
            threshold_grid: 21,
            hyper_halving: true,
        }
    }

    /// A tiny budget for unit and integration tests (seconds).
    pub fn tiny() -> Self {
        Self {
            rl_episodes: 20,
            hyper_initial: 1,
            hyper_refined: 0,
            rf_trees: 8,
            cv_parts: 3,
            threshold_grid: 6,
            hyper_halving: true,
        }
    }

    /// A copy with the halving/exhaustive search strategy overridden.
    pub fn with_halving(mut self, halving: bool) -> Self {
        self.hyper_halving = halving;
        self
    }
}

/// Everything an experiment needs: the preprocessed error log, the job log, the
/// mitigation configuration, the budget and the master seed.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The preprocessed (retirement-filtered, burst-reduced) error log.
    pub error_log: ErrorLog,
    /// Per-node timelines of the preprocessed log.
    pub timelines: TimelineSet,
    /// The job accounting log.
    pub job_log: JobLog,
    /// Mitigation cost and restartability.
    pub mitigation: MitigationConfig,
    /// Compute budget.
    pub budget: EvalBudget,
    /// Master seed (log generation, job sequences, training).
    pub seed: u64,
    /// Scenario label ("MN/All", "MN/A", ...).
    pub label: String,
}

impl ExperimentContext {
    /// Build a context from explicit logs.
    pub fn from_logs(
        error_log: ErrorLog,
        job_log: JobLog,
        mitigation: MitigationConfig,
        budget: EvalBudget,
        seed: u64,
        label: impl Into<String>,
    ) -> Self {
        let preprocessed = preprocess(&error_log);
        let timelines = TimelineSet::from_log(&preprocessed);
        Self {
            error_log: preprocessed,
            timelines,
            job_log,
            mitigation,
            budget,
            seed,
            label: label.into(),
        }
    }

    /// A small synthetic context for tests and examples: a dense-fault fleet over a few
    /// months, so every cross-validation part contains errors.
    pub fn synthetic_small(nodes: u32, days: i64, budget: EvalBudget, seed: u64) -> Self {
        let error_log =
            TraceGenerator::new(SyntheticLogConfig::small(nodes, days, seed)).generate();
        let job_log =
            JobTraceGenerator::new(JobLogConfig::small(nodes.max(16), days.min(60), seed))
                .generate();
        Self::from_logs(
            error_log,
            job_log,
            MitigationConfig::paper_default(),
            budget,
            seed,
            "Synthetic/Small",
        )
    }

    /// The full MareNostrum-scale context: the 3056-node, two-year reconstructed error
    /// log and the 3456-node, one-year job log.
    pub fn marenostrum(budget: EvalBudget, seed: u64) -> Self {
        let error_log = TraceGenerator::new(SyntheticLogConfig::marenostrum3(seed)).generate();
        let job_log = JobTraceGenerator::new(JobLogConfig::marenostrum4(seed)).generate();
        Self::from_logs(
            error_log,
            job_log,
            MitigationConfig::paper_default(),
            budget,
            seed,
            "MN/All",
        )
    }

    /// A copy with a different mitigation cost (Figure 3's 2 / 5 / 10 node-minutes).
    pub fn with_mitigation_cost_minutes(&self, minutes: f64) -> Self {
        let mut ctx = self.clone();
        ctx.mitigation = ctx.mitigation.with_cost_minutes(minutes);
        ctx
    }

    /// A copy restricted to the nodes of one DRAM manufacturer (Figure 5's MN/A, MN/B,
    /// MN/C scenarios). The job log is unchanged: the workload is manufacturer-agnostic.
    pub fn restricted_to_manufacturer(&self, manufacturer: Manufacturer) -> Self {
        let error_log = self.error_log.restrict_to_manufacturer(manufacturer);
        let timelines = TimelineSet::from_log(&error_log);
        Self {
            error_log,
            timelines,
            job_log: self.job_log.clone(),
            mitigation: self.mitigation,
            budget: self.budget,
            seed: self.seed,
            label: format!("MN/{manufacturer}"),
        }
    }

    /// The job sampler for this context, optionally with a job-size scaling factor
    /// (Figure 7).
    pub fn job_sampler(&self, size_scaling: f64) -> NodeJobSampler {
        NodeJobSampler::from_log(&self.job_log).with_size_scaling(size_scaling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExperimentContext {
        ExperimentContext::synthetic_small(40, 90, EvalBudget::tiny(), 31)
    }

    #[test]
    fn budgets_scale_down_monotonically() {
        let paper = EvalBudget::paper();
        let laptop = EvalBudget::laptop();
        let tiny = EvalBudget::tiny();
        assert!(paper.rl_episodes > laptop.rl_episodes);
        assert!(laptop.rl_episodes > tiny.rl_episodes);
        assert_eq!(paper.cv_parts, 6);
        assert_eq!(paper.hyper_initial, 60);
    }

    #[test]
    fn synthetic_context_is_preprocessed_and_labelled() {
        let ctx = ctx();
        assert_eq!(ctx.label, "Synthetic/Small");
        assert!(!ctx.timelines.is_empty());
        assert!(
            ctx.timelines.total_fatal() > 0,
            "the test fleet must produce UEs"
        );
        // Burst reduction ran: no node has two fatal events within a week.
        for t in ctx.timelines.timelines() {
            let fatal: Vec<_> = t.events().iter().filter(|e| e.fatal).collect();
            for pair in fatal.windows(2) {
                assert!(pair[1].time.delta_secs(pair[0].time) > uerl_trace::types::SimTime::WEEK);
            }
        }
    }

    #[test]
    fn mitigation_cost_override() {
        let base = ctx();
        let expensive = base.with_mitigation_cost_minutes(10.0);
        assert_eq!(expensive.mitigation.mitigation_cost_node_minutes, 10.0);
        assert_eq!(base.mitigation.mitigation_cost_node_minutes, 2.0);
    }

    #[test]
    fn manufacturer_restriction_partitions_the_fleet() {
        let base = ctx();
        let total_nodes: usize = Manufacturer::ALL
            .iter()
            .map(|&m| {
                base.restricted_to_manufacturer(m)
                    .error_log
                    .fleet()
                    .node_count()
            })
            .sum();
        assert_eq!(total_nodes, base.error_log.fleet().node_count());
        let a = base.restricted_to_manufacturer(Manufacturer::A);
        assert_eq!(a.label, "MN/A");
        assert!(a.timelines.len() <= base.timelines.len());
    }

    #[test]
    fn job_sampler_respects_scaling() {
        let ctx = ctx();
        assert_eq!(ctx.job_sampler(1.0).size_scaling(), 1.0);
        assert_eq!(ctx.job_sampler(10.0).size_scaling(), 10.0);
    }
}
