//! Time-series nested cross-validation (Figure 2 of the paper).
//!
//! The observation window is divided into `parts` equal parts (six in the paper, each
//! roughly four months). Each part `k` yields one *split* whose test range is part `k`;
//! the data strictly before part `k` is divided 75% / 25% into training and validation
//! (used for hyperparameter selection). The first split has no preceding part, so it
//! trains and validates on the first two weeks of part 1 and tests on the remainder.

use serde::{Deserialize, Serialize};
use uerl_trace::types::SimTime;

/// One cross-validation split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitSpec {
    /// 1-based split index.
    pub index: usize,
    /// Training range `[start, end)`.
    pub train: (SimTime, SimTime),
    /// Validation range `[start, end)`.
    pub validate: (SimTime, SimTime),
    /// Test range `[start, end)`.
    pub test: (SimTime, SimTime),
}

impl SplitSpec {
    /// Length of the test range in days.
    pub fn test_days(&self) -> f64 {
        (self.test.1 - self.test.0) as f64 / SimTime::DAY as f64
    }
}

/// Build the nested cross-validation splits for a window divided into `parts` parts.
///
/// # Panics
/// Panics if the window is empty or `parts < 2`.
pub fn nested_splits(window_start: SimTime, window_end: SimTime, parts: usize) -> Vec<SplitSpec> {
    assert!(window_end > window_start, "window must be non-empty");
    assert!(parts >= 2, "need at least two parts");
    let total = window_end - window_start;
    let part_len = total / parts as i64;
    let part_bound = |i: usize| -> SimTime {
        if i == parts {
            window_end
        } else {
            window_start.plus_secs(part_len * i as i64)
        }
    };

    let mut splits = Vec::with_capacity(parts);
    for k in 1..=parts {
        let test_start = part_bound(k - 1);
        let test_end = part_bound(k);
        let (train, validate, test) = if k == 1 {
            // First split: first two weeks of part 1 are used for training and
            // validation (75/25), the rest of the part is tested.
            let two_weeks = (2 * SimTime::WEEK).min(part_len / 2);
            let tv_end = window_start.plus_secs(two_weeks);
            let train_end = window_start.plus_secs(two_weeks * 3 / 4);
            (
                (window_start, train_end),
                (train_end, tv_end),
                (tv_end, test_end),
            )
        } else {
            let available = test_start - window_start;
            let train_end = window_start.plus_secs(available * 3 / 4);
            (
                (window_start, train_end),
                (train_end, test_start),
                (test_start, test_end),
            )
        };
        splits.push(SplitSpec {
            index: k,
            train,
            validate,
            test,
        });
    }
    splits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_year_splits() -> Vec<SplitSpec> {
        nested_splits(SimTime::ZERO, SimTime::from_days(730), 6)
    }

    #[test]
    fn produces_one_split_per_part() {
        let splits = two_year_splits();
        assert_eq!(splits.len(), 6);
        for (i, s) in splits.iter().enumerate() {
            assert_eq!(s.index, i + 1);
        }
    }

    #[test]
    fn test_ranges_tile_the_window() {
        let splits = two_year_splits();
        assert_eq!(splits[0].test.1, splits[1].test.0);
        assert_eq!(splits.last().unwrap().test.1, SimTime::from_days(730));
        // Each test part is roughly four months.
        for s in &splits[1..] {
            assert!(
                (s.test_days() - 121.0).abs() < 2.0,
                "part length {}",
                s.test_days()
            );
        }
    }

    #[test]
    fn first_split_trains_on_two_weeks_and_tests_the_rest_of_part_one() {
        let splits = two_year_splits();
        let first = &splits[0];
        assert_eq!(first.train.0, SimTime::ZERO);
        assert_eq!(first.validate.1, SimTime::from_days(14));
        assert_eq!(first.test.0, SimTime::from_days(14));
        assert!(first.test.1 > first.test.0);
    }

    #[test]
    fn later_splits_use_everything_before_the_test_part() {
        let splits = two_year_splits();
        for s in &splits[1..] {
            assert_eq!(s.train.0, SimTime::ZERO);
            assert_eq!(
                s.validate.1, s.test.0,
                "validation ends where the test part begins"
            );
            // 75/25 division of the available history.
            let available = (s.test.0 - SimTime::ZERO) as f64;
            let train_len = (s.train.1 - s.train.0) as f64;
            assert!((train_len / available - 0.75).abs() < 0.01);
        }
    }

    #[test]
    fn ranges_never_overlap_test_data_with_training() {
        for s in two_year_splits() {
            assert!(s.train.1 <= s.test.0);
            assert!(s.validate.1 <= s.test.0);
            assert!(s.train.1 <= s.validate.0 || s.index == 1);
        }
    }

    #[test]
    fn works_for_other_part_counts() {
        let splits = nested_splits(SimTime::ZERO, SimTime::from_days(100), 4);
        assert_eq!(splits.len(), 4);
        assert_eq!(splits.last().unwrap().test.1, SimTime::from_days(100));
    }

    #[test]
    #[should_panic(expected = "at least two parts")]
    fn one_part_rejected() {
        nested_splits(SimTime::ZERO, SimTime::from_days(10), 1);
    }
}
