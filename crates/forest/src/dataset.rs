//! Feature-matrix / label containers for the tree-based baselines.

use serde::{Deserialize, Serialize};

/// A binary-classification dataset: one feature vector and one boolean label per sample.
///
/// For the SC20-RF baseline the label is "an uncorrected error follows this event within
/// the prediction window"; positives are extremely rare, which is why
/// [`crate::sampling::undersample`] exists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<bool>,
}

impl Dataset {
    /// Create an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a dataset from parallel feature and label vectors.
    ///
    /// # Panics
    /// Panics if the lengths differ or feature vectors have inconsistent dimensions.
    pub fn from_parts(features: Vec<Vec<f64>>, labels: Vec<bool>) -> Self {
        assert_eq!(features.len(), labels.len(), "features/labels length mismatch");
        if let Some(first) = features.first() {
            let dim = first.len();
            assert!(
                features.iter().all(|f| f.len() == dim),
                "inconsistent feature dimensions"
            );
        }
        Self { features, labels }
    }

    /// Append one sample.
    ///
    /// # Panics
    /// Panics if the feature dimension does not match the existing samples.
    pub fn push(&mut self, features: Vec<f64>, label: bool) {
        if let Some(first) = self.features.first() {
            assert_eq!(first.len(), features.len(), "inconsistent feature dimensions");
        }
        self.features.push(features);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of features per sample (0 for an empty dataset).
    pub fn n_features(&self) -> usize {
        self.features.first().map(Vec::len).unwrap_or(0)
    }

    /// The feature vector of sample `i`.
    pub fn features_of(&self, i: usize) -> &[f64] {
        &self.features[i]
    }

    /// The label of sample `i`.
    pub fn label_of(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Number of positive samples.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Number of negative samples.
    pub fn negatives(&self) -> usize {
        self.len() - self.positives()
    }

    /// Fraction of positive samples (0 for an empty dataset).
    pub fn positive_fraction(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.positives() as f64 / self.len() as f64
        }
    }

    /// A new dataset containing the samples at `indices` (duplicates allowed — this is
    /// how bootstrap resampling is expressed).
    pub fn subset(&self, indices: &[usize]) -> Self {
        Self {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        }
    }

    /// Iterate over `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], bool)> {
        self.features
            .iter()
            .map(Vec::as_slice)
            .zip(self.labels.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_parts(
            vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![0.5, 0.5], vec![0.9, 0.1]],
            vec![false, true, false, true],
        )
    }

    #[test]
    fn construction_and_counts() {
        let d = sample();
        assert_eq!(d.len(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.positives(), 2);
        assert_eq!(d.negatives(), 2);
        assert!((d.positive_fraction() - 0.5).abs() < 1e-12);
        assert!(!d.is_empty());
    }

    #[test]
    fn push_and_access() {
        let mut d = Dataset::new();
        assert_eq!(d.n_features(), 0);
        d.push(vec![1.0, 2.0, 3.0], true);
        d.push(vec![4.0, 5.0, 6.0], false);
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.features_of(1), &[4.0, 5.0, 6.0]);
        assert!(d.label_of(0));
        assert!(!d.label_of(1));
    }

    #[test]
    fn subset_allows_duplicates() {
        let d = sample();
        let s = d.subset(&[0, 0, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.features_of(0), s.features_of(1));
        assert!(s.label_of(2));
    }

    #[test]
    fn iteration_pairs_features_and_labels() {
        let d = sample();
        let collected: Vec<bool> = d.iter().map(|(_, l)| l).collect();
        assert_eq!(collected, vec![false, true, false, true]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        Dataset::from_parts(vec![vec![1.0]], vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "inconsistent feature dimensions")]
    fn inconsistent_dimensions_rejected() {
        let mut d = Dataset::new();
        d.push(vec![1.0, 2.0], true);
        d.push(vec![1.0], false);
    }
}
