//! Feature-matrix / label containers for the tree-based baselines.
//!
//! The feature matrix is stored as one contiguous row-major `Vec<f64>` rather than a
//! `Vec<Vec<f64>>`: one allocation instead of `n + 1`, cache-friendly row access, and
//! cheap column scans during tree fitting. Training code never copies the matrix —
//! under-sampling and bootstrap resampling are expressed as index lists over one shared
//! [`Dataset`] (see [`crate::sampling::undersample_indices`] and
//! [`crate::tree::DecisionTree::fit_with_indices`]).

use serde::{Deserialize, Serialize};

/// A binary-classification dataset: one feature vector and one boolean label per sample,
/// with the feature matrix in a single contiguous row-major buffer.
///
/// For the SC20-RF baseline the label is "an uncorrected error follows this event within
/// the prediction window"; positives are extremely rare, which is why
/// [`crate::sampling::undersample`] exists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Dataset {
    /// Row-major feature matrix, `len() * n_features` values.
    data: Vec<f64>,
    labels: Vec<bool>,
    n_features: usize,
}

impl Dataset {
    /// Create an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a dataset from parallel feature and label vectors.
    ///
    /// # Panics
    /// Panics if the lengths differ or feature vectors have inconsistent dimensions.
    pub fn from_parts(features: Vec<Vec<f64>>, labels: Vec<bool>) -> Self {
        assert_eq!(
            features.len(),
            labels.len(),
            "features/labels length mismatch"
        );
        let n_features = features.first().map(Vec::len).unwrap_or(0);
        assert!(
            features.iter().all(|f| f.len() == n_features),
            "inconsistent feature dimensions"
        );
        let mut data = Vec::with_capacity(features.len() * n_features);
        for row in &features {
            data.extend_from_slice(row);
        }
        Self {
            data,
            labels,
            n_features,
        }
    }

    /// Create a dataset directly from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != labels.len() * n_features`.
    pub fn from_flat(data: Vec<f64>, n_features: usize, labels: Vec<bool>) -> Self {
        assert_eq!(
            data.len(),
            labels.len() * n_features,
            "flat buffer length must equal samples * features"
        );
        Self {
            data,
            labels,
            n_features,
        }
    }

    /// Append one sample from an owned vector.
    ///
    /// # Panics
    /// Panics if the feature dimension does not match the existing samples.
    pub fn push(&mut self, features: Vec<f64>, label: bool) {
        self.push_slice(&features, label);
    }

    /// Append one sample without taking ownership of the feature buffer.
    ///
    /// # Panics
    /// Panics if the feature dimension does not match the existing samples.
    pub fn push_slice(&mut self, features: &[f64], label: bool) {
        if self.labels.is_empty() {
            self.n_features = features.len();
        } else {
            assert_eq!(
                self.n_features,
                features.len(),
                "inconsistent feature dimensions"
            );
        }
        self.data.extend_from_slice(features);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per sample (0 for an empty dataset).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The feature vector of sample `i`.
    #[inline]
    pub fn features_of(&self, i: usize) -> &[f64] {
        &self.data[i * self.n_features..(i + 1) * self.n_features]
    }

    /// One feature value of one sample, without forming the row slice.
    #[inline]
    pub fn value(&self, i: usize, feature: usize) -> f64 {
        debug_assert!(feature < self.n_features);
        self.data[i * self.n_features + feature]
    }

    /// The label of sample `i`.
    #[inline]
    pub fn label_of(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// The contiguous row-major feature buffer.
    pub fn flat_data(&self) -> &[f64] {
        &self.data
    }

    /// Number of positive samples.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }

    /// Number of negative samples.
    pub fn negatives(&self) -> usize {
        self.len() - self.positives()
    }

    /// Fraction of positive samples (0 for an empty dataset).
    pub fn positive_fraction(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.positives() as f64 / self.len() as f64
        }
    }

    /// A new dataset containing the samples at `indices` (duplicates allowed — this is
    /// how bootstrap resampling is expressed when a materialised copy is wanted; the
    /// fitting code itself works on index views and never calls this).
    pub fn subset(&self, indices: &[usize]) -> Self {
        let mut data = Vec::with_capacity(indices.len() * self.n_features);
        for &i in indices {
            data.extend_from_slice(self.features_of(i));
        }
        Self {
            data,
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            n_features: self.n_features,
        }
    }

    /// Iterate over `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], bool)> {
        self.data
            .chunks_exact(self.n_features.max(1))
            .zip(self.labels.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_parts(
            vec![
                vec![0.0, 1.0],
                vec![1.0, 0.0],
                vec![0.5, 0.5],
                vec![0.9, 0.1],
            ],
            vec![false, true, false, true],
        )
    }

    #[test]
    fn construction_and_counts() {
        let d = sample();
        assert_eq!(d.len(), 4);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.positives(), 2);
        assert_eq!(d.negatives(), 2);
        assert!((d.positive_fraction() - 0.5).abs() < 1e-12);
        assert!(!d.is_empty());
    }

    #[test]
    fn push_and_access() {
        let mut d = Dataset::new();
        assert_eq!(d.n_features(), 0);
        d.push(vec![1.0, 2.0, 3.0], true);
        d.push(vec![4.0, 5.0, 6.0], false);
        assert_eq!(d.n_features(), 3);
        assert_eq!(d.features_of(1), &[4.0, 5.0, 6.0]);
        assert!(d.label_of(0));
        assert!(!d.label_of(1));
        assert_eq!(d.value(1, 2), 6.0);
    }

    #[test]
    fn flat_buffer_is_row_major() {
        let d = sample();
        assert_eq!(d.flat_data(), &[0.0, 1.0, 1.0, 0.0, 0.5, 0.5, 0.9, 0.1]);
        let e = Dataset::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2, vec![true, false]);
        assert_eq!(e.features_of(1), &[3.0, 4.0]);
    }

    #[test]
    fn subset_allows_duplicates() {
        let d = sample();
        let s = d.subset(&[0, 0, 3]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.features_of(0), s.features_of(1));
        assert!(s.label_of(2));
    }

    #[test]
    fn iteration_pairs_features_and_labels() {
        let d = sample();
        let collected: Vec<bool> = d.iter().map(|(_, l)| l).collect();
        assert_eq!(collected, vec![false, true, false, true]);
        let first: Vec<&[f64]> = d.iter().map(|(f, _)| f).collect();
        assert_eq!(first[0], &[0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        Dataset::from_parts(vec![vec![1.0]], vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "inconsistent feature dimensions")]
    fn inconsistent_dimensions_rejected() {
        let mut d = Dataset::new();
        d.push(vec![1.0, 2.0], true);
        d.push(vec![1.0], false);
    }

    #[test]
    #[should_panic(expected = "flat buffer length")]
    fn bad_flat_buffer_rejected() {
        Dataset::from_flat(vec![1.0, 2.0, 3.0], 2, vec![true, false]);
    }
}
