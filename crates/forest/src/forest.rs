//! Bootstrap-aggregated random forests with probability output.

use crate::dataset::Dataset;
use crate::sampling::undersample;
use crate::tree::{DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a random forest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Whether each tree is fitted on a bootstrap resample of the training data.
    pub bootstrap: bool,
    /// If set, apply random under-sampling of the negatives (to this negative:positive
    /// ratio) independently for each tree, as in the SC20-RF baseline.
    pub undersample_ratio: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 50,
            tree: TreeConfig::default(),
            bootstrap: true,
            undersample_ratio: Some(1.0),
            seed: 0,
        }
    }
}

impl RandomForestConfig {
    /// The SC20-RF baseline configuration: a bagged forest with per-tree random
    /// under-sampling and `sqrt(n_features)` feature subsampling.
    pub fn sc20(n_features: usize, seed: u64) -> Self {
        Self {
            n_trees: 100,
            tree: TreeConfig {
                max_depth: 12,
                min_samples_leaf: 2,
                max_features: Some(((n_features as f64).sqrt().ceil() as usize).max(1)),
            },
            bootstrap: true,
            undersample_ratio: Some(1.0),
            seed,
        }
    }

    /// A small, fast configuration for tests.
    pub fn small(seed: u64) -> Self {
        Self {
            n_trees: 15,
            tree: TreeConfig {
                max_depth: 8,
                min_samples_leaf: 2,
                max_features: None,
            },
            bootstrap: true,
            undersample_ratio: Some(1.0),
            seed,
        }
    }
}

/// A fitted random forest for binary classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Fit a forest to a dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty or the configuration requests zero trees.
    pub fn fit(dataset: &Dataset, config: &RandomForestConfig) -> Self {
        assert!(!dataset.is_empty(), "cannot fit a forest to an empty dataset");
        assert!(config.n_trees > 0, "need at least one tree");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut trees = Vec::with_capacity(config.n_trees);
        for _ in 0..config.n_trees {
            // Per-tree under-sampling first (keeps all positives), then bootstrap.
            let balanced = match config.undersample_ratio {
                Some(ratio) => undersample(dataset, ratio, &mut rng),
                None => dataset.clone(),
            };
            let training = if config.bootstrap {
                let indices: Vec<usize> = (0..balanced.len())
                    .map(|_| rng.gen_range(0..balanced.len()))
                    .collect();
                balanced.subset(&indices)
            } else {
                balanced
            };
            trees.push(DecisionTree::fit(&training, &config.tree, &mut rng));
        }
        Self {
            trees,
            n_features: dataset.n_features(),
        }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of features expected at prediction time.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Predicted probability of the positive class: the mean of the per-tree leaf
    /// probabilities.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        let sum: f64 = self
            .trees
            .iter()
            .map(|t| t.predict_proba(features))
            .sum();
        sum / self.trees.len() as f64
    }

    /// Predicted probabilities for a batch of samples.
    pub fn predict_proba_batch(&self, samples: &[Vec<f64>]) -> Vec<f64> {
        samples.iter().map(|s| self.predict_proba(s)).collect()
    }

    /// Hard classification at a decision threshold.
    pub fn predict(&self, features: &[f64], threshold: f64) -> bool {
        self.predict_proba(features) >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Imbalanced but separable data: positive iff x0 + x1 > 1.2, with 10x more negatives.
    fn imbalanced(n: usize) -> Dataset {
        let mut d = Dataset::new();
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..n {
            let x0: f64 = rng.gen();
            let x1: f64 = rng.gen();
            let positive = x0 + x1 > 1.2;
            // Thin the positives to create imbalance.
            if !positive || rng.gen::<f64>() < 0.3 {
                d.push(vec![x0, x1], positive);
            }
        }
        d
    }

    #[test]
    fn forest_separates_classes() {
        let d = imbalanced(2000);
        let forest = RandomForest::fit(&d, &RandomForestConfig::small(1));
        assert!(forest.predict_proba(&[0.9, 0.9]) > 0.7);
        assert!(forest.predict_proba(&[0.1, 0.1]) < 0.3);
        assert!(forest.predict(&[0.9, 0.9], 0.5));
        assert!(!forest.predict(&[0.1, 0.1], 0.5));
    }

    #[test]
    fn probabilities_are_in_unit_interval() {
        let d = imbalanced(500);
        let forest = RandomForest::fit(&d, &RandomForestConfig::small(2));
        for x in [[0.0, 0.0], [0.5, 0.5], [1.0, 1.0], [0.3, 0.9]] {
            let p = forest.predict_proba(&x);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn fitting_is_deterministic_per_seed() {
        let d = imbalanced(500);
        let a = RandomForest::fit(&d, &RandomForestConfig::small(7));
        let b = RandomForest::fit(&d, &RandomForestConfig::small(7));
        let c = RandomForest::fit(&d, &RandomForestConfig::small(8));
        let x = [0.6, 0.7];
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
        assert_ne!(a.predict_proba(&x), c.predict_proba(&x));
    }

    #[test]
    fn batch_prediction_matches_single() {
        let d = imbalanced(300);
        let forest = RandomForest::fit(&d, &RandomForestConfig::small(3));
        let samples = vec![vec![0.2, 0.2], vec![0.9, 0.8]];
        let batch = forest.predict_proba_batch(&samples);
        assert_eq!(batch[0], forest.predict_proba(&samples[0]));
        assert_eq!(batch[1], forest.predict_proba(&samples[1]));
    }

    #[test]
    fn sc20_configuration_uses_sqrt_features() {
        let config = RandomForestConfig::sc20(14, 0);
        assert_eq!(config.tree.max_features, Some(4));
        assert_eq!(config.n_trees, 100);
        assert_eq!(config.undersample_ratio, Some(1.0));
    }

    #[test]
    fn undersampling_improves_recall_on_imbalanced_data() {
        // With heavy imbalance and no under-sampling, the forest is biased towards the
        // negative class; under-sampling should raise the predicted probability of true
        // positives.
        let d = imbalanced(3000);
        let with = RandomForest::fit(
            &d,
            &RandomForestConfig {
                undersample_ratio: Some(1.0),
                ..RandomForestConfig::small(4)
            },
        );
        let without = RandomForest::fit(
            &d,
            &RandomForestConfig {
                undersample_ratio: None,
                ..RandomForestConfig::small(4)
            },
        );
        let positive_sample = [0.75, 0.7];
        assert!(
            with.predict_proba(&positive_sample) >= without.predict_proba(&positive_sample) - 0.05,
            "undersampling should not hurt the positive-class probability much"
        );
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let d = imbalanced(100);
        RandomForest::fit(
            &d,
            &RandomForestConfig {
                n_trees: 0,
                ..RandomForestConfig::small(5)
            },
        );
    }
}
