//! Bootstrap-aggregated random forests with probability output.
//!
//! Trees are fitted in parallel by recursive [`rayon::join`] splitting over the tree
//! index range: the range halves until single trees remain, and the work-stealing pool
//! balances the halves across workers (tree costs vary with the bootstrap draw, so
//! stealing beats static chunking). Each tree derives its own RNG from the forest seed
//! and its tree index and writes its result into its own index slot, so the fitted
//! forest is **bit-identical at any thread count** — the per-tree work is a pure
//! function of `(dataset, config, tree_idx)`. Per-tree under-sampling and bootstrap
//! resampling are expressed as index views over the shared dataset; no tree ever copies
//! the feature matrix.

use crate::dataset::Dataset;
use crate::sampling::undersample_indices;
use crate::tree::{DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Golden-ratio multiplier decorrelating per-tree seeds (same mixer the evaluation
/// harness uses for per-node job seeds).
const TREE_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Configuration of a random forest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Whether each tree is fitted on a bootstrap resample of the training data.
    pub bootstrap: bool,
    /// If set, apply random under-sampling of the negatives (to this negative:positive
    /// ratio) independently for each tree, as in the SC20-RF baseline.
    pub undersample_ratio: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 50,
            tree: TreeConfig::default(),
            bootstrap: true,
            undersample_ratio: Some(1.0),
            seed: 0,
        }
    }
}

impl RandomForestConfig {
    /// The SC20-RF baseline configuration: a bagged forest with per-tree random
    /// under-sampling and `sqrt(n_features)` feature subsampling.
    pub fn sc20(n_features: usize, seed: u64) -> Self {
        Self {
            n_trees: 100,
            tree: TreeConfig {
                max_depth: 12,
                min_samples_leaf: 2,
                max_features: Some(((n_features as f64).sqrt().ceil() as usize).max(1)),
            },
            bootstrap: true,
            undersample_ratio: Some(1.0),
            seed,
        }
    }

    /// A small, fast configuration for tests.
    pub fn small(seed: u64) -> Self {
        Self {
            n_trees: 15,
            tree: TreeConfig {
                max_depth: 8,
                min_samples_leaf: 2,
                max_features: None,
            },
            bootstrap: true,
            undersample_ratio: Some(1.0),
            seed,
        }
    }
}

/// A fitted random forest for binary classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Fit a forest to a dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty or the configuration requests zero trees.
    pub fn fit(dataset: &Dataset, config: &RandomForestConfig) -> Self {
        assert!(
            !dataset.is_empty(),
            "cannot fit a forest to an empty dataset"
        );
        assert!(config.n_trees > 0, "need at least one tree");
        let mut slots: Vec<Option<DecisionTree>> = (0..config.n_trees).map(|_| None).collect();
        Self::fit_tree_range(dataset, config, 0, &mut slots);
        let trees = slots
            .into_iter()
            .map(|slot| slot.expect("every tree slot filled"))
            .collect();
        Self {
            trees,
            n_features: dataset.n_features(),
        }
    }

    /// Fit the trees whose indices start at `first_idx` into `out`, halving the range
    /// via `rayon::join` so the work-stealing pool balances the halves. Each slot is
    /// filled by tree index, keeping the forest independent of who ran what.
    fn fit_tree_range(
        dataset: &Dataset,
        config: &RandomForestConfig,
        first_idx: usize,
        out: &mut [Option<DecisionTree>],
    ) {
        match out {
            [] => {}
            [slot] => *slot = Some(Self::fit_one_tree(dataset, config, first_idx)),
            _ => {
                let mid = out.len() / 2;
                let (left, right) = out.split_at_mut(mid);
                rayon::join(
                    || Self::fit_tree_range(dataset, config, first_idx, left),
                    || Self::fit_tree_range(dataset, config, first_idx + mid, right),
                );
            }
        }
    }

    /// Fit tree `tree_idx` of a forest: a pure function of `(dataset, config, tree_idx)`
    /// so the parallel fan-out is deterministic at any thread count.
    fn fit_one_tree(
        dataset: &Dataset,
        config: &RandomForestConfig,
        tree_idx: usize,
    ) -> DecisionTree {
        let tree_seed = config.seed ^ (tree_idx as u64).wrapping_mul(TREE_SEED_MIX);
        let mut rng = StdRng::seed_from_u64(tree_seed);
        // Per-tree under-sampling first (keeps all positives), then bootstrap — both as
        // index views over the shared dataset, never copying feature rows.
        let balanced: Vec<usize> = match config.undersample_ratio {
            Some(ratio) => undersample_indices(dataset, ratio, &mut rng),
            None => (0..dataset.len()).collect(),
        };
        let training: Vec<usize> = if config.bootstrap {
            (0..balanced.len())
                .map(|_| balanced[rng.gen_range(0..balanced.len())])
                .collect()
        } else {
            balanced
        };
        DecisionTree::fit_with_indices(dataset, &training, &config.tree, &mut rng)
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of features expected at prediction time.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Predicted probability of the positive class: the mean of the per-tree leaf
    /// probabilities.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        let sum: f64 = self.trees.iter().map(|t| t.predict_proba(features)).sum();
        sum / self.trees.len() as f64
    }

    /// Predicted probabilities for a batch of samples. Serial on purpose: callers on
    /// hot paths (e.g. the evaluator's data-driven threshold sweep) parallelise at
    /// their own level, where the fan-out shape is known.
    pub fn predict_proba_batch(&self, samples: &[Vec<f64>]) -> Vec<f64> {
        samples.iter().map(|s| self.predict_proba(s)).collect()
    }

    /// Hard classification at a decision threshold.
    pub fn predict(&self, features: &[f64], threshold: f64) -> bool {
        self.predict_proba(features) >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Imbalanced but separable data: positive iff x0 + x1 > 1.2, with 10x more negatives.
    fn imbalanced(n: usize) -> Dataset {
        let mut d = Dataset::new();
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..n {
            let x0: f64 = rng.gen();
            let x1: f64 = rng.gen();
            let positive = x0 + x1 > 1.2;
            // Thin the positives to create imbalance.
            if !positive || rng.gen::<f64>() < 0.3 {
                d.push(vec![x0, x1], positive);
            }
        }
        d
    }

    #[test]
    fn forest_separates_classes() {
        let d = imbalanced(2000);
        let forest = RandomForest::fit(&d, &RandomForestConfig::small(1));
        assert!(forest.predict_proba(&[0.9, 0.9]) > 0.7);
        assert!(forest.predict_proba(&[0.1, 0.1]) < 0.3);
        assert!(forest.predict(&[0.9, 0.9], 0.5));
        assert!(!forest.predict(&[0.1, 0.1], 0.5));
    }

    #[test]
    fn probabilities_are_in_unit_interval() {
        let d = imbalanced(500);
        let forest = RandomForest::fit(&d, &RandomForestConfig::small(2));
        for x in [[0.0, 0.0], [0.5, 0.5], [1.0, 1.0], [0.3, 0.9]] {
            let p = forest.predict_proba(&x);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn fitting_is_bit_identical_across_thread_counts() {
        let d = imbalanced(800);
        let config = RandomForestConfig::small(9);
        let one = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let four = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let serial = one.install(|| RandomForest::fit(&d, &config));
        let parallel = four.install(|| RandomForest::fit(&d, &config));
        assert_eq!(
            serial, parallel,
            "forest must not depend on the thread count"
        );
    }

    #[test]
    fn fitting_is_deterministic_per_seed() {
        let d = imbalanced(500);
        let a = RandomForest::fit(&d, &RandomForestConfig::small(7));
        let b = RandomForest::fit(&d, &RandomForestConfig::small(7));
        let c = RandomForest::fit(&d, &RandomForestConfig::small(8));
        let x = [0.6, 0.7];
        assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
        assert_ne!(a.predict_proba(&x), c.predict_proba(&x));
    }

    #[test]
    fn batch_prediction_matches_single() {
        let d = imbalanced(300);
        let forest = RandomForest::fit(&d, &RandomForestConfig::small(3));
        let samples = vec![vec![0.2, 0.2], vec![0.9, 0.8]];
        let batch = forest.predict_proba_batch(&samples);
        assert_eq!(batch[0], forest.predict_proba(&samples[0]));
        assert_eq!(batch[1], forest.predict_proba(&samples[1]));
    }

    #[test]
    fn sc20_configuration_uses_sqrt_features() {
        let config = RandomForestConfig::sc20(14, 0);
        assert_eq!(config.tree.max_features, Some(4));
        assert_eq!(config.n_trees, 100);
        assert_eq!(config.undersample_ratio, Some(1.0));
    }

    #[test]
    fn undersampling_improves_recall_on_imbalanced_data() {
        // With heavy imbalance and no under-sampling, the forest is biased towards the
        // negative class; under-sampling should raise the predicted probability of true
        // positives.
        let d = imbalanced(3000);
        let with = RandomForest::fit(
            &d,
            &RandomForestConfig {
                undersample_ratio: Some(1.0),
                ..RandomForestConfig::small(4)
            },
        );
        let without = RandomForest::fit(
            &d,
            &RandomForestConfig {
                undersample_ratio: None,
                ..RandomForestConfig::small(4)
            },
        );
        let positive_sample = [0.75, 0.7];
        assert!(
            with.predict_proba(&positive_sample) >= without.predict_proba(&positive_sample) - 0.05,
            "undersampling should not hurt the positive-class probability much"
        );
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let d = imbalanced(100);
        RandomForest::fit(
            &d,
            &RandomForestConfig {
                n_trees: 0,
                ..RandomForestConfig::small(5)
            },
        );
    }
}
