//! # uerl-forest
//!
//! Random-forest baseline substrate.
//!
//! The strongest prior-art baseline in the paper is **SC20-RF**: the cost-aware random
//! forest predictor of Boixaderas et al. (SC 2020), which outputs a probability of an
//! upcoming uncorrected error and triggers a mitigation when that probability exceeds an
//! externally supplied threshold. The paper also evaluates **Myopic-RF**, which compares
//! the RF-estimated expected UE cost against the mitigation cost. Both baselines need a
//! from-scratch random forest because no ML crate is available offline:
//!
//! * [`dataset`] — feature-matrix / label containers and train-test splitting;
//! * [`sampling`] — random under-sampling of the majority class (the imbalance handling
//!   used by SC20-RF);
//! * [`tree`] — CART decision trees with Gini impurity, depth and leaf-size limits and
//!   per-split feature subsampling;
//! * [`forest`] — bootstrap-aggregated forests with probability output;
//! * [`threshold`] — selection of the decision threshold (optimal and perturbed variants,
//!   as in the SC20-RF-2% / SC20-RF-5% configurations).

pub mod dataset;
pub mod forest;
pub mod sampling;
pub mod threshold;
pub mod tree;

pub use dataset::Dataset;
pub use forest::{RandomForest, RandomForestConfig};
pub use sampling::{undersample, undersample_indices};
pub use threshold::{optimal_threshold, perturb_threshold, Confusion};
pub use tree::{DecisionTree, TreeConfig};
