//! Random under-sampling of the majority class.
//!
//! The SC20-RF baseline handles the extreme UE/event class imbalance (3.5 orders of
//! magnitude) by random under-sampling: all positive samples are kept and the negatives
//! are randomly thinned until the requested negative:positive ratio is reached.
//!
//! [`undersample_indices`] is the zero-copy form used by forest fitting: it returns the
//! kept sample indices instead of materialising a new dataset, so per-tree resamples
//! never copy the feature matrix.

use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;

/// Indices of an under-sampled view: all positives, plus negatives randomly thinned to
/// at most `ratio` negatives per positive. Returned sorted ascending, matching the
/// sample order a materialised [`undersample`] would produce.
///
/// If the dataset already satisfies the ratio (or has no positives at all), the identity
/// index list is returned.
///
/// # Panics
/// Panics if `ratio` is not strictly positive.
pub fn undersample_indices<R: Rng + ?Sized>(
    dataset: &Dataset,
    ratio: f64,
    rng: &mut R,
) -> Vec<usize> {
    assert!(ratio > 0.0 && ratio.is_finite(), "ratio must be positive");
    let positives: Vec<usize> = (0..dataset.len())
        .filter(|&i| dataset.label_of(i))
        .collect();
    let mut negatives: Vec<usize> = (0..dataset.len())
        .filter(|&i| !dataset.label_of(i))
        .collect();
    if positives.is_empty() {
        return (0..dataset.len()).collect();
    }
    let keep_negatives = ((positives.len() as f64 * ratio).round() as usize).max(1);
    if negatives.len() <= keep_negatives {
        return (0..dataset.len()).collect();
    }
    negatives.shuffle(rng);
    negatives.truncate(keep_negatives);
    let mut indices = positives;
    indices.extend(negatives);
    indices.sort_unstable();
    indices
}

/// Randomly under-sample the negative class to at most `ratio` negatives per positive,
/// materialising the result as a new dataset.
///
/// All positives are kept. If the dataset already satisfies the ratio (or has no
/// positives at all), it is returned unchanged. Forest fitting uses the index-based
/// [`undersample_indices`] instead, which draws the identical subsample for the same
/// RNG state without copying any feature data.
///
/// # Panics
/// Panics if `ratio` is not strictly positive.
pub fn undersample<R: Rng + ?Sized>(dataset: &Dataset, ratio: f64, rng: &mut R) -> Dataset {
    dataset.subset(&undersample_indices(dataset, ratio, rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn imbalanced(n_negative: usize, n_positive: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n_negative {
            d.push(vec![i as f64, 0.0], false);
        }
        for i in 0..n_positive {
            d.push(vec![i as f64, 1.0], true);
        }
        d
    }

    #[test]
    fn balances_to_requested_ratio() {
        let d = imbalanced(1000, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let balanced = undersample(&d, 1.0, &mut rng);
        assert_eq!(balanced.positives(), 10, "all positives kept");
        assert_eq!(balanced.negatives(), 10);
    }

    #[test]
    fn ratio_above_one_keeps_more_negatives() {
        let d = imbalanced(1000, 10);
        let mut rng = StdRng::seed_from_u64(2);
        let balanced = undersample(&d, 5.0, &mut rng);
        assert_eq!(balanced.positives(), 10);
        assert_eq!(balanced.negatives(), 50);
    }

    #[test]
    fn already_balanced_dataset_is_unchanged() {
        let d = imbalanced(5, 5);
        let mut rng = StdRng::seed_from_u64(3);
        let out = undersample(&d, 1.0, &mut rng);
        assert_eq!(out, d);
    }

    #[test]
    fn no_positives_returns_identity() {
        let d = imbalanced(20, 0);
        let mut rng = StdRng::seed_from_u64(4);
        let out = undersample(&d, 1.0, &mut rng);
        assert_eq!(out.len(), 20);
        let idx = undersample_indices(&d, 1.0, &mut StdRng::seed_from_u64(4));
        assert_eq!(idx, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn indices_match_materialised_subsample() {
        let d = imbalanced(200, 8);
        let idx = undersample_indices(&d, 1.0, &mut StdRng::seed_from_u64(11));
        let materialised = undersample(&d, 1.0, &mut StdRng::seed_from_u64(11));
        assert_eq!(d.subset(&idx), materialised);
        // Sorted ascending and within bounds.
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.iter().all(|&i| i < d.len()));
    }

    #[test]
    fn sampling_is_random_but_seeded() {
        let d = imbalanced(100, 5);
        let a = undersample(&d, 1.0, &mut StdRng::seed_from_u64(5));
        let b = undersample(&d, 1.0, &mut StdRng::seed_from_u64(5));
        let c = undersample(&d, 1.0, &mut StdRng::seed_from_u64(6));
        assert_eq!(a, b, "same seed, same subsample");
        assert_ne!(a, c, "different seed, (almost surely) different subsample");
    }

    #[test]
    #[should_panic(expected = "ratio must be positive")]
    fn zero_ratio_rejected() {
        let d = imbalanced(10, 1);
        undersample(&d, 0.0, &mut StdRng::seed_from_u64(7));
    }
}
