//! Decision-threshold selection for the SC20-RF baseline.
//!
//! SC20-RF triggers a mitigation when the forest's predicted probability exceeds an
//! externally supplied threshold. The paper gives the baseline "maximum advantage" by
//! using the threshold that minimises the total cost, and also evaluates realistic
//! variants whose threshold is 2% or 5% away from optimal (SC20-RF-2% / SC20-RF-5%).

/// Find the threshold (among the candidate values) that minimises `cost`.
///
/// The candidates are the distinct predicted probabilities plus 0 and 1, which is
/// sufficient because the induced classification only changes at those points. Returns
/// `(threshold, cost)`.
///
/// # Panics
/// Panics if `probabilities` is empty.
pub fn optimal_threshold(probabilities: &[f64], mut cost: impl FnMut(f64) -> f64) -> (f64, f64) {
    assert!(!probabilities.is_empty(), "need at least one probability");
    let mut candidates: Vec<f64> = probabilities.to_vec();
    candidates.push(0.0);
    candidates.push(1.0);
    candidates.retain(|p| p.is_finite());
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    candidates.dedup();
    let mut best = (candidates[0], f64::INFINITY);
    for &t in &candidates {
        let c = cost(t);
        if c < best.1 {
            best = (t, c);
        }
    }
    best
}

/// Perturb a threshold away from its optimal value by a relative `fraction` (0.02 for
/// SC20-RF-2%, 0.05 for SC20-RF-5%). The perturbation lowers the threshold (more
/// mitigations) and clamps to `[0, 1]`; lowering is the conservative direction for a
/// mitigation policy, and either direction degrades the cost-optimality.
///
/// # Panics
/// Panics if the threshold is outside `[0, 1]` or the fraction is negative.
pub fn perturb_threshold(threshold: f64, fraction: f64) -> f64 {
    assert!((0.0..=1.0).contains(&threshold), "threshold must be in [0, 1]");
    assert!(fraction >= 0.0, "fraction must be non-negative");
    // An absolute perturbation of `fraction` (2% / 5% of the probability scale).
    (threshold - fraction).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_cost_minimising_threshold() {
        // Cost is minimised at the threshold closest to 0.6.
        let probs = [0.1, 0.4, 0.6, 0.9];
        let (t, c) = optimal_threshold(&probs, |t| (t - 0.6).abs());
        assert_eq!(t, 0.6);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn always_considers_zero_and_one() {
        let probs = [0.5];
        let (t, _) = optimal_threshold(&probs, |t| 1.0 - t);
        assert_eq!(t, 1.0);
        let (t, _) = optimal_threshold(&probs, |t| t);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn ties_resolve_to_the_lowest_threshold() {
        let probs = [0.2, 0.8];
        let (t, _) = optimal_threshold(&probs, |_| 1.0);
        assert_eq!(t, 0.0, "constant cost keeps the first (lowest) candidate");
    }

    #[test]
    fn perturbation_moves_and_clamps() {
        assert!((perturb_threshold(0.5, 0.02) - 0.48).abs() < 1e-12);
        assert!((perturb_threshold(0.5, 0.05) - 0.45).abs() < 1e-12);
        assert_eq!(perturb_threshold(0.01, 0.05), 0.0);
        assert_eq!(perturb_threshold(0.7, 0.0), 0.7);
    }

    #[test]
    #[should_panic(expected = "at least one probability")]
    fn empty_probabilities_rejected() {
        optimal_threshold(&[], |_| 0.0);
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn out_of_range_threshold_rejected() {
        perturb_threshold(1.5, 0.02);
    }
}
