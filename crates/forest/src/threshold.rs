//! Decision-threshold selection for the SC20-RF baseline.
//!
//! SC20-RF triggers a mitigation when the forest's predicted probability exceeds an
//! externally supplied threshold. The paper gives the baseline "maximum advantage" by
//! using the threshold that minimises the total cost, and also evaluates realistic
//! variants whose threshold is 2% or 5% away from optimal (SC20-RF-2% / SC20-RF-5%).
//!
//! [`optimal_threshold`] sweeps every candidate threshold once in ascending order,
//! maintaining the confusion matrix incrementally — `O(n log n)` for the sort plus
//! `O(1)` per candidate — instead of re-scoring all `n` samples per candidate, which
//! made the previous implementation `O(n²)` on the evaluator's cost path.
//! [`optimal_threshold_scan`] keeps the legacy opaque-closure form for costs that are
//! not a function of the confusion matrix.

/// Confusion counts of the classifier "predict positive iff probability ≥ threshold".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// Positive samples predicted positive.
    pub true_positives: usize,
    /// Negative samples predicted positive.
    pub false_positives: usize,
    /// Negative samples predicted negative.
    pub true_negatives: usize,
    /// Positive samples predicted negative.
    pub false_negatives: usize,
}

impl Confusion {
    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Number of positive predictions (mitigations an SC20-RF policy would trigger).
    pub fn predicted_positives(&self) -> usize {
        self.true_positives + self.false_positives
    }
}

/// Find the threshold minimising a cost that is a function of the confusion matrix.
///
/// The candidates are the distinct predicted probabilities plus 0 and 1, which is
/// sufficient because the induced classification only changes at those points. The sweep
/// visits candidates in ascending order while flipping the samples whose probability
/// falls below the threshold from predicted-positive to predicted-negative, so `cost` is
/// invoked exactly once per candidate with the up-to-date counts. Ties resolve to the
/// lowest threshold. Returns `(threshold, cost)`.
///
/// # Panics
/// Panics if `probabilities` is empty or the lengths differ.
pub fn optimal_threshold(
    probabilities: &[f64],
    labels: &[bool],
    mut cost: impl FnMut(&Confusion) -> f64,
) -> (f64, f64) {
    assert!(!probabilities.is_empty(), "need at least one probability");
    assert_eq!(
        probabilities.len(),
        labels.len(),
        "probabilities/labels length mismatch"
    );
    let mut samples: Vec<(f64, bool)> = probabilities
        .iter()
        .zip(labels)
        .filter(|(p, _)| p.is_finite())
        .map(|(&p, &l)| (p, l))
        .collect();
    samples.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite probabilities"));

    let mut candidates: Vec<f64> = samples.iter().map(|&(p, _)| p).collect();
    candidates.push(0.0);
    candidates.push(1.0);
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite probabilities"));
    candidates.dedup();

    let positives = samples.iter().filter(|&&(_, l)| l).count();
    // At threshold 0 every sample is predicted positive.
    let mut confusion = Confusion {
        true_positives: positives,
        false_positives: samples.len() - positives,
        true_negatives: 0,
        false_negatives: 0,
    };

    let mut best: Option<(f64, f64)> = None;
    let mut cursor = 0usize; // samples with index < cursor are predicted negative
    for &t in &candidates {
        // Flip every sample with probability < t to predicted-negative; each sample
        // flips exactly once over the whole sweep.
        while cursor < samples.len() && samples[cursor].0 < t {
            if samples[cursor].1 {
                confusion.true_positives -= 1;
                confusion.false_negatives += 1;
            } else {
                confusion.false_positives -= 1;
                confusion.true_negatives += 1;
            }
            cursor += 1;
        }
        let c = cost(&confusion);
        if best.is_none_or(|(_, b)| c < b) {
            best = Some((t, c));
        }
    }
    best.expect("candidate list always contains 0 and 1")
}

/// Find the threshold (among the candidate values) that minimises an opaque cost
/// closure. `O(candidates · cost)` — prefer [`optimal_threshold`] whenever the cost is
/// a function of the confusion matrix.
///
/// The candidates are the distinct predicted probabilities plus 0 and 1. Returns
/// `(threshold, cost)`.
///
/// # Panics
/// Panics if `probabilities` is empty.
pub fn optimal_threshold_scan(
    probabilities: &[f64],
    mut cost: impl FnMut(f64) -> f64,
) -> (f64, f64) {
    assert!(!probabilities.is_empty(), "need at least one probability");
    let mut candidates: Vec<f64> = probabilities.to_vec();
    candidates.push(0.0);
    candidates.push(1.0);
    candidates.retain(|p| p.is_finite());
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    candidates.dedup();
    let mut best = (candidates[0], f64::INFINITY);
    for &t in &candidates {
        let c = cost(t);
        if c < best.1 {
            best = (t, c);
        }
    }
    best
}

/// Perturb a threshold away from its optimal value by a relative `fraction` (0.02 for
/// SC20-RF-2%, 0.05 for SC20-RF-5%). The perturbation lowers the threshold (more
/// mitigations) and clamps to `[0, 1]`; lowering is the conservative direction for a
/// mitigation policy, and either direction degrades the cost-optimality.
///
/// # Panics
/// Panics if the threshold is outside `[0, 1]` or the fraction is negative.
pub fn perturb_threshold(threshold: f64, fraction: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&threshold),
        "threshold must be in [0, 1]"
    );
    assert!(fraction >= 0.0, "fraction must be non-negative");
    // An absolute perturbation of `fraction` (2% / 5% of the probability scale).
    (threshold - fraction).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation: score the confusion matrix from scratch per candidate.
    fn brute_force(
        probabilities: &[f64],
        labels: &[bool],
        cost: impl Fn(&Confusion) -> f64,
    ) -> (f64, f64) {
        let mut candidates: Vec<f64> = probabilities.to_vec();
        candidates.push(0.0);
        candidates.push(1.0);
        candidates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        candidates.dedup();
        let mut best = (candidates[0], f64::INFINITY);
        for &t in &candidates {
            let mut confusion = Confusion::default();
            for (&p, &l) in probabilities.iter().zip(labels) {
                match (p >= t, l) {
                    (true, true) => confusion.true_positives += 1,
                    (true, false) => confusion.false_positives += 1,
                    (false, false) => confusion.true_negatives += 1,
                    (false, true) => confusion.false_negatives += 1,
                }
            }
            let c = cost(&confusion);
            if c < best.1 {
                best = (t, c);
            }
        }
        best
    }

    #[test]
    fn incremental_sweep_matches_brute_force() {
        // A weighted misclassification cost, on a spread of probabilities with ties.
        let probs = [0.1, 0.4, 0.4, 0.6, 0.9, 0.25, 0.6, 0.0, 1.0, 0.75];
        let labels = [
            false, false, true, true, true, false, false, false, true, true,
        ];
        let cost = |c: &Confusion| 3.0 * c.false_negatives as f64 + c.false_positives as f64;
        let fast = optimal_threshold(&probs, &labels, cost);
        let slow = brute_force(&probs, &labels, cost);
        assert_eq!(fast, slow);
    }

    #[test]
    fn sweep_matches_brute_force_on_many_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..50 {
            let n = rng.gen_range(1..40usize);
            let probs: Vec<f64> = (0..n)
                .map(|_| (rng.gen_range(0..5u32) as f64) / 4.0)
                .collect();
            let labels: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() < 0.3).collect();
            let fp_cost = rng.gen_range(0.1..5.0);
            let fn_cost = rng.gen_range(0.1..5.0);
            let cost = |c: &Confusion| {
                fp_cost * c.false_positives as f64 + fn_cost * c.false_negatives as f64
            };
            let fast = optimal_threshold(&probs, &labels, cost);
            let slow = brute_force(&probs, &labels, cost);
            assert_eq!(
                fast, slow,
                "trial {trial}: probs {probs:?} labels {labels:?}"
            );
        }
    }

    #[test]
    fn finds_the_cost_minimising_threshold() {
        // Perfectly separable at 0.5: zero cost needs zero FP and zero FN, first reached
        // at the lowest positive probability.
        let probs = [0.1, 0.4, 0.6, 0.9];
        let labels = [false, false, true, true];
        let (t, c) = optimal_threshold(&probs, &labels, |conf| {
            (conf.false_positives + conf.false_negatives) as f64
        });
        assert_eq!(t, 0.6);
        assert_eq!(c, 0.0);
    }

    #[test]
    fn always_considers_zero_and_one() {
        // Cost favouring "predict nothing positive": threshold above every probability.
        let probs = [0.5];
        let labels = [false];
        let (t, _) = optimal_threshold(&probs, &labels, |c| c.predicted_positives() as f64);
        assert_eq!(t, 1.0);
        // Cost favouring "predict everything positive": threshold 0.
        let (t, _) = optimal_threshold(&probs, &labels, |c| {
            (c.true_negatives + c.false_negatives) as f64
        });
        assert_eq!(t, 0.0);
    }

    #[test]
    fn ties_resolve_to_the_lowest_threshold() {
        let probs = [0.2, 0.8];
        let labels = [false, true];
        let (t, _) = optimal_threshold(&probs, &labels, |_| 1.0);
        assert_eq!(t, 0.0, "constant cost keeps the first (lowest) candidate");
    }

    #[test]
    fn scan_variant_matches_legacy_behaviour() {
        let probs = [0.1, 0.4, 0.6, 0.9];
        let (t, c) = optimal_threshold_scan(&probs, |t| (t - 0.6).abs());
        assert_eq!(t, 0.6);
        assert_eq!(c, 0.0);
        let (t, _) = optimal_threshold_scan(&[0.5], |t| 1.0 - t);
        assert_eq!(t, 1.0);
        let (t, _) = optimal_threshold_scan(&[0.2, 0.8], |_| 1.0);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn confusion_helpers_count_correctly() {
        let c = Confusion {
            true_positives: 2,
            false_positives: 3,
            true_negatives: 4,
            false_negatives: 1,
        };
        assert_eq!(c.total(), 10);
        assert_eq!(c.predicted_positives(), 5);
    }

    #[test]
    fn perturbation_moves_and_clamps() {
        assert!((perturb_threshold(0.5, 0.02) - 0.48).abs() < 1e-12);
        assert!((perturb_threshold(0.5, 0.05) - 0.45).abs() < 1e-12);
        assert_eq!(perturb_threshold(0.01, 0.05), 0.0);
        assert_eq!(perturb_threshold(0.7, 0.0), 0.7);
    }

    #[test]
    #[should_panic(expected = "at least one probability")]
    fn empty_probabilities_rejected() {
        optimal_threshold(&[], &[], |_| 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_labels_rejected() {
        optimal_threshold(&[0.5], &[true, false], |_| 0.0);
    }

    #[test]
    #[should_panic(expected = "threshold must be in")]
    fn out_of_range_threshold_rejected() {
        perturb_threshold(1.5, 0.02);
    }
}
