//! CART decision trees with Gini impurity.
//!
//! Fitting is allocation-lean: the tree works on an *index view* over one shared
//! [`Dataset`] (so bootstrap/under-sampled trees never copy the feature matrix), and
//! every feature column is sorted **once per tree**. At each split the per-feature
//! sorted orders are maintained by a stable partition into a reused scratch buffer —
//! `O(features · n)` per node instead of the `O(mtry · n log n)` full re-sort the
//! previous implementation paid at every node.
//!
//! On nodes with at least [`PARALLEL_SPLIT_MIN_SAMPLES`] samples, the candidate
//! features of `best_split` are evaluated in parallel via recursive [`rayon::join`]
//! over the (already rng-drawn) feature list; per-feature minima are reduced in
//! feature order with earlier features winning ties, so the chosen split — and hence
//! the whole tree — is bit-identical to the serial scan at any thread count.

use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a single decision tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (the root is depth 0).
    pub max_depth: usize,
    /// Minimum number of samples a leaf must hold.
    pub min_samples_leaf: usize,
    /// Number of features considered at each split (`None` = all features; random forests
    /// typically use `sqrt(n_features)`).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_leaf: 2,
            max_features: None,
        }
    }
}

/// One node of the fitted tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    /// A leaf storing the fraction of positive training samples that reached it.
    Leaf { probability: f64 },
    /// An internal split: samples with `feature < threshold` go left, the rest go right.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART decision tree for binary classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl DecisionTree {
    /// Fit a tree to a full dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn fit<R: Rng + ?Sized>(dataset: &Dataset, config: &TreeConfig, rng: &mut R) -> Self {
        assert!(!dataset.is_empty(), "cannot fit a tree to an empty dataset");
        let indices: Vec<usize> = (0..dataset.len()).collect();
        Self::fit_with_indices(dataset, &indices, config, rng)
    }

    /// Fit a tree to the samples selected by `samples` (duplicates allowed — this is how
    /// bootstrap resamples are expressed without copying the dataset).
    ///
    /// # Panics
    /// Panics if `samples` is empty or the dataset is empty.
    pub fn fit_with_indices<R: Rng + ?Sized>(
        dataset: &Dataset,
        samples: &[usize],
        config: &TreeConfig,
        rng: &mut R,
    ) -> Self {
        assert!(!dataset.is_empty(), "cannot fit a tree to an empty dataset");
        assert!(
            !samples.is_empty(),
            "cannot fit a tree to an empty sample view"
        );
        let mut builder = TreeBuilder::new(dataset, samples, config);
        builder.build(0, samples.len(), 0, rng);
        DecisionTree {
            nodes: builder.nodes,
            n_features: dataset.n_features(),
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: usize) -> usize {
            match nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, left).max(depth_of(nodes, right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Predicted probability that `features` belongs to the positive class.
    ///
    /// # Panics
    /// Panics if the feature dimension does not match the training data.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.n_features,
            "feature dimension mismatch"
        );
        let mut idx = 0;
        loop {
            match self.nodes[idx] {
                Node::Leaf { probability } => return probability,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[feature] < threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Gini impurity of a sample set described by its positive count and size.
    fn gini(positives: usize, total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let p = positives as f64 / total as f64;
        2.0 * p * (1.0 - p)
    }
}

/// Nodes smaller than this keep the serial feature scan: below it, the per-feature work
/// is too small to beat the queue round-trip of a `join`. The parallel reduction is
/// bit-identical to the serial scan, so neither this cutoff nor the thread-count
/// fast-path in the gate can affect results.
const PARALLEL_SPLIT_MIN_SAMPLES: usize = 2048;

/// Fitting state: per-feature sorted sample orders plus reused scratch buffers.
///
/// `sorted` holds one length-`m` block per feature; block `f` lists *positions* into
/// `samples` ordered by feature `f`'s value. Every tree node owns a contiguous range
/// `[lo, hi)` of **every** block (the same sample set, differently ordered), so a split
/// only needs a stable two-way partition of each block's range — no sorting.
struct TreeBuilder<'a> {
    dataset: &'a Dataset,
    samples: &'a [usize],
    config: &'a TreeConfig,
    nodes: Vec<Node>,
    /// `n_features` blocks of `m` positions each.
    sorted: Vec<u32>,
    /// Scratch for the stable partition (length `m`).
    scratch: Vec<u32>,
    /// `side[p]` = "position `p` goes left" for the split currently being applied.
    side: Vec<bool>,
    /// Reused candidate-feature buffer for the per-node `mtry` draw.
    feature_buf: Vec<usize>,
}

impl<'a> TreeBuilder<'a> {
    fn new(dataset: &'a Dataset, samples: &'a [usize], config: &'a TreeConfig) -> Self {
        let m = samples.len();
        let d = dataset.n_features();
        let mut sorted = Vec::with_capacity(d * m);
        let mut order: Vec<u32> = (0..m as u32).collect();
        for f in 0..d {
            order.clear();
            order.extend(0..m as u32);
            // Stable sort: ties keep position order, making the fit a pure function of
            // (dataset, samples, config, rng) regardless of thread count.
            order.sort_by(|&a, &b| {
                let va = dataset.value(samples[a as usize], f);
                let vb = dataset.value(samples[b as usize], f);
                va.partial_cmp(&vb).expect("finite features")
            });
            sorted.extend_from_slice(&order);
        }
        Self {
            dataset,
            samples,
            config,
            nodes: Vec::new(),
            sorted,
            scratch: vec![0; m],
            side: vec![false; m],
            feature_buf: Vec::with_capacity(d),
        }
    }

    #[inline]
    fn m(&self) -> usize {
        self.samples.len()
    }

    /// The sorted block of feature `f`, restricted to `[lo, hi)`.
    #[inline]
    fn block(&self, f: usize, lo: usize, hi: usize) -> &[u32] {
        let base = f * self.m();
        &self.sorted[base + lo..base + hi]
    }

    #[inline]
    fn label_at(&self, position: u32) -> bool {
        self.dataset.label_of(self.samples[position as usize])
    }

    #[inline]
    fn value_at(&self, position: u32, f: usize) -> f64 {
        self.dataset.value(self.samples[position as usize], f)
    }

    /// Recursively build the subtree for range `[lo, hi)`, returning the node index.
    fn build<R: Rng + ?Sized>(&mut self, lo: usize, hi: usize, depth: usize, rng: &mut R) -> usize {
        let n = hi - lo;
        let d = self.dataset.n_features();
        let positives = if d == 0 {
            // No features to sort by; count labels directly over the sample view.
            self.samples[lo..hi]
                .iter()
                .filter(|&&i| self.dataset.label_of(i))
                .count()
        } else {
            self.block(0, lo, hi)
                .iter()
                .filter(|&&p| self.label_at(p))
                .count()
        };
        let probability = positives as f64 / n as f64;

        // Stop if pure, featureless, too deep, or too small to split.
        let stop = d == 0
            || positives == 0
            || positives == n
            || depth >= self.config.max_depth
            || n < 2 * self.config.min_samples_leaf;
        if stop {
            self.nodes.push(Node::Leaf { probability });
            return self.nodes.len() - 1;
        }

        match self.best_split(lo, hi, positives, rng) {
            None => {
                self.nodes.push(Node::Leaf { probability });
                self.nodes.len() - 1
            }
            Some((feature, threshold)) => {
                let n_left = self.partition(lo, hi, feature, threshold);
                // Degenerate splits can happen with ties; fall back to a leaf.
                if n_left == 0 || n_left == n {
                    self.nodes.push(Node::Leaf { probability });
                    return self.nodes.len() - 1;
                }
                // Reserve this node's slot, then build children.
                let node_idx = self.nodes.len();
                self.nodes.push(Node::Leaf { probability });
                let left = self.build(lo, lo + n_left, depth + 1, rng);
                let right = self.build(lo + n_left, hi, depth + 1, rng);
                self.nodes[node_idx] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                node_idx
            }
        }
    }

    /// Find the `(feature, threshold)` split minimising the weighted Gini impurity over
    /// `[lo, hi)`, or `None` if no split improves on the parent. Walks each candidate
    /// feature's presorted order — no sorting, no allocation. Large nodes fan the
    /// feature scans out over the work-stealing pool; the reduction keeps the earliest
    /// feature on ties, so the result matches the serial scan bit-for-bit.
    fn best_split<R: Rng + ?Sized>(
        &mut self,
        lo: usize,
        hi: usize,
        total_pos: usize,
        rng: &mut R,
    ) -> Option<(usize, f64)> {
        let n = hi - lo;
        let d = self.dataset.n_features();
        let parent_gini = DecisionTree::gini(total_pos, n);

        // Select the candidate feature subset (mtry) into the reused buffer. This is the
        // only rng-dependent step, so it stays serial and the scans below are pure.
        self.feature_buf.clear();
        self.feature_buf.extend(0..d);
        if let Some(mtry) = self.config.max_features {
            self.feature_buf.shuffle(rng);
            self.feature_buf.truncate(mtry.clamp(1, d));
        }
        let features = std::mem::take(&mut self.feature_buf);

        // Accept splits that do not increase the weighted impurity (ties with the parent
        // are allowed: problems like XOR have zero first-level Gini gain but still need
        // the split so that deeper levels can separate the classes).
        let bound = parent_gini + 1e-9;
        let best = if n >= PARALLEL_SPLIT_MIN_SAMPLES
            && features.len() >= 2
            && rayon::current_num_threads() > 1
        {
            self.best_over_features(&features, lo, hi, total_pos, bound)
        } else {
            let mut best: Option<(usize, f64, f64)> = None;
            for &feature in &features {
                if let Some((weighted, threshold)) =
                    self.eval_feature(feature, lo, hi, total_pos, bound)
                {
                    if best.map(|(_, w, _)| weighted < w).unwrap_or(true) {
                        best = Some((feature, weighted, threshold));
                    }
                }
            }
            best
        };
        self.feature_buf = features;
        best.map(|(feature, _, threshold)| (feature, threshold))
    }

    /// The per-feature minimum of [`Self::eval_feature`] over `features`, reduced by
    /// recursive `rayon::join` halving. The combine prefers the left (earlier) half on
    /// equal impurity, which is exactly the tie-break of a serial left-to-right scan
    /// with strict improvement — so the parallel reduction is bit-identical to it.
    fn best_over_features(
        &self,
        features: &[usize],
        lo: usize,
        hi: usize,
        total_pos: usize,
        bound: f64,
    ) -> Option<(usize, f64, f64)> {
        if features.len() <= 1 {
            let feature = *features.first()?;
            return self
                .eval_feature(feature, lo, hi, total_pos, bound)
                .map(|(weighted, threshold)| (feature, weighted, threshold));
        }
        let mid = features.len() / 2;
        let (left_features, right_features) = features.split_at(mid);
        let (left, right) = rayon::join(
            || self.best_over_features(left_features, lo, hi, total_pos, bound),
            || self.best_over_features(right_features, lo, hi, total_pos, bound),
        );
        match (left, right) {
            (Some(l), Some(r)) => Some(if l.1 <= r.1 { l } else { r }),
            (l, r) => l.or(r),
        }
    }

    /// Scan one feature's presorted order over `[lo, hi)` for its impurity-minimal
    /// valid split strictly below `bound`, returning `(weighted_gini, threshold)` of
    /// the first position achieving that minimum. Pure (`&self`), so candidate features
    /// can scan concurrently.
    fn eval_feature(
        &self,
        feature: usize,
        lo: usize,
        hi: usize,
        total_pos: usize,
        bound: f64,
    ) -> Option<(f64, f64)> {
        let n = hi - lo;
        let block = self.block(feature, lo, hi);
        let mut best: Option<(f64, f64)> = None;
        let mut best_gini = bound;
        let mut left_pos = 0usize;
        let mut prev_value = self.value_at(block[0], feature);
        for split_at in 1..n {
            if self.label_at(block[split_at - 1]) {
                left_pos += 1;
            }
            let this_value = self.value_at(block[split_at], feature);
            let boundary = prev_value != this_value;
            let last_prev = prev_value;
            prev_value = this_value;
            if !boundary {
                continue; // cannot split between equal values
            }
            let left_n = split_at;
            let right_n = n - split_at;
            if left_n < self.config.min_samples_leaf || right_n < self.config.min_samples_leaf {
                continue;
            }
            let right_pos = total_pos - left_pos;
            let weighted = (left_n as f64 * DecisionTree::gini(left_pos, left_n)
                + right_n as f64 * DecisionTree::gini(right_pos, right_n))
                / n as f64;
            if weighted < best_gini {
                let threshold = (last_prev + this_value) / 2.0;
                best = Some((weighted, threshold));
                best_gini = weighted;
            }
        }
        best
    }

    /// Stable-partition every feature's sorted range `[lo, hi)` by
    /// `value(·, feature) < threshold`, preserving each side's sorted order. Returns the
    /// left-side count.
    fn partition(&mut self, lo: usize, hi: usize, feature: usize, threshold: f64) -> usize {
        let m = self.m();
        let d = self.dataset.n_features();
        // Mark which side each position of this node goes to (positions are shared by
        // every feature block).
        let mut n_left = 0usize;
        {
            let base = feature * m;
            for k in lo..hi {
                let p = self.sorted[base + k];
                let goes_left = self.value_at(p, feature) < threshold;
                self.side[p as usize] = goes_left;
                n_left += usize::from(goes_left);
            }
        }
        if n_left == 0 || n_left == hi - lo {
            return n_left;
        }
        // Stable two-way partition of each block through the scratch buffer.
        for f in 0..d {
            let base = f * m;
            let mut left_cursor = 0usize;
            let mut right_cursor = n_left;
            for k in lo..hi {
                let p = self.sorted[base + k];
                if self.side[p as usize] {
                    self.scratch[left_cursor] = p;
                    left_cursor += 1;
                } else {
                    self.scratch[right_cursor] = p;
                    right_cursor += 1;
                }
            }
            self.sorted[base + lo..base + hi].copy_from_slice(&self.scratch[..hi - lo]);
        }
        n_left
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Linearly separable data: positive iff x0 > 0.5.
    fn separable(n: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n {
            let x = i as f64 / n as f64;
            d.push(vec![x, 0.3], x > 0.5);
        }
        d
    }

    #[test]
    fn learns_a_separable_boundary() {
        let d = separable(100);
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng);
        assert!(tree.predict_proba(&[0.9, 0.3]) > 0.9);
        assert!(tree.predict_proba(&[0.1, 0.3]) < 0.1);
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn pure_dataset_yields_single_leaf() {
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(vec![i as f64], false);
        }
        let mut rng = StdRng::seed_from_u64(2);
        let tree = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_proba(&[3.0]), 0.0);
    }

    #[test]
    fn max_depth_limits_the_tree() {
        let d = separable(200);
        let mut rng = StdRng::seed_from_u64(3);
        let config = TreeConfig {
            max_depth: 1,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&d, &config, &mut rng);
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn min_samples_leaf_prevents_tiny_leaves() {
        let d = separable(20);
        let mut rng = StdRng::seed_from_u64(4);
        let config = TreeConfig {
            min_samples_leaf: 10,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&d, &config, &mut rng);
        // With 20 samples and a 10-sample minimum there is exactly one possible split.
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn xor_needs_depth_two() {
        // XOR of two binary features: not linearly separable, needs nested splits.
        let mut d = Dataset::new();
        for &(a, b) in &[(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for _ in 0..10 {
                d.push(vec![a, b], (a > 0.5) != (b > 0.5));
            }
        }
        let mut rng = StdRng::seed_from_u64(5);
        let config = TreeConfig {
            min_samples_leaf: 1,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&d, &config, &mut rng);
        assert!(tree.depth() >= 2);
        assert!(tree.predict_proba(&[0.0, 1.0]) > 0.9);
        assert!(tree.predict_proba(&[1.0, 1.0]) < 0.1);
    }

    #[test]
    fn feature_subsampling_still_learns() {
        // Both features carry the signal, so whichever one the per-node subsample keeps,
        // the split separates the classes.
        let mut d = Dataset::new();
        for i in 0..100 {
            let x = i as f64 / 100.0;
            d.push(vec![x, x + 0.01], x > 0.5);
        }
        let mut rng = StdRng::seed_from_u64(6);
        let config = TreeConfig {
            max_features: Some(1),
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&d, &config, &mut rng);
        assert!(tree.predict_proba(&[0.95, 0.96]) > 0.9);
        assert!(tree.predict_proba(&[0.05, 0.06]) < 0.1);
    }

    #[test]
    fn index_view_fit_matches_subset_fit() {
        // Fitting on an index view must behave like fitting on the materialised subset:
        // same RNG, same sample multiset, same resulting predictions.
        let d = separable(60);
        let view: Vec<usize> = (0..60).filter(|i| i % 3 != 0).collect();
        let materialised = d.subset(&view);
        let tree_view = DecisionTree::fit_with_indices(
            &d,
            &view,
            &TreeConfig::default(),
            &mut StdRng::seed_from_u64(9),
        );
        let tree_mat = DecisionTree::fit(
            &materialised,
            &TreeConfig::default(),
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(tree_view, tree_mat);
    }

    #[test]
    fn duplicate_indices_act_as_bootstrap_weights() {
        // Repeating a sample shifts the leaf probability exactly as a copy would.
        let d = separable(20);
        let doubled: Vec<usize> = (0..20).chain(0..20).collect();
        let tree = DecisionTree::fit_with_indices(
            &d,
            &doubled,
            &TreeConfig::default(),
            &mut StdRng::seed_from_u64(10),
        );
        assert!(tree.predict_proba(&[0.9, 0.3]) > 0.9);
        assert!(tree.predict_proba(&[0.1, 0.3]) < 0.1);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_dimension_rejected_at_prediction() {
        let d = separable(10);
        let mut rng = StdRng::seed_from_u64(7);
        let tree = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng);
        tree.predict_proba(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        DecisionTree::fit(&Dataset::new(), &TreeConfig::default(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "empty sample view")]
    fn empty_view_rejected() {
        let d = separable(10);
        let mut rng = StdRng::seed_from_u64(8);
        DecisionTree::fit_with_indices(&d, &[], &TreeConfig::default(), &mut rng);
    }
}
