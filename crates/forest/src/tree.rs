//! CART decision trees with Gini impurity.

use crate::dataset::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of a single decision tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (the root is depth 0).
    pub max_depth: usize,
    /// Minimum number of samples a leaf must hold.
    pub min_samples_leaf: usize,
    /// Number of features considered at each split (`None` = all features; random forests
    /// typically use `sqrt(n_features)`).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 12,
            min_samples_leaf: 2,
            max_features: None,
        }
    }
}

/// One node of the fitted tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    /// A leaf storing the fraction of positive training samples that reached it.
    Leaf { probability: f64 },
    /// An internal split: samples with `feature < threshold` go left, the rest go right.
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART decision tree for binary classification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl DecisionTree {
    /// Fit a tree to a dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn fit<R: Rng + ?Sized>(dataset: &Dataset, config: &TreeConfig, rng: &mut R) -> Self {
        assert!(!dataset.is_empty(), "cannot fit a tree to an empty dataset");
        let indices: Vec<usize> = (0..dataset.len()).collect();
        let mut tree = Self {
            nodes: Vec::new(),
            n_features: dataset.n_features(),
        };
        tree.build(dataset, &indices, config, 0, rng);
        tree
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], idx: usize) -> usize {
            match nodes[idx] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, left).max(depth_of(nodes, right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }

    /// Predicted probability that `features` belongs to the positive class.
    ///
    /// # Panics
    /// Panics if the feature dimension does not match the training data.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.n_features, "feature dimension mismatch");
        let mut idx = 0;
        loop {
            match self.nodes[idx] {
                Node::Leaf { probability } => return probability,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if features[feature] < threshold { left } else { right };
                }
            }
        }
    }

    /// Gini impurity of a sample set described by its positive count and size.
    fn gini(positives: usize, total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let p = positives as f64 / total as f64;
        2.0 * p * (1.0 - p)
    }

    /// Recursively build the subtree for `indices`, returning the node index.
    fn build<R: Rng + ?Sized>(
        &mut self,
        dataset: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        depth: usize,
        rng: &mut R,
    ) -> usize {
        let positives = indices.iter().filter(|&&i| dataset.label_of(i)).count();
        let probability = positives as f64 / indices.len() as f64;

        // Stop if pure, too deep, or too small to split.
        let stop = positives == 0
            || positives == indices.len()
            || depth >= config.max_depth
            || indices.len() < 2 * config.min_samples_leaf;
        if stop {
            self.nodes.push(Node::Leaf { probability });
            return self.nodes.len() - 1;
        }

        match self.best_split(dataset, indices, config, rng) {
            None => {
                self.nodes.push(Node::Leaf { probability });
                self.nodes.len() - 1
            }
            Some((feature, threshold)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| dataset.features_of(i)[feature] < threshold);
                // Degenerate splits can happen with ties; fall back to a leaf.
                if left_idx.is_empty() || right_idx.is_empty() {
                    self.nodes.push(Node::Leaf { probability });
                    return self.nodes.len() - 1;
                }
                // Reserve this node's slot, then build children.
                let node_idx = self.nodes.len();
                self.nodes.push(Node::Leaf { probability });
                let left = self.build(dataset, &left_idx, config, depth + 1, rng);
                let right = self.build(dataset, &right_idx, config, depth + 1, rng);
                self.nodes[node_idx] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                node_idx
            }
        }
    }

    /// Find the `(feature, threshold)` split minimising the weighted Gini impurity, or
    /// `None` if no split improves on the parent.
    fn best_split<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        indices: &[usize],
        config: &TreeConfig,
        rng: &mut R,
    ) -> Option<(usize, f64)> {
        let n = indices.len();
        let total_pos = indices.iter().filter(|&&i| dataset.label_of(i)).count();
        let parent_gini = Self::gini(total_pos, n);

        // Select the candidate feature subset (mtry).
        let mut features: Vec<usize> = (0..dataset.n_features()).collect();
        if let Some(mtry) = config.max_features {
            features.shuffle(rng);
            features.truncate(mtry.clamp(1, dataset.n_features()));
        }

        // Accept splits that do not increase the weighted impurity (ties with the parent
        // are allowed: problems like XOR have zero first-level Gini gain but still need
        // the split so that deeper levels can separate the classes).
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gini)
        let mut best_gini = parent_gini + 1e-9;
        for &feature in &features {
            // Sort the samples by this feature.
            let mut sorted: Vec<usize> = indices.to_vec();
            sorted.sort_by(|&a, &b| {
                dataset.features_of(a)[feature]
                    .partial_cmp(&dataset.features_of(b)[feature])
                    .expect("finite features")
            });
            let mut left_pos = 0usize;
            for split_at in 1..n {
                let prev = sorted[split_at - 1];
                if dataset.label_of(prev) {
                    left_pos += 1;
                }
                let prev_value = dataset.features_of(prev)[feature];
                let this_value = dataset.features_of(sorted[split_at])[feature];
                if prev_value == this_value {
                    continue; // cannot split between equal values
                }
                let left_n = split_at;
                let right_n = n - split_at;
                if left_n < config.min_samples_leaf || right_n < config.min_samples_leaf {
                    continue;
                }
                let right_pos = total_pos - left_pos;
                let weighted = (left_n as f64 * Self::gini(left_pos, left_n)
                    + right_n as f64 * Self::gini(right_pos, right_n))
                    / n as f64;
                if weighted < best_gini {
                    let threshold = (prev_value + this_value) / 2.0;
                    best = Some((feature, threshold, weighted));
                    best_gini = weighted;
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Linearly separable data: positive iff x0 > 0.5.
    fn separable(n: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n {
            let x = i as f64 / n as f64;
            d.push(vec![x, 0.3], x > 0.5);
        }
        d
    }

    #[test]
    fn learns_a_separable_boundary() {
        let d = separable(100);
        let mut rng = StdRng::seed_from_u64(1);
        let tree = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng);
        assert!(tree.predict_proba(&[0.9, 0.3]) > 0.9);
        assert!(tree.predict_proba(&[0.1, 0.3]) < 0.1);
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn pure_dataset_yields_single_leaf() {
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(vec![i as f64], false);
        }
        let mut rng = StdRng::seed_from_u64(2);
        let tree = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_proba(&[3.0]), 0.0);
    }

    #[test]
    fn max_depth_limits_the_tree() {
        let d = separable(200);
        let mut rng = StdRng::seed_from_u64(3);
        let config = TreeConfig {
            max_depth: 1,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&d, &config, &mut rng);
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn min_samples_leaf_prevents_tiny_leaves() {
        let d = separable(20);
        let mut rng = StdRng::seed_from_u64(4);
        let config = TreeConfig {
            min_samples_leaf: 10,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&d, &config, &mut rng);
        // With 20 samples and a 10-sample minimum there is exactly one possible split.
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn xor_needs_depth_two() {
        // XOR of two binary features: not linearly separable, needs nested splits.
        let mut d = Dataset::new();
        for &(a, b) in &[(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            for _ in 0..10 {
                d.push(vec![a, b], (a > 0.5) != (b > 0.5));
            }
        }
        let mut rng = StdRng::seed_from_u64(5);
        let config = TreeConfig {
            min_samples_leaf: 1,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&d, &config, &mut rng);
        assert!(tree.depth() >= 2);
        assert!(tree.predict_proba(&[0.0, 1.0]) > 0.9);
        assert!(tree.predict_proba(&[1.0, 1.0]) < 0.1);
    }

    #[test]
    fn feature_subsampling_still_learns() {
        // Both features carry the signal, so whichever one the per-node subsample keeps,
        // the split separates the classes.
        let mut d = Dataset::new();
        for i in 0..100 {
            let x = i as f64 / 100.0;
            d.push(vec![x, x + 0.01], x > 0.5);
        }
        let mut rng = StdRng::seed_from_u64(6);
        let config = TreeConfig {
            max_features: Some(1),
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&d, &config, &mut rng);
        assert!(tree.predict_proba(&[0.95, 0.96]) > 0.9);
        assert!(tree.predict_proba(&[0.05, 0.06]) < 0.1);
    }

    #[test]
    #[should_panic(expected = "feature dimension mismatch")]
    fn wrong_dimension_rejected_at_prediction() {
        let d = separable(10);
        let mut rng = StdRng::seed_from_u64(7);
        let tree = DecisionTree::fit(&d, &TreeConfig::default(), &mut rng);
        tree.predict_proba(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let mut rng = StdRng::seed_from_u64(8);
        DecisionTree::fit(&Dataset::new(), &TreeConfig::default(), &mut rng);
    }
}
