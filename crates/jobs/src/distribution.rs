//! The workload mix: job node-count and wallclock distributions.
//!
//! HPC job sizes and durations are known to span orders of magnitude (the paper cites
//! NERSC, NSF and national-lab studies); MareNostrum's general-purpose block runs mostly
//! small-to-medium jobs with a heavy tail, and the largest single job cost observed in
//! the paper's data is about 32,000 node-hours. [`JobMix`] captures that shape with a
//! truncated-Pareto node-count distribution and a log-normal wallclock distribution, and
//! exposes the *job-size scaling factor* knob used by the Section 5.6 sensitivity
//! analysis.

use rand::Rng;
use serde::{Deserialize, Serialize};
use uerl_stats::{Distribution, LogNormal, Pareto};
use uerl_trace::types::SimTime;

/// Parameters describing a workload mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobMix {
    /// Pareto shape for the node count (smaller = heavier tail).
    pub size_alpha: f64,
    /// Maximum number of nodes a single job may use.
    pub max_nodes: u32,
    /// Median wallclock duration in hours.
    pub median_wallclock_hours: f64,
    /// 95th-percentile wallclock duration in hours.
    pub p95_wallclock_hours: f64,
    /// Maximum wallclock in hours (scheduler limit; MareNostrum enforces 72 h).
    pub max_wallclock_hours: f64,
    /// Multiplier applied to every sampled node count (the job-size scaling factor of the
    /// sensitivity analysis; 1.0 reproduces the base distribution).
    pub size_scaling: f64,
}

impl JobMix {
    /// The MareNostrum-4-like default mix: most jobs use a handful of nodes, a few use
    /// hundreds; median runtime of a couple of hours with a tail up to the 72 h limit.
    /// With these parameters the largest job costs are in the tens of thousands of
    /// node-hours, matching the 32,000 node-hour maximum reported in the paper.
    pub fn marenostrum4() -> Self {
        Self {
            size_alpha: 0.95,
            max_nodes: 768,
            median_wallclock_hours: 2.5,
            p95_wallclock_hours: 40.0,
            max_wallclock_hours: 72.0,
            size_scaling: 1.0,
        }
    }

    /// A copy of this mix with the job-size scaling factor replaced.
    ///
    /// # Panics
    /// Panics if the factor is not strictly positive and finite.
    pub fn with_size_scaling(self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scaling factor must be positive"
        );
        Self {
            size_scaling: factor,
            ..self
        }
    }

    /// Sample the shape of one job: `(nodes, wallclock_secs)`.
    pub fn sample_shape<R: Rng + ?Sized>(&self, rng: &mut R) -> (u32, i64) {
        let size = Pareto::new(1.0, self.size_alpha).sample(rng);
        let nodes_unscaled = size.min(self.max_nodes as f64);
        let nodes = ((nodes_unscaled * self.size_scaling).round() as u32).max(1);

        let wallclock_h =
            LogNormal::from_median_p95(self.median_wallclock_hours, self.p95_wallclock_hours)
                .sample(rng)
                .clamp(0.05, self.max_wallclock_hours);
        let wallclock_secs = (wallclock_h * SimTime::HOUR as f64).round() as i64;
        (nodes, wallclock_secs.max(SimTime::MINUTE))
    }

    /// Expected node-hours of a single job, estimated by Monte Carlo with `n` samples.
    pub fn mean_job_node_hours<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> f64 {
        let mut total = 0.0;
        for _ in 0..n.max(1) {
            let (nodes, secs) = self.sample_shape(rng);
            total += nodes as f64 * secs as f64 / SimTime::HOUR as f64;
        }
        total / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn shapes_respect_limits() {
        let mix = JobMix::marenostrum4();
        let mut r = rng();
        for _ in 0..5000 {
            let (nodes, secs) = mix.sample_shape(&mut r);
            assert!(nodes >= 1 && nodes <= mix.max_nodes);
            assert!(secs >= SimTime::MINUTE);
            assert!(secs <= (mix.max_wallclock_hours * SimTime::HOUR as f64) as i64 + 1);
        }
    }

    #[test]
    fn node_counts_span_orders_of_magnitude() {
        let mix = JobMix::marenostrum4();
        let mut r = rng();
        let sizes: Vec<u32> = (0..20_000).map(|_| mix.sample_shape(&mut r).0).collect();
        let small = sizes.iter().filter(|&&n| n <= 2).count();
        let large = sizes.iter().filter(|&&n| n >= 100).count();
        assert!(small > sizes.len() / 3, "most jobs should be small");
        assert!(large > 0, "some jobs should be large");
    }

    #[test]
    fn scaling_multiplies_sizes() {
        let base = JobMix::marenostrum4();
        let scaled = base.with_size_scaling(10.0);
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..500 {
            let (n1, d1) = base.sample_shape(&mut r1);
            let (n10, d10) = scaled.sample_shape(&mut r2);
            assert_eq!(d1, d10, "durations are not affected by size scaling");
            // The scaled size is 10x the unscaled (before rounding/min-clamping).
            assert!(n10 >= n1, "scaled node count should not shrink");
        }
    }

    #[test]
    fn down_scaling_never_drops_below_one_node() {
        let mix = JobMix::marenostrum4().with_size_scaling(0.1);
        let mut r = rng();
        for _ in 0..2000 {
            assert!(mix.sample_shape(&mut r).0 >= 1);
        }
    }

    #[test]
    fn mean_job_node_hours_is_positive_and_scales() {
        let mut r = rng();
        let base = JobMix::marenostrum4().mean_job_node_hours(&mut r, 5000);
        assert!(base > 1.0, "mean node-hours {base}");
        let mut r = rng();
        let scaled = JobMix::marenostrum4()
            .with_size_scaling(10.0)
            .mean_job_node_hours(&mut r, 5000);
        assert!(scaled > 3.0 * base, "scaling up should raise mean cost");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scaling_rejected() {
        JobMix::marenostrum4().with_size_scaling(0.0);
    }
}
