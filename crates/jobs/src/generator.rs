//! Synthetic MareNostrum-4-like job-log generator.
//!
//! Generates a year-long `sacct`-style accounting log for a machine of a given size by
//! drawing job shapes from a [`JobMix`] until the requested utilisation is reached, then
//! spreading the jobs' start times over the window. The generator does not model the
//! scheduler's packing decisions — the downstream consumer (the node job-sequence sampler
//! of Section 3.3.3) only needs the *distribution* of job shapes weighted by node count,
//! not a feasible placement.

use crate::distribution::JobMix;
use crate::job::{JobLog, JobRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use uerl_stats::{Distribution, Exponential};
use uerl_trace::types::SimTime;

/// Configuration of the job-log generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobLogConfig {
    /// Number of nodes of the machine.
    pub machine_nodes: u32,
    /// Start of the accounting window.
    pub window_start: SimTime,
    /// End of the accounting window.
    pub window_end: SimTime,
    /// Workload mix.
    pub mix: JobMix,
    /// Target system utilisation (fraction of available node-hours consumed).
    pub target_utilization: f64,
    /// Mean queue wait time in minutes (only affects the submit timestamps).
    pub mean_wait_minutes: f64,
    /// RNG seed.
    pub seed: u64,
}

impl JobLogConfig {
    /// The MareNostrum 4 general-purpose block preset: 3456 nodes over one year at ≥95%
    /// utilisation.
    pub fn marenostrum4(seed: u64) -> Self {
        Self {
            machine_nodes: 3456,
            window_start: SimTime::ZERO,
            window_end: SimTime::from_days(365),
            mix: JobMix::marenostrum4(),
            target_utilization: 0.95,
            mean_wait_minutes: 90.0,
            seed,
        }
    }

    /// A small preset for tests and examples.
    pub fn small(machine_nodes: u32, days: i64, seed: u64) -> Self {
        Self {
            machine_nodes: machine_nodes.max(1),
            window_start: SimTime::ZERO,
            window_end: SimTime::from_days(days.max(1)),
            mix: JobMix::marenostrum4(),
            target_utilization: 0.95,
            mean_wait_minutes: 30.0,
            seed,
        }
    }

    /// Available capacity of the machine over the window, in node-hours.
    pub fn capacity_node_hours(&self) -> f64 {
        self.machine_nodes as f64
            * ((self.window_end - self.window_start) as f64 / SimTime::HOUR as f64)
    }
}

/// The job-log generator.
#[derive(Debug, Clone)]
pub struct JobTraceGenerator {
    config: JobLogConfig,
}

impl JobTraceGenerator {
    /// Create a generator.
    ///
    /// # Panics
    /// Panics if the window is empty, the machine has no nodes, or the target utilisation
    /// is not in `(0, 1]`.
    pub fn new(config: JobLogConfig) -> Self {
        assert!(
            config.window_end > config.window_start,
            "window must be non-empty"
        );
        assert!(config.machine_nodes > 0, "machine must have nodes");
        assert!(
            config.target_utilization > 0.0 && config.target_utilization <= 1.0,
            "target utilisation must be in (0, 1]"
        );
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &JobLogConfig {
        &self.config
    }

    /// Generate the job log.
    pub fn generate(&self) -> JobLog {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let target_node_hours = cfg.capacity_node_hours() * cfg.target_utilization;
        let wait = Exponential::from_mean((cfg.mean_wait_minutes * 60.0).max(1.0));
        let window_secs = cfg.window_end - cfg.window_start;

        let mut records = Vec::new();
        let mut consumed = 0.0;
        let mut job_id = 1u64;
        while consumed < target_node_hours {
            let (nodes, wallclock_secs) = cfg.mix.sample_shape(&mut rng);
            let nodes = nodes.min(cfg.machine_nodes);
            // Uniform start so that the job finishes inside the window.
            let latest_start = (window_secs - wallclock_secs).max(1);
            let start_offset = rng.gen_range(0..latest_start);
            let start = cfg.window_start.plus_secs(start_offset);
            let end = start.plus_secs(wallclock_secs);
            let submit = start
                .plus_secs(-(wait.sample(&mut rng) as i64))
                .max(cfg.window_start);
            let record = JobRecord::new(job_id, submit, start, end, nodes);
            consumed += record.node_hours();
            records.push(record);
            job_id += 1;
        }

        JobLog::new(records, cfg.window_start, cfg.window_end, cfg.machine_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_log(seed: u64) -> JobLog {
        JobTraceGenerator::new(JobLogConfig::small(64, 30, seed)).generate()
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(small_log(5).records(), small_log(5).records());
        assert_ne!(small_log(5).records(), small_log(6).records());
    }

    #[test]
    fn jobs_fit_inside_the_window() {
        let log = small_log(1);
        for r in log.records() {
            assert!(r.submit >= log.window_start());
            assert!(r.start >= log.window_start());
            assert!(r.end <= log.window_end());
            assert!(r.nodes <= log.machine_nodes());
        }
    }

    #[test]
    fn utilization_reaches_target() {
        let log = small_log(2);
        // The generator overshoots by at most one job, so utilisation lands at or just
        // above 95%.
        assert!(
            log.utilization() >= 0.95,
            "utilisation {}",
            log.utilization()
        );
        assert!(log.utilization() < 1.5, "utilisation {}", log.utilization());
    }

    #[test]
    fn job_population_is_heterogeneous() {
        let log = small_log(3);
        assert!(log.len() > 50, "expected many jobs, got {}", log.len());
        let sizes = log.node_count_ecdf();
        assert!(sizes.max() > sizes.min(), "node counts should vary");
        let durations = log.wallclock_hours_ecdf();
        assert!(
            durations.max() / durations.min() > 5.0,
            "durations should span a wide range"
        );
    }

    #[test]
    fn capacity_calculation() {
        let cfg = JobLogConfig::small(10, 10, 1);
        assert!((cfg.capacity_node_hours() - 10.0 * 240.0).abs() < 1e-9);
    }

    #[test]
    fn marenostrum4_preset_shape() {
        let cfg = JobLogConfig::marenostrum4(1);
        assert_eq!(cfg.machine_nodes, 3456);
        assert!((cfg.capacity_node_hours() - 3456.0 * 365.0 * 24.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "utilisation must be in")]
    fn bad_utilization_rejected() {
        JobTraceGenerator::new(JobLogConfig {
            target_utilization: 0.0,
            ..JobLogConfig::small(4, 4, 1)
        });
    }
}
