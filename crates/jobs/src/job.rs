//! Job records and the job-log container.

use serde::{Deserialize, Serialize};
use uerl_stats::Ecdf;
use uerl_trace::types::SimTime;

/// One accounting record of a batch job, as reported by `sacct`: submission, start and
/// end times plus the number of allocated nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Scheduler-assigned job id.
    pub job_id: u64,
    /// Submission time.
    pub submit: SimTime,
    /// Start of execution.
    pub start: SimTime,
    /// End of execution.
    pub end: SimTime,
    /// Number of allocated nodes.
    pub nodes: u32,
}

impl JobRecord {
    /// Construct a record.
    ///
    /// # Panics
    /// Panics if the times are inconsistent (`submit > start` or `start > end`) or the
    /// node count is zero.
    pub fn new(job_id: u64, submit: SimTime, start: SimTime, end: SimTime, nodes: u32) -> Self {
        assert!(submit <= start, "job {job_id}: submit after start");
        assert!(start <= end, "job {job_id}: start after end");
        assert!(nodes > 0, "job {job_id}: zero nodes");
        Self {
            job_id,
            submit,
            start,
            end,
            nodes,
        }
    }

    /// Wallclock duration in seconds.
    pub fn wallclock_secs(&self) -> i64 {
        self.end - self.start
    }

    /// Wallclock duration in hours.
    pub fn wallclock_hours(&self) -> f64 {
        self.wallclock_secs() as f64 / SimTime::HOUR as f64
    }

    /// Total node-hours consumed by the job.
    pub fn node_hours(&self) -> f64 {
        self.nodes as f64 * self.wallclock_hours()
    }

    /// Queue wait time in seconds.
    pub fn wait_secs(&self) -> i64 {
        self.start - self.submit
    }

    /// Whether the job is running at instant `t` (half-open interval `[start, end)`).
    pub fn running_at(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// A copy of this record with the node count multiplied by `factor` (at least one
    /// node). This is the job-size scaling operation of the sensitivity analysis.
    pub fn scaled_nodes(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        Self {
            nodes: ((self.nodes as f64 * factor).round() as u32).max(1),
            ..*self
        }
    }
}

/// A complete job log: the records plus the window they were collected over and the size
/// of the machine they ran on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobLog {
    records: Vec<JobRecord>,
    window_start: SimTime,
    window_end: SimTime,
    machine_nodes: u32,
}

impl JobLog {
    /// Build a log from records (sorted internally by start time).
    ///
    /// # Panics
    /// Panics if the window is empty or `machine_nodes` is zero.
    pub fn new(
        mut records: Vec<JobRecord>,
        window_start: SimTime,
        window_end: SimTime,
        machine_nodes: u32,
    ) -> Self {
        assert!(
            window_end > window_start,
            "job-log window must be non-empty"
        );
        assert!(machine_nodes > 0, "machine must have nodes");
        records.sort_by_key(|r| (r.start, r.job_id));
        Self {
            records,
            window_start,
            window_end,
            machine_nodes,
        }
    }

    /// The records, sorted by start time.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Start of the collection window.
    pub fn window_start(&self) -> SimTime {
        self.window_start
    }

    /// End of the collection window.
    pub fn window_end(&self) -> SimTime {
        self.window_end
    }

    /// Number of nodes of the machine the log was collected on.
    pub fn machine_nodes(&self) -> u32 {
        self.machine_nodes
    }

    /// Total node-hours consumed by all jobs.
    pub fn total_node_hours(&self) -> f64 {
        self.records.iter().map(|r| r.node_hours()).sum()
    }

    /// System utilisation: consumed node-hours over available node-hours in the window.
    pub fn utilization(&self) -> f64 {
        let capacity = self.machine_nodes as f64
            * ((self.window_end - self.window_start) as f64 / SimTime::HOUR as f64);
        if capacity <= 0.0 {
            0.0
        } else {
            self.total_node_hours() / capacity
        }
    }

    /// Empirical distribution of job node counts.
    pub fn node_count_ecdf(&self) -> Ecdf {
        Ecdf::new(
            &self
                .records
                .iter()
                .map(|r| r.nodes as f64)
                .collect::<Vec<_>>(),
        )
    }

    /// Empirical distribution of job wallclock durations (hours).
    pub fn wallclock_hours_ecdf(&self) -> Ecdf {
        Ecdf::new(
            &self
                .records
                .iter()
                .map(|r| r.wallclock_hours())
                .collect::<Vec<_>>(),
        )
    }

    /// A copy of this log with every job's node count scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            records: self
                .records
                .iter()
                .map(|r| r.scaled_nodes(factor))
                .collect(),
            ..*self
        }
    }

    /// Maximum single-job cost in node-hours (the paper reports 32,000 node-hours for the
    /// MareNostrum 4 distribution).
    pub fn max_job_node_hours(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.node_hours())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, start_h: i64, dur_h: i64, nodes: u32) -> JobRecord {
        JobRecord::new(
            id,
            SimTime::from_hours(start_h - 1),
            SimTime::from_hours(start_h),
            SimTime::from_hours(start_h + dur_h),
            nodes,
        )
    }

    #[test]
    fn record_durations_and_cost() {
        let r = rec(1, 10, 5, 16);
        assert_eq!(r.wallclock_secs(), 5 * SimTime::HOUR);
        assert!((r.wallclock_hours() - 5.0).abs() < 1e-12);
        assert!((r.node_hours() - 80.0).abs() < 1e-12);
        assert_eq!(r.wait_secs(), SimTime::HOUR);
    }

    #[test]
    fn running_at_is_half_open() {
        let r = rec(1, 10, 5, 1);
        assert!(!r.running_at(SimTime::from_hours(9)));
        assert!(r.running_at(SimTime::from_hours(10)));
        assert!(r.running_at(SimTime::from_hours(14)));
        assert!(!r.running_at(SimTime::from_hours(15)));
    }

    #[test]
    fn scaling_rounds_and_clamps() {
        let r = rec(1, 0, 1, 3);
        assert_eq!(r.scaled_nodes(10.0).nodes, 30);
        assert_eq!(r.scaled_nodes(0.1).nodes, 1, "never below one node");
        assert_eq!(r.scaled_nodes(0.5).nodes, 2);
    }

    #[test]
    #[should_panic(expected = "zero nodes")]
    fn zero_node_job_rejected() {
        rec(1, 0, 1, 0);
    }

    #[test]
    #[should_panic(expected = "start after end")]
    fn inverted_times_rejected() {
        JobRecord::new(
            1,
            SimTime::ZERO,
            SimTime::from_hours(2),
            SimTime::from_hours(1),
            1,
        );
    }

    #[test]
    fn log_sorts_and_summarises() {
        let log = JobLog::new(
            vec![rec(2, 10, 2, 4), rec(1, 5, 1, 2)],
            SimTime::ZERO,
            SimTime::from_hours(24),
            10,
        );
        assert_eq!(log.records()[0].job_id, 1);
        assert_eq!(log.len(), 2);
        assert!((log.total_node_hours() - 10.0).abs() < 1e-12);
        // 10 node-hours over a 10-node, 24-hour window.
        assert!((log.utilization() - 10.0 / 240.0).abs() < 1e-12);
        assert!((log.max_job_node_hours() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn ecdfs_reflect_records() {
        let log = JobLog::new(
            vec![rec(1, 0, 1, 1), rec(2, 0, 2, 4), rec(3, 0, 4, 16)],
            SimTime::ZERO,
            SimTime::from_hours(24),
            32,
        );
        let sizes = log.node_count_ecdf();
        assert_eq!(sizes.min(), 1.0);
        assert_eq!(sizes.max(), 16.0);
        let durs = log.wallclock_hours_ecdf();
        assert_eq!(durs.max(), 4.0);
    }

    #[test]
    fn whole_log_scaling() {
        let log = JobLog::new(
            vec![rec(1, 0, 1, 2), rec(2, 0, 1, 8)],
            SimTime::ZERO,
            SimTime::from_hours(4),
            16,
        );
        let scaled = log.scaled(3.0);
        assert_eq!(scaled.records()[0].nodes, 6);
        assert_eq!(scaled.records()[1].nodes, 24);
        assert_eq!(scaled.machine_nodes(), 16, "machine size is unchanged");
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn empty_window_rejected() {
        JobLog::new(vec![], SimTime::ZERO, SimTime::ZERO, 1);
    }
}
