//! # uerl-jobs
//!
//! Slurm-style HPC job-log substrate.
//!
//! The paper's cost model needs to know, at every moment on every node, which job is
//! running, how many nodes it spans and how long it has been running since its start (or
//! since the last mitigation): that product is the *potential UE cost* of Equation 3. The
//! original study uses one year of Slurm accounting data from MareNostrum 4 (3456 nodes,
//! March 2018 – March 2019, collected via `sacct`), which is not public. This crate
//! rebuilds the substrate:
//!
//! * [`job`] — the job record model (submit/start/end times, node count) and a job-log
//!   container with utilisation and distribution queries;
//! * [`distribution`] — the workload mix: heavy-tailed node-count and wallclock
//!   distributions spanning orders of magnitude, plus the job-size scaling factor used by
//!   the sensitivity analysis of Section 5.6;
//! * [`generator`] — a synthetic MareNostrum-4-like job-log generator targeting a
//!   utilisation above 95%;
//! * [`sacct`] — a `sacct`-style pipe-separated text format (emit + parse);
//! * [`schedule`] — the node job-sequence sampler of Section 3.3.3: a random sequence of
//!   jobs, weighted by the number of nodes they execute on, assigned back-to-back to a
//!   node for the duration of a training episode or evaluation pass.

pub mod distribution;
pub mod generator;
pub mod job;
pub mod sacct;
pub mod schedule;

pub use distribution::JobMix;
pub use generator::{JobLogConfig, JobTraceGenerator};
pub use job::{JobLog, JobRecord};
pub use schedule::{node_workload_seed, JobSequence, NodeJobSampler, ScheduledJob};
