//! A `sacct`-style pipe-separated text format for job logs.
//!
//! The production study extracted the MareNostrum 4 job log with Slurm's `sacct` command,
//! which emits pipe-separated records. This module mirrors that interchange shape so that
//! synthetic job logs can be written to disk, inspected, and re-loaded through the same
//! parse path a real log would use:
//!
//! ```text
//! # uerl-jobs v1 machine_nodes=3456 window=0..31536000
//! JobID|Submit|Start|End|NNodes
//! 1|3000|3600|90000|16
//! 2|7000|7200|10800|1
//! ```
//!
//! Times are seconds since the window origin.

use crate::job::{JobLog, JobRecord};
use std::fmt::Write as _;
use uerl_trace::types::SimTime;

/// Errors produced when parsing the sacct-style format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// A record line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Explanation of what went wrong.
        reason: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(h) => write!(f, "bad header: {h}"),
            ParseError::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serialize a job log to the sacct-style text format.
pub fn to_text(log: &JobLog) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# uerl-jobs v1 machine_nodes={} window={}..{}",
        log.machine_nodes(),
        log.window_start().as_secs(),
        log.window_end().as_secs()
    );
    out.push_str("JobID|Submit|Start|End|NNodes\n");
    for r in log.records() {
        let _ = writeln!(
            out,
            "{}|{}|{}|{}|{}",
            r.job_id,
            r.submit.as_secs(),
            r.start.as_secs(),
            r.end.as_secs(),
            r.nodes
        );
    }
    out
}

/// Parse a job log from the sacct-style text format.
pub fn from_text(text: &str) -> Result<JobLog, ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("empty input".into()))?;
    if !header.starts_with("# uerl-jobs v1") {
        return Err(ParseError::BadHeader(header.to_string()));
    }
    let field = |name: &str| -> Result<String, ParseError> {
        header
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{name}=")))
            .map(str::to_string)
            .ok_or_else(|| ParseError::BadHeader(format!("missing {name}=")))
    };
    let machine_nodes: u32 = field("machine_nodes")?
        .parse()
        .map_err(|_| ParseError::BadHeader("bad machine_nodes".into()))?;
    let window = field("window")?;
    let (s, e) = window
        .split_once("..")
        .ok_or_else(|| ParseError::BadHeader("malformed window".into()))?;
    let start = SimTime::from_secs(
        s.parse()
            .map_err(|_| ParseError::BadHeader("bad window start".into()))?,
    );
    let end = SimTime::from_secs(
        e.parse()
            .map_err(|_| ParseError::BadHeader("bad window end".into()))?,
    );

    let mut records = Vec::new();
    for (idx, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("JobID|") {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        if fields.len() != 5 {
            return Err(ParseError::BadLine {
                line: idx + 1,
                reason: format!("expected 5 fields, got {}", fields.len()),
            });
        }
        let parse_i64 = |s: &str, what: &str| -> Result<i64, ParseError> {
            s.parse().map_err(|_| ParseError::BadLine {
                line: idx + 1,
                reason: format!("bad {what}: '{s}'"),
            })
        };
        let job_id = parse_i64(fields[0], "JobID")? as u64;
        let submit = SimTime::from_secs(parse_i64(fields[1], "Submit")?);
        let start_t = SimTime::from_secs(parse_i64(fields[2], "Start")?);
        let end_t = SimTime::from_secs(parse_i64(fields[3], "End")?);
        let nodes = parse_i64(fields[4], "NNodes")? as u32;
        if nodes == 0 || submit > start_t || start_t > end_t {
            return Err(ParseError::BadLine {
                line: idx + 1,
                reason: "inconsistent record".into(),
            });
        }
        records.push(JobRecord::new(job_id, submit, start_t, end_t, nodes));
    }
    Ok(JobLog::new(records, start, end, machine_nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{JobLogConfig, JobTraceGenerator};

    #[test]
    fn round_trip_preserves_records() {
        let log = JobTraceGenerator::new(JobLogConfig::small(32, 10, 4)).generate();
        let text = to_text(&log);
        let parsed = from_text(&text).expect("parse");
        assert_eq!(parsed.records(), log.records());
        assert_eq!(parsed.machine_nodes(), log.machine_nodes());
        assert_eq!(parsed.window_start(), log.window_start());
        assert_eq!(parsed.window_end(), log.window_end());
    }

    #[test]
    fn header_and_column_row_are_emitted() {
        let log = JobTraceGenerator::new(JobLogConfig::small(4, 2, 1)).generate();
        let text = to_text(&log);
        let mut lines = text.lines();
        assert!(lines.next().unwrap().starts_with("# uerl-jobs v1"));
        assert_eq!(lines.next().unwrap(), "JobID|Submit|Start|End|NNodes");
    }

    #[test]
    fn rejects_missing_header() {
        assert!(matches!(
            from_text("1|0|0|10|1\n"),
            Err(ParseError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_wrong_field_count() {
        let text = "# uerl-jobs v1 machine_nodes=4 window=0..100\n1|0|0|10\n";
        match from_text(text) {
            Err(ParseError::BadLine { line, reason }) => {
                assert_eq!(line, 2);
                assert!(reason.contains("5 fields"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_inconsistent_record() {
        let text = "# uerl-jobs v1 machine_nodes=4 window=0..100\n1|50|40|60|1\n";
        assert!(matches!(from_text(text), Err(ParseError::BadLine { .. })));
    }

    #[test]
    fn ignores_comments_and_blank_lines() {
        let text = "# uerl-jobs v1 machine_nodes=4 window=0..100\nJobID|Submit|Start|End|NNodes\n\n# note\n7|1|2|50|3\n";
        let log = from_text(text).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.records()[0].job_id, 7);
        assert_eq!(log.records()[0].nodes, 3);
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ParseError::BadLine {
            line: 3,
            reason: "bad NNodes: 'x'".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }
}
