//! The node job-sequence sampler of Section 3.3.3.
//!
//! Error logs and job logs come from different machines and periods, so the paper
//! combines them by assigning, to each node and each training episode / evaluation pass,
//! a random sequence of jobs drawn from the job log, *weighted by the number of nodes on
//! which they execute* so that a node's view of the workload matches the machine-wide
//! node-hour distribution. Jobs run back-to-back (MareNostrum utilisation was above 95%),
//! and the sequence covers the whole requested time range.

use crate::job::JobLog;
use rand::Rng;
use serde::{Deserialize, Serialize};
use uerl_stats::{Categorical, Distribution};
use uerl_trace::types::{NodeId, SimTime};

/// Derive the RNG seed for a node's job-sequence assignment: a pure function of the
/// evaluation seed and the node id, never of the policy or the execution path.
///
/// This is the workload-fairness contract of the cost-benefit analysis — every policy
/// replays exactly the same jobs on every node — and it is shared by the offline
/// evaluator's rollouts and the online serving layer, which is what makes served
/// decisions bit-comparable to offline replays of the same timelines.
pub fn node_workload_seed(seed: u64, node: NodeId) -> u64 {
    seed ^ (u64::from(node.0).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One job placed on a node's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledJob {
    /// Id of the job-log record the shape was drawn from.
    pub job_id: u64,
    /// When the job starts on this node.
    pub start: SimTime,
    /// When the job ends on this node.
    pub end: SimTime,
    /// Number of nodes the job spans (after any size scaling).
    pub nodes: u32,
}

impl ScheduledJob {
    /// Whether the job is running at `t` (half-open `[start, end)`).
    pub fn running_at(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Hours elapsed from the job start (or a later reference point) to `t`, never
    /// negative.
    pub fn elapsed_hours(&self, since: SimTime, t: SimTime) -> f64 {
        let from = self.start.max(since);
        (t.delta_secs(from).max(0)) as f64 / SimTime::HOUR as f64
    }

    /// Wallclock duration of the job in hours.
    pub fn wallclock_hours(&self) -> f64 {
        (self.end - self.start) as f64 / SimTime::HOUR as f64
    }
}

/// A contiguous sequence of jobs covering a node's timeline over some range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSequence {
    jobs: Vec<ScheduledJob>,
}

impl JobSequence {
    /// Build a sequence from explicit jobs (sorted by start time internally). Mostly
    /// useful in tests and examples; normal use goes through [`NodeJobSampler`].
    pub fn from_jobs(mut jobs: Vec<ScheduledJob>) -> Self {
        jobs.sort_by_key(|j| j.start);
        Self { jobs }
    }

    /// The scheduled jobs, in start-time order.
    pub fn jobs(&self) -> &[ScheduledJob] {
        &self.jobs
    }

    /// Number of jobs in the sequence.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The job running at instant `t`, if any.
    pub fn job_at(&self, t: SimTime) -> Option<&ScheduledJob> {
        // Jobs are contiguous and sorted; binary search on start time.
        let idx = self.jobs.partition_point(|j| j.start <= t);
        if idx == 0 {
            return None;
        }
        let candidate = &self.jobs[idx - 1];
        candidate.running_at(t).then_some(candidate)
    }

    /// Total node-hours of all jobs in the sequence (as seen from this node's timeline,
    /// i.e. weighting each job by its full node count).
    pub fn total_node_hours(&self) -> f64 {
        self.jobs
            .iter()
            .map(|j| j.nodes as f64 * j.wallclock_hours())
            .sum()
    }
}

/// Samples job sequences for individual nodes from a machine-wide job log.
#[derive(Debug, Clone)]
pub struct NodeJobSampler {
    /// Job shapes: (record id, nodes, wallclock seconds).
    shapes: Vec<(u64, u32, i64)>,
    /// Node-count weights for sampling (Section 3.3.3).
    weights: Categorical,
    /// Job-size scaling factor applied to sampled node counts.
    size_scaling: f64,
}

impl NodeJobSampler {
    /// Build a sampler from a job log.
    ///
    /// # Panics
    /// Panics if the log is empty.
    pub fn from_log(log: &JobLog) -> Self {
        assert!(!log.is_empty(), "cannot sample jobs from an empty job log");
        let shapes: Vec<(u64, u32, i64)> = log
            .records()
            .iter()
            .map(|r| (r.job_id, r.nodes, r.wallclock_secs().max(SimTime::MINUTE)))
            .collect();
        let weights: Vec<f64> = shapes.iter().map(|&(_, nodes, _)| nodes as f64).collect();
        Self {
            shapes,
            weights: Categorical::new(&weights),
            size_scaling: 1.0,
        }
    }

    /// A copy of this sampler with a job-size scaling factor applied to every sampled
    /// job's node count (the Section 5.6 sensitivity knob).
    ///
    /// # Panics
    /// Panics if the factor is not strictly positive and finite.
    pub fn with_size_scaling(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scaling factor must be positive"
        );
        self.size_scaling = factor;
        self
    }

    /// The configured size scaling factor.
    pub fn size_scaling(&self) -> f64 {
        self.size_scaling
    }

    /// Number of distinct job shapes available.
    pub fn shape_count(&self) -> usize {
        self.shapes.len()
    }

    /// Sample one job shape `(job_id, nodes, wallclock_secs)`, weighted by node count and
    /// with the size scaling applied.
    pub fn sample_shape<R: Rng + ?Sized>(&self, rng: &mut R) -> (u64, u32, i64) {
        let (id, nodes, secs) = self.shapes[self.weights.sample(rng)];
        let scaled = ((nodes as f64 * self.size_scaling).round() as u32).max(1);
        (id, scaled, secs)
    }

    /// Sample a back-to-back job sequence covering `[range_start, range_end)`.
    ///
    /// The first job receives a random phase so that `range_start` does not always
    /// coincide with a job start (a node joining the evaluation mid-window is usually in
    /// the middle of a job).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn sample_sequence<R: Rng + ?Sized>(
        &self,
        range_start: SimTime,
        range_end: SimTime,
        rng: &mut R,
    ) -> JobSequence {
        assert!(
            range_end > range_start,
            "job sequence range must be non-empty"
        );
        let mut jobs = Vec::new();
        // Random initial phase: the first job started some time before the range.
        let (id0, nodes0, secs0) = self.sample_shape(rng);
        let phase = rng.gen_range(0..secs0);
        let mut t = range_start.plus_secs(-phase);
        let mut pending = Some((id0, nodes0, secs0));
        while t < range_end {
            let (job_id, nodes, secs) = pending.take().unwrap_or_else(|| self.sample_shape(rng));
            let start = t;
            let end = t.plus_secs(secs);
            jobs.push(ScheduledJob {
                job_id,
                start,
                end,
                nodes,
            });
            t = end;
        }
        JobSequence { jobs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{JobLogConfig, JobTraceGenerator};
    use crate::job::JobRecord;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_log() -> JobLog {
        JobTraceGenerator::new(JobLogConfig::small(64, 30, 8)).generate()
    }

    fn two_job_log() -> JobLog {
        // Job 1: 1 node, 1 hour. Job 2: 99 nodes, 1 hour.
        let records = vec![
            JobRecord::new(1, SimTime::ZERO, SimTime::ZERO, SimTime::from_hours(1), 1),
            JobRecord::new(2, SimTime::ZERO, SimTime::ZERO, SimTime::from_hours(1), 99),
        ];
        JobLog::new(records, SimTime::ZERO, SimTime::from_days(1), 100)
    }

    #[test]
    fn sequence_is_contiguous_and_covers_range() {
        let sampler = NodeJobSampler::from_log(&sample_log());
        let mut rng = StdRng::seed_from_u64(1);
        let start = SimTime::from_days(3);
        let end = SimTime::from_days(10);
        let seq = sampler.sample_sequence(start, end, &mut rng);
        assert!(!seq.is_empty());
        assert!(seq.jobs()[0].start <= start);
        assert!(seq.jobs().last().unwrap().end >= end);
        for pair in seq.jobs().windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "jobs must be back-to-back");
        }
    }

    #[test]
    fn job_at_finds_the_running_job() {
        let sampler = NodeJobSampler::from_log(&sample_log());
        let mut rng = StdRng::seed_from_u64(2);
        let start = SimTime::ZERO;
        let end = SimTime::from_days(5);
        let seq = sampler.sample_sequence(start, end, &mut rng);
        for j in seq.jobs() {
            let mid = SimTime::from_secs((j.start.as_secs() + j.end.as_secs()) / 2);
            let found = seq.job_at(mid).expect("a job is running");
            assert_eq!(found.job_id, j.job_id);
            assert_eq!(found.start, j.start);
        }
        // Before the first job there is nothing.
        let before = seq.jobs()[0].start.plus_secs(-10);
        assert!(seq.job_at(before).is_none());
    }

    #[test]
    fn sampling_is_weighted_by_node_count() {
        let sampler = NodeJobSampler::from_log(&two_job_log());
        let mut rng = StdRng::seed_from_u64(3);
        let mut big = 0;
        let n = 10_000;
        for _ in 0..n {
            let (_, nodes, _) = sampler.sample_shape(&mut rng);
            if nodes == 99 {
                big += 1;
            }
        }
        let frac = big as f64 / n as f64;
        assert!((frac - 0.99).abs() < 0.02, "99-node job sampled {frac}");
    }

    #[test]
    fn size_scaling_multiplies_node_counts() {
        let sampler = NodeJobSampler::from_log(&two_job_log()).with_size_scaling(10.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let (_, nodes, _) = sampler.sample_shape(&mut rng);
            assert!(nodes == 10 || nodes == 990);
        }
        let down = NodeJobSampler::from_log(&two_job_log()).with_size_scaling(0.01);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let (_, nodes, _) = down.sample_shape(&mut rng);
            assert!(nodes >= 1, "scaling down never reaches zero nodes");
        }
    }

    #[test]
    fn elapsed_hours_accounts_for_reference_point() {
        let j = ScheduledJob {
            job_id: 1,
            start: SimTime::from_hours(10),
            end: SimTime::from_hours(20),
            nodes: 4,
        };
        assert!((j.elapsed_hours(SimTime::ZERO, SimTime::from_hours(15)) - 5.0).abs() < 1e-12);
        // A mitigation at hour 12 resets the reference.
        assert!(
            (j.elapsed_hours(SimTime::from_hours(12), SimTime::from_hours(15)) - 3.0).abs() < 1e-12
        );
        // Reference after t clamps to zero.
        assert_eq!(
            j.elapsed_hours(SimTime::from_hours(16), SimTime::from_hours(15)),
            0.0
        );
        assert!((j.wallclock_hours() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn sequences_differ_across_rng_draws() {
        let sampler = NodeJobSampler::from_log(&sample_log());
        let mut rng = StdRng::seed_from_u64(6);
        let a = sampler.sample_sequence(SimTime::ZERO, SimTime::from_days(2), &mut rng);
        let b = sampler.sample_sequence(SimTime::ZERO, SimTime::from_days(2), &mut rng);
        assert_ne!(a, b, "two draws should not produce the identical sequence");
    }

    #[test]
    fn total_node_hours_is_consistent() {
        let sampler = NodeJobSampler::from_log(&two_job_log());
        let mut rng = StdRng::seed_from_u64(7);
        let seq = sampler.sample_sequence(SimTime::ZERO, SimTime::from_hours(10), &mut rng);
        let manual: f64 = seq
            .jobs()
            .iter()
            .map(|j| j.nodes as f64 * j.wallclock_hours())
            .sum();
        assert!((seq.total_node_hours() - manual).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty job log")]
    fn empty_log_rejected() {
        let log = JobLog::new(vec![], SimTime::ZERO, SimTime::from_days(1), 4);
        NodeJobSampler::from_log(&log);
    }
}
