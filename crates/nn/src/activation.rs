//! Activation functions and their derivatives.

use serde::{Deserialize, Serialize};

/// An element-wise activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (used for output heads that predict unbounded Q-values).
    Identity,
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Leaky ReLU with slope 0.01 for negative inputs.
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Apply the activation to one value.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Apply the activation in `f32` (the quantized inference path dequantizes layer
    /// outputs to `f32` and activates there; full-precision inference stays `f64`).
    pub fn apply_f32(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative of the activation with respect to its input, expressed as a function of
    /// the *pre-activation* value `x`.
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 5] = [
        Activation::Identity,
        Activation::Relu,
        Activation::LeakyRelu,
        Activation::Tanh,
        Activation::Sigmoid,
    ];

    #[test]
    fn known_values() {
        assert_eq!(Activation::Identity.apply(-3.0), -3.0);
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert!((Activation::LeakyRelu.apply(-2.0) + 0.02).abs() < 1e-12);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-12);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn derivatives_match_numerical_gradient() {
        let eps = 1e-6;
        for act in ALL {
            for &x in &[-2.0, -0.5, 0.3, 1.7] {
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn apply_f32_tracks_the_f64_path() {
        for act in ALL {
            for &x in &[-2.5f32, -0.5, 0.0, 0.3, 1.7, 30.0] {
                let via_f64 = act.apply(f64::from(x)) as f32;
                let via_f32 = act.apply_f32(x);
                assert!(
                    (via_f64 - via_f32).abs() <= 1e-6 * via_f64.abs().max(1.0),
                    "{act:?} at {x}: f64 path {via_f64} vs f32 path {via_f32}"
                );
            }
        }
    }

    #[test]
    fn relu_derivative_is_zero_for_negative_inputs() {
        assert_eq!(Activation::Relu.derivative(-0.1), 0.0);
        assert_eq!(Activation::Relu.derivative(0.1), 1.0);
    }

    #[test]
    fn sigmoid_saturates() {
        assert!(Activation::Sigmoid.apply(30.0) > 0.999);
        assert!(Activation::Sigmoid.apply(-30.0) < 0.001);
        assert!(Activation::Sigmoid.derivative(30.0) < 1e-10);
    }
}
