//! The dueling Q-network architecture (Wang et al., ICML 2016).
//!
//! A dueling network splits the Q-function into a state-value stream `V(s)` and an
//! advantage stream `A(s, a)`, recombined as
//!
//! ```text
//! Q(s, a) = V(s) + A(s, a) − mean_a' A(s, a')
//! ```
//!
//! Subtracting the mean advantage removes the degree of freedom between the two streams
//! and is the variant used by the paper's agent. The shared trunk uses the paper's four
//! hidden layers; each stream is a single linear layer on top of the trunk output.

use crate::activation::Activation;
use crate::layer::DenseLayer;
use crate::matrix::Matrix;
use crate::network::MlpConfig;
use crate::optim::Optimizer;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dueling Q-network: shared trunk, value head and advantage head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DuelingQNetwork {
    trunk: Vec<DenseLayer>,
    value_head: DenseLayer,
    advantage_head: DenseLayer,
    n_actions: usize,
}

impl DuelingQNetwork {
    /// Build a dueling network with the trunk described by `config` (its `output_dim` is
    /// ignored; the heads are sized from `n_actions`).
    ///
    /// # Panics
    /// Panics if there are no hidden layers or fewer than two actions.
    pub fn new<R: Rng + ?Sized>(config: &MlpConfig, n_actions: usize, rng: &mut R) -> Self {
        assert!(!config.hidden.is_empty(), "dueling network needs a trunk");
        assert!(n_actions >= 2, "need at least two actions");
        let mut trunk = Vec::with_capacity(config.hidden.len());
        let mut in_dim = config.input_dim;
        for &width in &config.hidden {
            trunk.push(DenseLayer::new(
                in_dim,
                width,
                config.hidden_activation,
                config.init,
                rng,
            ));
            in_dim = width;
        }
        let value_head = DenseLayer::new(in_dim, 1, Activation::Identity, config.init, rng);
        let advantage_head =
            DenseLayer::new(in_dim, n_actions, Activation::Identity, config.init, rng);
        Self {
            trunk,
            value_head,
            advantage_head,
            n_actions,
        }
    }

    /// The paper's configuration: 256-256-128-64 ReLU trunk, two actions.
    pub fn paper<R: Rng + ?Sized>(input_dim: usize, rng: &mut R) -> Self {
        Self::new(&MlpConfig::paper_q_network(input_dim, 2), 2, rng)
    }

    /// Number of actions.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// The shared trunk layers (the quantizer mirrors them into i8).
    pub(crate) fn trunk(&self) -> &[DenseLayer] {
        &self.trunk
    }

    /// The state-value head.
    pub(crate) fn value_head(&self) -> &DenseLayer {
        &self.value_head
    }

    /// The advantage head.
    pub(crate) fn advantage_head(&self) -> &DenseLayer {
        &self.advantage_head
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.trunk.first().map(DenseLayer::input_dim).unwrap_or(0)
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.trunk
            .iter()
            .map(DenseLayer::param_count)
            .sum::<usize>()
            + self.value_head.param_count()
            + self.advantage_head.param_count()
    }

    fn combine(value: &Matrix, advantage: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(advantage.rows(), advantage.cols());
        Self::combine_into(value, advantage, &mut out);
        out
    }

    /// `Q = V + A − mean(A)` written into `out` (reshaped as needed, allocation reused).
    /// The per-row mean uses the same left-to-right summation as the original
    /// element-wise combine, so results are bit-identical.
    fn combine_into(value: &Matrix, advantage: &Matrix, out: &mut Matrix) {
        let n = advantage.cols() as f64;
        out.reset_to(advantage.rows(), advantage.cols());
        for i in 0..advantage.rows() {
            let mean_a: f64 = advantage.row(i).iter().sum::<f64>() / n;
            let v = value.get(i, 0);
            let a_row = advantage.row(i);
            for (j, q) in out.row_mut(i).iter_mut().enumerate() {
                *q = v + a_row[j] - mean_a;
            }
        }
    }

    /// Inference-only forward pass producing the Q-values for a batch of states.
    pub fn forward(&self, input: &Matrix) -> Matrix {
        let mut h = input.clone();
        for layer in &self.trunk {
            h = layer.forward(&h);
        }
        let v = self.value_head.forward(&h);
        let a = self.advantage_head.forward(&h);
        Self::combine(&v, &a)
    }

    /// Batched inference written into `out` with zero allocations after warm-up: trunk
    /// activations ping-pong through the scratch buffers, the two heads write into the
    /// scratch's value/advantage buffers, and the dueling combine lands in `out`. One
    /// row per input state; each row is **bit-identical** to forwarding it alone (same
    /// kernels, same op order), which is what keeps micro-batched serving decisions
    /// independent of the batch size.
    pub fn forward_batch_into(
        &self,
        input: &Matrix,
        scratch: &mut crate::network::BatchScratch,
        out: &mut Matrix,
    ) {
        let crate::network::BatchScratch {
            ping,
            pong,
            value,
            advantage,
        } = scratch;
        let mut src: &mut Matrix = ping;
        let mut dst: &mut Matrix = pong;
        let mut current: &Matrix = input;
        for layer in &self.trunk {
            layer.forward_batch_into(current, dst);
            std::mem::swap(&mut src, &mut dst);
            current = src;
        }
        self.value_head.forward_batch_into(current, value);
        self.advantage_head.forward_batch_into(current, advantage);
        Self::combine_into(value, advantage, out);
    }

    /// Training forward pass (caches activations in every layer).
    pub fn forward_train(&mut self, input: &Matrix) -> Matrix {
        let mut h = input.clone();
        for layer in &mut self.trunk {
            h = layer.forward_train(&h);
        }
        let v = self.value_head.forward_train(&h);
        let a = self.advantage_head.forward_train(&h);
        Self::combine(&v, &a)
    }

    /// Backward pass from `dL/dQ`. Accumulates gradients in every layer and returns the
    /// gradient with respect to the input.
    ///
    /// With `Q_ij = V_i + A_ij − mean_j A_ij`:
    /// `dL/dV_i = Σ_j dQ_ij` and `dL/dA_ij = dQ_ij − mean_j dQ_ij`.
    pub fn backward(&mut self, grad_q: &Matrix) -> Matrix {
        let rows = grad_q.rows();
        let n = self.n_actions as f64;
        let grad_v = Matrix::from_fn(rows, 1, |i, _| grad_q.row(i).iter().sum());
        let grad_a = Matrix::from_fn(rows, self.n_actions, |i, j| {
            let mean: f64 = grad_q.row(i).iter().sum::<f64>() / n;
            grad_q.get(i, j) - mean
        });
        let mut grad_h = self.value_head.backward(&grad_v);
        grad_h.add_assign(&self.advantage_head.backward(&grad_a));
        let mut grad = grad_h;
        for layer in self.trunk.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    /// Reset all accumulated gradients.
    pub fn clear_gradients(&mut self) {
        for layer in &mut self.trunk {
            layer.clear_gradients();
        }
        self.value_head.clear_gradients();
        self.advantage_head.clear_gradients();
    }

    /// Apply the accumulated gradients with an optimizer and clear them.
    pub fn apply_gradients(&mut self, optimizer: &mut dyn Optimizer) {
        let mut next_id = 0;
        for layer in &mut self.trunk {
            layer.visit_params(next_id, |id, params, grads| {
                optimizer.update(id, params, grads)
            });
            next_id += 2;
        }
        self.value_head.visit_params(next_id, |id, params, grads| {
            optimizer.update(id, params, grads)
        });
        next_id += 2;
        self.advantage_head
            .visit_params(next_id, |id, params, grads| {
                optimizer.update(id, params, grads)
            });
        self.clear_gradients();
    }

    /// Copy all weights from another network of identical architecture (target-network
    /// synchronisation).
    ///
    /// # Panics
    /// Panics if the architectures differ.
    pub fn sync_from(&mut self, other: &DuelingQNetwork) {
        assert_eq!(self.trunk.len(), other.trunk.len(), "trunk depth mismatch");
        for (mine, theirs) in self.trunk.iter_mut().zip(&other.trunk) {
            mine.copy_params_from(theirs);
        }
        self.value_head.copy_params_from(&other.value_head);
        self.advantage_head.copy_params_from(&other.advantage_head);
    }

    /// Convenience single-state Q-value prediction.
    pub fn predict_one(&self, features: &[f64]) -> Vec<f64> {
        self.forward(&Matrix::row_from_slice(features))
            .row(0)
            .to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small(seed: u64) -> DuelingQNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        DuelingQNetwork::new(&MlpConfig::small(4, 2), 2, &mut rng)
    }

    #[test]
    fn shapes_and_param_count() {
        let net = small(1);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.n_actions(), 2);
        // Trunk: 4*32+32 + 32*16+16; heads: 16*1+1 + 16*2+2.
        assert_eq!(net.param_count(), 160 + 528 + 17 + 34);
        let q = net.forward(&Matrix::from_vec(3, 4, vec![0.2; 12]));
        assert_eq!((q.rows(), q.cols()), (3, 2));
    }

    #[test]
    fn paper_configuration_builds() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = DuelingQNetwork::paper(14, &mut rng);
        assert_eq!(net.input_dim(), 14);
        assert_eq!(net.n_actions(), 2);
        assert!(net.param_count() > 100_000);
    }

    #[test]
    fn forward_and_forward_train_agree() {
        let mut net = small(3);
        let x = Matrix::from_vec(2, 4, vec![0.5, -0.5, 1.0, 0.0, 0.1, 0.2, 0.3, 0.4]);
        assert_eq!(net.forward(&x), net.forward_train(&x));
    }

    #[test]
    fn gradient_check_through_both_streams() {
        let mut net = small(4);
        let x = Matrix::from_vec(2, 4, vec![0.3, -0.7, 0.2, 0.9, -0.1, 0.4, 0.8, -0.6]);
        let ones = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let _ = net.forward_train(&x);
        let _ = net.backward(&ones);
        let analytic = net.trunk[0].grad_weights().clone();
        let cols = net.trunk[0].output_dim();
        let eps = 1e-6;
        for (i, j) in [(0, 0), (2, 5), (3, 11)] {
            let mut plus = net.clone();
            let mut minus = net.clone();
            plus.trunk[0].visit_params(0, |id, params, _| {
                if id == 0 {
                    params[i * cols + j] += eps;
                }
            });
            minus.trunk[0].visit_params(0, |id, params, _| {
                if id == 0 {
                    params[i * cols + j] -= eps;
                }
            });
            let f_plus: f64 = plus.forward(&x).data().iter().sum();
            let f_minus: f64 = minus.forward(&x).data().iter().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (numeric - analytic.get(i, j)).abs() < 1e-4,
                "dW[{i}][{j}] numeric {numeric} analytic {}",
                analytic.get(i, j)
            );
        }
    }

    #[test]
    fn training_fits_simple_q_targets() {
        let mut net = small(5);
        let mut opt = Adam::new(0.01);
        let loss = Loss::MeanSquaredError;
        let states = Matrix::from_vec(2, 4, vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        let targets = Matrix::from_vec(2, 2, vec![1.0, -1.0, -2.0, 2.0]);
        let initial = loss.batch_value(net.forward(&states).data(), targets.data(), None);
        for _ in 0..800 {
            let q = net.forward_train(&states);
            let grad = Matrix::from_vec(2, 2, loss.batch_gradient(q.data(), targets.data(), None));
            let _ = net.backward(&grad);
            net.apply_gradients(&mut opt);
        }
        let fitted = loss.batch_value(net.forward(&states).data(), targets.data(), None);
        assert!(fitted < initial * 0.05, "loss {initial} -> {fitted}");
    }

    #[test]
    fn sync_from_makes_outputs_identical() {
        let mut a = small(6);
        let b = small(7);
        let x = Matrix::from_vec(1, 4, vec![0.1, 0.2, 0.3, 0.4]);
        assert_ne!(a.forward(&x), b.forward(&x));
        a.sync_from(&b);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn forward_batch_into_is_bit_identical_to_forward() {
        let net = small(10);
        let x = Matrix::from_fn(6, 4, |i, j| ((i * 7 + j) as f64 * 0.13).cos());
        let reference = net.forward(&x);
        let mut scratch = crate::network::BatchScratch::new();
        let mut out = Matrix::zeros(1, 1);
        net.forward_batch_into(&x, &mut scratch, &mut out);
        for (a, b) in out.data().iter().zip(reference.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Each row also matches the single-state path bit-for-bit after scratch reuse.
        net.forward_batch_into(&x, &mut scratch, &mut out);
        for i in 0..6 {
            let single = net.predict_one(x.row(i));
            for (a, b) in out.row(i).iter().zip(&single) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i} diverged from single-row");
            }
        }
    }

    #[test]
    fn predict_one_matches_batch_forward() {
        let net = small(8);
        let f = [0.9, -0.9, 0.5, 0.0];
        assert_eq!(
            net.predict_one(&f),
            net.forward(&Matrix::row_from_slice(&f)).row(0)
        );
    }

    #[test]
    #[should_panic(expected = "at least two actions")]
    fn single_action_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        DuelingQNetwork::new(&MlpConfig::small(4, 1), 1, &mut rng);
    }
}
