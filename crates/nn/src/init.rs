//! Weight initialisation schemes.

use rand::Rng;
use serde::{Deserialize, Serialize};
use uerl_stats::{Distribution, Normal, Uniform};

/// Weight initialisation scheme for a dense layer with `fan_in` inputs and `fan_out`
/// outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WeightInit {
    /// He (Kaiming) normal initialisation, `N(0, sqrt(2 / fan_in))` — the standard choice
    /// for ReLU networks and the default for the Q-networks in this project.
    HeNormal,
    /// Xavier (Glorot) uniform initialisation, `U(-limit, limit)` with
    /// `limit = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// All weights zero (useful in tests where determinism without randomness is wanted).
    Zeros,
}

impl WeightInit {
    /// Sample one weight.
    pub fn sample<R: Rng + ?Sized>(self, fan_in: usize, fan_out: usize, rng: &mut R) -> f64 {
        match self {
            WeightInit::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f64).sqrt();
                Normal::new(0.0, std).sample(rng)
            }
            WeightInit::XavierUniform => {
                let limit = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
                Uniform::new(-limit, limit).sample(rng)
            }
            WeightInit::Zeros => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uerl_stats::Summary;

    #[test]
    fn he_normal_std_matches_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| WeightInit::HeNormal.sample(128, 64, &mut rng))
            .collect();
        let s = Summary::from_slice(&samples);
        let expected_std = (2.0 / 128.0f64).sqrt();
        assert!(s.mean().abs() < 0.01);
        assert!((s.std_dev() - expected_std).abs() / expected_std < 0.05);
    }

    #[test]
    fn xavier_uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(2);
        let limit = (6.0f64 / (32.0 + 16.0)).sqrt();
        for _ in 0..5000 {
            let w = WeightInit::XavierUniform.sample(32, 16, &mut rng);
            assert!(w.abs() <= limit);
        }
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(WeightInit::Zeros.sample(10, 10, &mut rng), 0.0);
    }
}
