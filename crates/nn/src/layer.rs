//! A dense (fully-connected) layer with forward and backward passes.

use crate::activation::Activation;
use crate::init::WeightInit;
use crate::matrix::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fully-connected layer: `output = activation(input · W + b)`.
///
/// Weights are stored as an `input_dim × output_dim` matrix so a batch of rows can be
/// multiplied directly. The layer caches the last forward pass's input and
/// pre-activation, which the backward pass consumes; gradients accumulate in `grad_*`
/// until [`DenseLayer::clear_gradients`] (or an optimizer step) resets them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    weights: Matrix,
    bias: Vec<f64>,
    activation: Activation,
    // Training caches (not serialized semantically meaningful, but harmless).
    last_input: Option<Matrix>,
    last_preactivation: Option<Matrix>,
    grad_weights: Matrix,
    grad_bias: Vec<f64>,
}

impl DenseLayer {
    /// Create a layer with the given fan-in/fan-out, activation and initialisation.
    pub fn new<R: Rng + ?Sized>(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        init: WeightInit,
        rng: &mut R,
    ) -> Self {
        let weights = Matrix::from_fn(input_dim, output_dim, |_, _| {
            init.sample(input_dim, output_dim, rng)
        });
        Self {
            weights,
            bias: vec![0.0; output_dim],
            activation,
            last_input: None,
            last_preactivation: None,
            grad_weights: Matrix::zeros(input_dim, output_dim),
            grad_bias: vec![0.0; output_dim],
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.weights.cols()
    }

    /// The activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    /// Immutable access to the weights (for inspection and tests).
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Immutable access to the bias.
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Copy the weights and bias from another layer of identical shape.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn copy_params_from(&mut self, other: &DenseLayer) {
        assert_eq!(self.weights.rows(), other.weights.rows(), "shape mismatch");
        assert_eq!(self.weights.cols(), other.weights.cols(), "shape mismatch");
        self.weights = other.weights.clone();
        self.bias = other.bias.clone();
    }

    /// Inference-only forward pass (no caches touched).
    pub fn forward(&self, input: &Matrix) -> Matrix {
        let mut z = input.matmul(&self.weights);
        z.add_row_broadcast(&self.bias);
        z.map(|x| self.activation.apply(x))
    }

    /// Inference-only forward pass written into a caller-provided buffer (reshaped as
    /// needed, allocation reused). Same kernels and op order as [`DenseLayer::forward`],
    /// so the results are bit-identical; this is the allocation-free path the online
    /// serving batches ride.
    pub fn forward_batch_into(&self, input: &Matrix, out: &mut Matrix) {
        input.matmul_into(&self.weights, out);
        out.add_row_broadcast(&self.bias);
        out.map_assign(|x| self.activation.apply(x));
    }

    /// Training forward pass: caches the input and pre-activation for the backward pass.
    /// The caches are preallocated across steps — after the first batch no forward pass
    /// allocates for them again (batch shape permitting).
    pub fn forward_train(&mut self, input: &Matrix) -> Matrix {
        let mut z = match self.last_preactivation.take() {
            Some(buffer) => buffer,
            None => Matrix::zeros(1, 1),
        };
        input.matmul_into(&self.weights, &mut z);
        z.add_row_broadcast(&self.bias);
        let out = z.map(|x| self.activation.apply(x));
        match &mut self.last_input {
            Some(cache) => cache.copy_from(input),
            None => self.last_input = Some(input.clone()),
        }
        self.last_preactivation = Some(z);
        out
    }

    /// Backward pass: given `dL/d(output)`, accumulate `dL/dW` and `dL/db` and return
    /// `dL/d(input)`.
    ///
    /// # Panics
    /// Panics if no training forward pass preceded this call or the gradient shape does
    /// not match the cached batch.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let output_dim = self.output_dim();
        let activation = self.activation;
        let input = self
            .last_input
            .as_ref()
            .expect("backward called without forward_train");
        let z = self
            .last_preactivation
            .as_ref()
            .expect("backward called without forward_train");
        assert_eq!(grad_output.rows(), input.rows(), "batch size mismatch");
        assert_eq!(grad_output.cols(), output_dim, "gradient width mismatch");

        // dL/dz = dL/dy * act'(z)
        let grad_z = grad_output.zip_map(z, |g, zv| g * activation.derivative(zv));
        // dL/dW += input^T · dL/dz, accumulated straight into the gradient buffer with
        // no transposed copy and no temporary; dL/db = column sums of dL/dz.
        input.matmul_tn_acc(&grad_z, &mut self.grad_weights);
        for (gb, s) in self.grad_bias.iter_mut().zip(grad_z.column_sums()) {
            *gb += s;
        }
        // dL/d(input) = dL/dz · W^T, again without materialising the transpose.
        grad_z.matmul_nt(&self.weights)
    }

    /// Reset the accumulated gradients to zero.
    pub fn clear_gradients(&mut self) {
        self.grad_weights.scale_assign(0.0);
        for g in &mut self.grad_bias {
            *g = 0.0;
        }
    }

    /// Visit `(parameters, gradients)` pairs: first the flattened weights, then the bias.
    /// The visitor receives a stable per-tensor index offset so optimizers can keep
    /// per-tensor state.
    pub fn visit_params(
        &mut self,
        base_id: usize,
        mut visit: impl FnMut(usize, &mut [f64], &[f64]),
    ) {
        visit(base_id, self.weights.data_mut(), self.grad_weights.data());
        visit(base_id + 1, &mut self.bias, &self.grad_bias);
    }

    /// Accumulated weight-gradient matrix (for tests).
    pub fn grad_weights(&self) -> &Matrix {
        &self.grad_weights
    }

    /// Accumulated bias gradient (for tests).
    pub fn grad_bias(&self) -> &[f64] {
        &self.grad_bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer(act: Activation) -> DenseLayer {
        let mut rng = StdRng::seed_from_u64(1);
        DenseLayer::new(3, 2, act, WeightInit::HeNormal, &mut rng)
    }

    #[test]
    fn shapes_and_param_count() {
        let l = layer(Activation::Relu);
        assert_eq!(l.input_dim(), 3);
        assert_eq!(l.output_dim(), 2);
        assert_eq!(l.param_count(), 3 * 2 + 2);
    }

    #[test]
    fn forward_matches_manual_computation_for_identity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut l = DenseLayer::new(2, 1, Activation::Identity, WeightInit::Zeros, &mut rng);
        // Manually set weights to [1, 2]^T and bias to 0.5.
        l.weights = Matrix::from_vec(2, 1, vec![1.0, 2.0]);
        l.bias = vec![0.5];
        let x = Matrix::from_vec(2, 2, vec![1.0, 1.0, 3.0, -1.0]);
        let y = l.forward(&x);
        assert_eq!(y.data(), &[3.5, 1.5]);
    }

    #[test]
    fn forward_and_forward_train_agree() {
        let mut l = layer(Activation::Tanh);
        let x = Matrix::from_vec(2, 3, vec![0.1, -0.2, 0.3, 1.0, 0.5, -0.5]);
        let a = l.forward(&x);
        let b = l.forward_train(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn backward_gradients_match_numerical_gradients() {
        // Loss = sum(output); check dL/dW numerically.
        let mut l = layer(Activation::Tanh);
        let x = Matrix::from_vec(2, 3, vec![0.3, -0.1, 0.8, -0.4, 0.9, 0.2]);
        let ones = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let _ = l.forward_train(&x);
        let _ = l.backward(&ones);
        let analytic = l.grad_weights().clone();

        let eps = 1e-6;
        for i in 0..3 {
            for j in 0..2 {
                let orig = l.weights.get(i, j);
                l.weights.set(i, j, orig + eps);
                let plus: f64 = l.forward(&x).data().iter().sum();
                l.weights.set(i, j, orig - eps);
                let minus: f64 = l.forward(&x).data().iter().sum();
                l.weights.set(i, j, orig);
                let numeric = (plus - minus) / (2.0 * eps);
                assert!(
                    (numeric - analytic.get(i, j)).abs() < 1e-5,
                    "dW[{i}][{j}] numeric {numeric} analytic {}",
                    analytic.get(i, j)
                );
            }
        }
    }

    #[test]
    fn backward_returns_input_gradient_of_right_shape() {
        let mut l = layer(Activation::Relu);
        let x = Matrix::from_vec(4, 3, vec![0.5; 12]);
        let _ = l.forward_train(&x);
        let gin = l.backward(&Matrix::from_vec(4, 2, vec![1.0; 8]));
        assert_eq!(gin.rows(), 4);
        assert_eq!(gin.cols(), 3);
    }

    #[test]
    fn gradients_accumulate_and_clear() {
        let mut l = layer(Activation::Identity);
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let g = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let _ = l.forward_train(&x);
        let _ = l.backward(&g);
        let after_one = l.grad_weights().clone();
        let _ = l.forward_train(&x);
        let _ = l.backward(&g);
        // Accumulated twice -> double.
        assert!((l.grad_weights().get(2, 1) - 2.0 * after_one.get(2, 1)).abs() < 1e-12);
        l.clear_gradients();
        assert_eq!(l.grad_weights().frobenius_norm(), 0.0);
        assert!(l.grad_bias().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn copy_params_from_other_layer() {
        let mut a = layer(Activation::Relu);
        let b = layer(Activation::Relu);
        a.copy_params_from(&b);
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }

    #[test]
    #[should_panic(expected = "without forward_train")]
    fn backward_requires_forward_train() {
        let mut l = layer(Activation::Relu);
        l.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    fn visit_params_exposes_both_tensors() {
        let mut l = layer(Activation::Relu);
        let mut ids = Vec::new();
        l.visit_params(10, |id, params, grads| {
            ids.push((id, params.len(), grads.len()));
        });
        assert_eq!(ids, vec![(10, 6, 6), (11, 2, 2)]);
    }
}
