//! # uerl-nn
//!
//! Dense neural-network substrate.
//!
//! The paper's agent approximates its Q-function with a small fully-connected network:
//! the state features feed four hidden layers of 256, 256, 128 and 64 units, and the
//! output is split into a *value* head and an *advantage* head (the dueling architecture
//! of Wang et al.) over the two actions (mitigate / do nothing). There is no mature,
//! offline-usable deep-learning crate in the allowed dependency set, so this crate
//! implements the needed pieces from scratch:
//!
//! * [`matrix`] — a minimal row-major `f64` matrix with cache-blocked, batch-size-
//!   invariant matmul kernels (the operations a dense MLP needs);
//! * [`init`] — He / Xavier weight initialisation;
//! * [`activation`] — ReLU / leaky ReLU / tanh / sigmoid / identity activations;
//! * [`layer`] — a dense (fully-connected) layer with forward and backward passes;
//! * [`loss`] — mean-squared-error and Huber losses with per-sample weights (needed for
//!   the importance-sampling weights of prioritized experience replay);
//! * [`optim`] — SGD (with momentum), RMSProp and Adam optimizers;
//! * [`network`] — a multi-layer perceptron assembled from dense layers;
//! * [`dueling`] — the dueling Q-network head: `Q(s, a) = V(s) + A(s, a) − mean(A)`;
//! * [`quant`] — the i8 inference path: symmetric per-layer weight quantization, i32
//!   accumulators, f32 dequant at layer boundaries.
//!
//! Everything is deterministic under a seeded RNG and is exercised by gradient-check
//! tests, which is what makes the RL results reproducible.

pub mod activation;
pub mod dueling;
pub mod init;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod network;
pub mod optim;
pub mod quant;

pub use activation::Activation;
pub use dueling::DuelingQNetwork;
pub use init::WeightInit;
pub use layer::DenseLayer;
pub use loss::Loss;
pub use matrix::Matrix;
pub use network::{BatchScratch, Mlp, MlpConfig};
pub use optim::{Adam, Optimizer, RmsProp, Sgd};
pub use quant::{
    QuantScratch, QuantizedDuelingNetwork, QuantizedLayer, QuantizedMlp, QuantizedNetwork,
};
