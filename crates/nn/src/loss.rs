//! Loss functions with per-sample weights.
//!
//! Deep Q-learning regresses the predicted Q-value of the taken action towards a TD
//! target. The paper uses the standard DQN recipe: a Huber loss (quadratic near zero,
//! linear in the tails) to bound the gradient of outlier TD errors, combined with the
//! importance-sampling weights produced by prioritized experience replay. Both losses
//! here therefore accept an optional per-sample weight vector.

use serde::{Deserialize, Serialize};

/// A regression loss over scalar predictions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error.
    MeanSquaredError,
    /// Huber loss with the given transition point `delta`.
    Huber {
        /// Error magnitude at which the loss switches from quadratic to linear.
        delta: f64,
    },
}

impl Loss {
    /// The conventional DQN Huber loss (`delta = 1`).
    pub fn huber() -> Self {
        Loss::Huber { delta: 1.0 }
    }

    /// Loss value for one prediction/target pair.
    pub fn value(self, prediction: f64, target: f64) -> f64 {
        let err = prediction - target;
        match self {
            Loss::MeanSquaredError => err * err,
            Loss::Huber { delta } => {
                if err.abs() <= delta {
                    0.5 * err * err
                } else {
                    delta * (err.abs() - 0.5 * delta)
                }
            }
        }
    }

    /// Derivative of the loss with respect to the prediction.
    pub fn gradient(self, prediction: f64, target: f64) -> f64 {
        let err = prediction - target;
        match self {
            Loss::MeanSquaredError => 2.0 * err,
            Loss::Huber { delta } => err.clamp(-delta, delta),
        }
    }

    /// Weighted mean loss over a batch. Weights default to 1 when `weights` is `None`.
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    pub fn batch_value(self, predictions: &[f64], targets: &[f64], weights: Option<&[f64]>) -> f64 {
        assert_eq!(predictions.len(), targets.len(), "length mismatch");
        if let Some(w) = weights {
            assert_eq!(w.len(), predictions.len(), "weight length mismatch");
        }
        if predictions.is_empty() {
            return 0.0;
        }
        predictions
            .iter()
            .zip(targets)
            .enumerate()
            .map(|(i, (&p, &t))| {
                let w = weights.map_or(1.0, |w| w[i]);
                w * self.value(p, t)
            })
            .sum::<f64>()
            / predictions.len() as f64
    }

    /// Per-sample gradients of the weighted mean batch loss.
    pub fn batch_gradient(
        self,
        predictions: &[f64],
        targets: &[f64],
        weights: Option<&[f64]>,
    ) -> Vec<f64> {
        assert_eq!(predictions.len(), targets.len(), "length mismatch");
        let n = predictions.len().max(1) as f64;
        predictions
            .iter()
            .zip(targets)
            .enumerate()
            .map(|(i, (&p, &t))| {
                let w = weights.map_or(1.0, |w| w[i]);
                w * self.gradient(p, t) / n
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_values_and_gradients() {
        let l = Loss::MeanSquaredError;
        assert_eq!(l.value(3.0, 1.0), 4.0);
        assert_eq!(l.gradient(3.0, 1.0), 4.0);
        assert_eq!(l.gradient(1.0, 3.0), -4.0);
    }

    #[test]
    fn huber_is_quadratic_near_zero_and_linear_far() {
        let l = Loss::huber();
        assert!((l.value(0.5, 0.0) - 0.125).abs() < 1e-12);
        // Far from zero: delta * (|err| - delta/2) = 1 * (3 - 0.5) = 2.5.
        assert!((l.value(3.0, 0.0) - 2.5).abs() < 1e-12);
        // Gradient is clamped.
        assert_eq!(l.gradient(3.0, 0.0), 1.0);
        assert_eq!(l.gradient(-3.0, 0.0), -1.0);
        assert_eq!(l.gradient(0.3, 0.0), 0.3);
    }

    #[test]
    fn huber_gradient_matches_numerical() {
        let l = Loss::Huber { delta: 2.0 };
        let eps = 1e-6;
        for &p in &[-5.0, -1.5, 0.0, 1.5, 5.0] {
            let numeric = (l.value(p + eps, 0.5) - l.value(p - eps, 0.5)) / (2.0 * eps);
            assert!((numeric - l.gradient(p, 0.5)).abs() < 1e-5);
        }
    }

    #[test]
    fn batch_loss_averages_and_weights() {
        let l = Loss::MeanSquaredError;
        let preds = [1.0, 2.0];
        let targets = [0.0, 0.0];
        assert!((l.batch_value(&preds, &targets, None) - 2.5).abs() < 1e-12);
        let weighted = l.batch_value(&preds, &targets, Some(&[1.0, 0.0]));
        assert!((weighted - 0.5).abs() < 1e-12);
    }

    #[test]
    fn batch_gradient_scales_with_weights_and_batch_size() {
        let l = Loss::MeanSquaredError;
        let g = l.batch_gradient(&[2.0, 2.0], &[0.0, 0.0], Some(&[1.0, 0.5]));
        assert!((g[0] - 2.0).abs() < 1e-12); // 1.0 * 2*2 / 2
        assert!((g[1] - 1.0).abs() < 1e-12); // 0.5 * 2*2 / 2
    }

    #[test]
    fn empty_batch_is_zero() {
        assert_eq!(Loss::huber().batch_value(&[], &[], None), 0.0);
        assert!(Loss::huber().batch_gradient(&[], &[], None).is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        Loss::huber().batch_value(&[1.0], &[1.0, 2.0], None);
    }
}
