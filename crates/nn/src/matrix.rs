//! A minimal row-major `f64` matrix with the operations a dense MLP needs.
//!
//! This is deliberately not a general tensor library, but the product kernels are the
//! hottest code in the serving path (`forward_batch_into` bottoms out here), so they
//! are written as cache-blocked, autovectorizer-friendly register-tile kernels rather
//! than scalar triple loops.
//!
//! # Kernel design and the reduction-order contract
//!
//! Every kernel processes fixed-width register tiles: [`MR`] output rows × [`NR`]
//! contiguous output lanes accumulate in local arrays (which the autovectorizer keeps
//! in SIMD registers), and the inner loop walks the shared dimension once with the
//! operand panels loaded contiguously. Edge tiles fall back to narrower tiles and a
//! scalar column loop.
//!
//! The load-bearing invariant is that the **per-output-element reduction order is a
//! function of the inner dimension only** — never of the batch size, the tile the
//! element landed in, or the thread count:
//!
//! - `matmul` / `matmul_into` / `matmul_tn_acc`: element `(i, j)` is the strict
//!   ascending-`k` sum `((..(a_{i0}·b_{0j}) + a_{i1}·b_{1j}) + ..)`, exactly the order
//!   of the textbook scalar loop. Register tiles only change *which elements advance
//!   together*, not the order within an element, so a blocked result is bit-identical
//!   to the scalar reference — and a row of a size-N batch is bit-identical to the
//!   same row forwarded alone, which is the invariant the online serving layer's
//!   micro-batching and the `serving_parity` suite rest on.
//! - `matmul_nt` / `matmul_nt_into`: each element is an independent dot product, which
//!   a single serial chain would leave latency-bound; it is accumulated in [`DOT_LANES`]
//!   interleaved partial sums (lane `c` takes `k ≡ c (mod DOT_LANES)` in ascending
//!   order) combined by a fixed balanced tree. The order is still a pure function of
//!   the inner dimension, so results remain independent of batch size and thread
//!   count; they simply differ (by rounding reassociation) from the serial-chain sum.
//!
//! Products deliberately do **not** skip zero operands: `0·∞` and `0·NaN` must produce
//! NaN (IEEE 754), and a data-dependent branch in the inner loop defeats
//! vectorization. The kernels use plain mul-then-add (no `mul_add`) so results do not
//! depend on whether the build target has fused-multiply-add hardware.

use serde::{Deserialize, Serialize};

/// Output rows advanced together by one register tile.
const MR: usize = 4;
/// Contiguous output lanes (f64 columns) per register-tile row.
const NR: usize = 8;
/// Interleaved partial-sum lanes of the `matmul_nt` dot-product kernel.
const DOT_LANES: usize = 8;

/// `out[i0..i0+MR][j0..j0+NR] = a · b` for one full register tile, accumulating every
/// element in strict ascending-`k` order. `a` is the `m × k` left operand, `b` the
/// `k × n` right operand, both row-major.
#[inline(always)]
fn tile_mr_nr(a: &[f64], b: &[f64], out: &mut [f64], kdim: usize, n: usize, i0: usize, j0: usize) {
    let mut acc = [[0.0f64; NR]; MR];
    for kk in 0..kdim {
        let brow = &b[kk * n + j0..kk * n + j0 + NR];
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let av = a[(i0 + r) * kdim + kk];
            for (s, &bv) in acc_row.iter_mut().zip(brow) {
                *s += av * bv;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        out[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR].copy_from_slice(acc_row);
    }
}

/// One-row variant of [`tile_mr_nr`] for the `m % MR` edge rows.
#[inline(always)]
fn tile_1_nr(a: &[f64], b: &[f64], out: &mut [f64], kdim: usize, n: usize, i: usize, j0: usize) {
    let mut acc = [0.0f64; NR];
    let arow = &a[i * kdim..(i + 1) * kdim];
    for (kk, &av) in arow.iter().enumerate() {
        let brow = &b[kk * n + j0..kk * n + j0 + NR];
        for (s, &bv) in acc.iter_mut().zip(brow) {
            *s += av * bv;
        }
    }
    out[i * n + j0..i * n + j0 + NR].copy_from_slice(&acc);
}

/// Scalar edge columns (`n % NR`) of row `i`: same strict ascending-`k` order.
#[inline(always)]
fn edge_cols(a: &[f64], b: &[f64], out: &mut [f64], kdim: usize, n: usize, i: usize, j0: usize) {
    let arow = &a[i * kdim..(i + 1) * kdim];
    for j in j0..n {
        let mut s = 0.0f64;
        for (kk, &av) in arow.iter().enumerate() {
            s += av * b[kk * n + j];
        }
        out[i * n + j] = s;
    }
}

/// Blocked `acc[j, l] += Σ_i a[i, j] · b[i, l]` (`aᵀ · b` accumulated into `acc`):
/// register tiles of `MR` output rows (columns `j` of `a`) × `NR` lanes, each element
/// advancing in strict ascending-`i` order seeded from the existing accumulator value
/// — exactly the incremental `+=` of the scalar reference loop. `a` is `m × ja`
/// row-major, `b` is `m × n` row-major, `acc` is `ja × n` row-major.
fn gemm_tn_acc(a: &[f64], b: &[f64], acc: &mut [f64], m: usize, ja: usize, n: usize) {
    debug_assert_eq!(a.len(), m * ja);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(acc.len(), ja * n);
    let j_full = ja - ja % MR;
    let n_full = n - n % NR;
    let mut j0 = 0;
    while j0 < j_full {
        let mut l0 = 0;
        while l0 < n_full {
            let mut tile = [[0.0f64; NR]; MR];
            for (r, tile_row) in tile.iter_mut().enumerate() {
                tile_row.copy_from_slice(&acc[(j0 + r) * n + l0..(j0 + r) * n + l0 + NR]);
            }
            for i in 0..m {
                let brow = &b[i * n + l0..i * n + l0 + NR];
                for (r, tile_row) in tile.iter_mut().enumerate() {
                    let av = a[i * ja + j0 + r];
                    for (s, &bv) in tile_row.iter_mut().zip(brow) {
                        *s += av * bv;
                    }
                }
            }
            for (r, tile_row) in tile.iter().enumerate() {
                acc[(j0 + r) * n + l0..(j0 + r) * n + l0 + NR].copy_from_slice(tile_row);
            }
            l0 += NR;
        }
        for r in 0..MR {
            for l in n_full..n {
                let mut s = acc[(j0 + r) * n + l];
                for i in 0..m {
                    s += a[i * ja + j0 + r] * b[i * n + l];
                }
                acc[(j0 + r) * n + l] = s;
            }
        }
        j0 += MR;
    }
    for j in j_full..ja {
        let mut l0 = 0;
        while l0 < n_full {
            let mut tile = [0.0f64; NR];
            tile.copy_from_slice(&acc[j * n + l0..j * n + l0 + NR]);
            for i in 0..m {
                let av = a[i * ja + j];
                let brow = &b[i * n + l0..i * n + l0 + NR];
                for (s, &bv) in tile.iter_mut().zip(brow) {
                    *s += av * bv;
                }
            }
            acc[j * n + l0..j * n + l0 + NR].copy_from_slice(&tile);
            l0 += NR;
        }
        for l in n_full..n {
            let mut s = acc[j * n + l];
            for i in 0..m {
                s += a[i * ja + j] * b[i * n + l];
            }
            acc[j * n + l] = s;
        }
    }
}

/// One dot product `Σ_k x_k · y_k` in [`DOT_LANES`] interleaved partial sums (lane `c`
/// takes the terms with `k ≡ c (mod DOT_LANES)`, each in ascending-`k` order) combined
/// by a fixed balanced tree. The reduction order is a pure function of the length, so
/// `matmul_nt` results are independent of batch size and thread count.
#[inline(always)]
fn dot_lanes(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut lanes = [0.0f64; DOT_LANES];
    let chunks = x.len() / DOT_LANES;
    for t in 0..chunks {
        let xs = &x[t * DOT_LANES..(t + 1) * DOT_LANES];
        let ys = &y[t * DOT_LANES..(t + 1) * DOT_LANES];
        for (lane, (&xv, &yv)) in lanes.iter_mut().zip(xs.iter().zip(ys)) {
            *lane += xv * yv;
        }
    }
    for (c, (&xv, &yv)) in x[chunks * DOT_LANES..]
        .iter()
        .zip(&y[chunks * DOT_LANES..])
        .enumerate()
    {
        lanes[c] += xv * yv;
    }
    let q0 = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    let q1 = (lanes[4] + lanes[5]) + (lanes[6] + lanes[7]);
    q0 + q1
}

/// Blocked `out = a · b` (`m × k` times `k × n`, all row-major, `out` overwritten).
/// Bit-identical to the scalar `i, k, j` reference loop for every shape.
fn gemm_nn(a: &[f64], b: &[f64], out: &mut [f64], m: usize, kdim: usize, n: usize) {
    debug_assert_eq!(a.len(), m * kdim);
    debug_assert_eq!(b.len(), kdim * n);
    debug_assert_eq!(out.len(), m * n);
    let m_full = m - m % MR;
    let n_full = n - n % NR;
    let mut i0 = 0;
    while i0 < m_full {
        let mut j0 = 0;
        while j0 < n_full {
            tile_mr_nr(a, b, out, kdim, n, i0, j0);
            j0 += NR;
        }
        for r in 0..MR {
            edge_cols(a, b, out, kdim, n, i0 + r, n_full);
        }
        i0 += MR;
    }
    for i in m_full..m {
        let mut j0 = 0;
        while j0 < n_full {
            tile_1_nr(a, b, out, kdim, n, i, j0);
            j0 += NR;
        }
        edge_cols(a, b, out, kdim, n, i, n_full);
    }
}

/// A dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// Create a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if the vector length does not equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length must match dimensions");
        Self { rows, cols, data }
    }

    /// Create a 1×n row matrix from a slice.
    pub fn row_from_slice(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Set the element at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// A view of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A mutable view of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        gemm_nn(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
        out
    }

    /// Reshape in place to `rows × cols`, reusing the existing allocation, and zero the
    /// contents (the shape every accumulating product expects).
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn reset_to(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshape in place without zeroing (the caller overwrites every element). Keeps
    /// stale contents in the buffer, so this stays private to the kernels.
    fn reshape_for_overwrite(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Copy another matrix's shape and contents into this one, reusing the allocation.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Matrix product `self · other` written into `out` (reshaped as needed, allocation
    /// reused). The workhorse behind [`Matrix::matmul`] for preallocated pipelines.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reshape_for_overwrite(self.rows, other.cols);
        gemm_nn(
            &self.data,
            &other.data,
            &mut out.data,
            self.rows,
            self.cols,
            other.cols,
        );
    }

    /// Transpose-free product `selfᵀ · other` (a `cols × other.cols` result). Equivalent
    /// to `self.transpose().matmul(other)` without materialising the transposed copy;
    /// this is the backward pass's `dL/dW = inputᵀ · dL/dz`.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_tn_acc(other, &mut out);
        out
    }

    /// Accumulate `selfᵀ · other` into `acc` (which must already have the right shape).
    /// Lets gradient accumulation write straight into the gradient buffer with no
    /// temporary.
    ///
    /// # Panics
    /// Panics if shapes are inconsistent.
    pub fn matmul_tn_acc(&self, other: &Matrix, acc: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn dimension mismatch: {}x{}ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (acc.rows, acc.cols),
            (self.cols, other.cols),
            "matmul_tn accumulator shape mismatch"
        );
        gemm_tn_acc(
            &self.data,
            &other.data,
            &mut acc.data,
            self.rows,
            self.cols,
            other.cols,
        );
    }

    /// Transpose-free product `self · otherᵀ` (a `rows × other.rows` result). Equivalent
    /// to `self.matmul(&other.transpose())` without materialising the transposed copy;
    /// this is the backward pass's `dL/d(input) = dL/dz · Wᵀ`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// `self · otherᵀ` written into `out` (reshaped as needed, allocation reused).
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt dimension mismatch: {}x{} · {}x{}ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reshape_for_overwrite(self.rows, other.rows);
        // out[i, l] = dot(self.row(i), other.row(l)): both rows are contiguous, and
        // each dot runs in the fixed interleaved-lane order of `dot_lanes`.
        for i in 0..self.rows {
            let self_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.rows..(i + 1) * other.rows];
            for (l, o) in out_row.iter_mut().enumerate() {
                let other_row = &other.data[l * other.cols..(l + 1) * other.cols];
                *o = dot_lanes(self_row, other_row);
            }
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise map in place (e.g. applying an activation to a preallocated
    /// pre-activation buffer). Identical per-element results to [`Matrix::map`].
    pub fn map_assign(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two equally-shaped matrices.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling by a constant.
    pub fn scale_assign(&mut self, factor: f64) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Add a row vector (e.g. a bias) to every row.
    ///
    /// # Panics
    /// Panics if the vector length does not equal the column count.
    pub fn add_row_broadcast(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "broadcast length mismatch");
        for i in 0..self.rows {
            for (a, &b) in self.row_mut(i).iter_mut().zip(row) {
                *a += b;
            }
        }
    }

    /// Column-wise sums (used for bias gradients).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(i)) {
                *s += v;
            }
        }
        sums
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Index of the maximum element of row `i`.
    pub fn row_argmax(&self, i: usize) -> usize {
        let row = self.row(i);
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        best
    }

    /// Maximum element of row `i`.
    pub fn row_max(&self, i: usize) -> f64 {
        self.row(i)
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Frobenius norm (root of the sum of squared elements).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_fn_and_set() {
        let mut m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.get(1, 1), 11.0);
        m.set(0, 0, 7.0);
        assert_eq!(m.get(0, 0), 7.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn matmul_into_reuses_and_matches() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut out = Matrix::zeros(5, 5); // wrong shape on purpose: reset_to reshapes
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // Run again into the same buffer: contents must not accumulate.
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 4, (1..=12).map(f64::from).collect());
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_tn_acc_accumulates() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let mut acc = a.matmul_tn(&b);
        a.matmul_tn_acc(&b, &mut acc);
        let mut doubled = a.transpose().matmul(&b);
        doubled.scale_assign(2.0);
        assert_eq!(acc, doubled);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, -2.0, 3.0, 0.5, 0.0, -1.0]);
        let b = Matrix::from_vec(4, 3, (1..=12).map(f64::from).collect());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn copy_from_and_reset_reuse_the_allocation() {
        let src = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut dst = Matrix::zeros(1, 8);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.reset_to(2, 3);
        assert_eq!(dst.rows(), 2);
        assert_eq!(dst.cols(), 3);
        assert!(dst.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_operations() {
        let a = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        assert_eq!(a.map(|x| x * 2.0).data(), &[2.0, -4.0, 6.0]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).data(), &[11.0, 18.0, 33.0]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.data(), &[11.0, 18.0, 33.0]);
        c.scale_assign(0.5);
        assert_eq!(c.data(), &[5.5, 9.0, 16.5]);
    }

    #[test]
    fn broadcast_and_column_sums() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        m.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(m.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(m.column_sums(), vec![24.0, 46.0]);
    }

    #[test]
    fn row_statistics() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 5.0, 3.0, -1.0, -5.0, -3.0]);
        assert_eq!(m.row_argmax(0), 1);
        assert_eq!(m.row_argmax(1), 0);
        assert_eq!(m.row_max(0), 5.0);
        assert_eq!(m.row_max(1), -1.0);
        assert!((m.mean() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        Matrix::zeros(0, 3);
    }

    #[test]
    fn zero_times_non_finite_poisons_the_product() {
        // IEEE 754: 0·∞ and 0·NaN are NaN. The old kernels skipped zero left-hand
        // operands ("sparse" shortcut) and silently produced 0 instead.
        let a = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let inf = Matrix::from_vec(2, 1, vec![f64::INFINITY, 2.0]);
        let nan = Matrix::from_vec(2, 1, vec![f64::NAN, 2.0]);
        assert!(a.matmul(&inf).get(0, 0).is_nan());
        assert!(a.matmul(&nan).get(0, 0).is_nan());
        let mut out = Matrix::zeros(1, 1);
        a.matmul_into(&inf, &mut out);
        assert!(out.get(0, 0).is_nan());

        // aᵀ · b with a zero in the transposed operand row hitting a non-finite b.
        let left = Matrix::from_vec(1, 2, vec![0.0, 3.0]);
        let right = Matrix::from_vec(1, 1, vec![f64::INFINITY]);
        let mut acc = Matrix::zeros(2, 1);
        left.matmul_tn_acc(&right, &mut acc);
        assert!(acc.get(0, 0).is_nan(), "0·∞ must be NaN in matmul_tn_acc");
        assert!(acc.get(1, 0).is_infinite());

        // a · bᵀ where the zero lane of a meets an infinite lane of b.
        let bt = Matrix::from_vec(1, 2, vec![f64::INFINITY, 0.5]);
        assert!(a.matmul_nt(&bt).get(0, 0).is_nan());
    }

    /// The scalar reference loop of the blocked NN kernels (strict ascending-k).
    fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0f64;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_scalar_reference_on_ragged_shapes() {
        // Shapes straddling every tile boundary: < MR/NR, exact multiples, and
        // multiples plus remainders.
        for (m, k, n) in [
            (1, 1, 1),
            (1, 15, 32),
            (3, 7, 5),
            (4, 8, 8),
            (5, 9, 17),
            (9, 13, 19),
            (12, 32, 24),
        ] {
            let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 7) as f64 * 0.37).sin());
            let b = Matrix::from_fn(k, n, |i, j| ((i * 13 + j * 11) as f64 * 0.23).cos());
            let blocked = a.matmul(&b);
            let reference = reference_matmul(&a, &b);
            for (x, y) in blocked.data().iter().zip(reference.data()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}·{k}x{n} diverged");
            }
        }
    }
}
