//! A minimal row-major `f64` matrix with the operations a dense MLP needs.
//!
//! This is deliberately not a general tensor library: the Q-networks in this project are
//! small (at most a few hundred units per layer), so clarity and correctness beat clever
//! blocking. The hot path — `matmul` — iterates in `i, k, j` order so the inner loop
//! walks both operands contiguously, which the compiler auto-vectorises well enough for
//! the network sizes involved.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// Create a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if the vector length does not equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length must match dimensions");
        Self { rows, cols, data }
    }

    /// Create a 1×n row matrix from a slice.
    pub fn row_from_slice(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Set the element at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// A view of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A mutable view of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let other_row = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise combination of two equally-shaped matrices.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling by a constant.
    pub fn scale_assign(&mut self, factor: f64) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Add a row vector (e.g. a bias) to every row.
    ///
    /// # Panics
    /// Panics if the vector length does not equal the column count.
    pub fn add_row_broadcast(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "broadcast length mismatch");
        for i in 0..self.rows {
            for (a, &b) in self.row_mut(i).iter_mut().zip(row) {
                *a += b;
            }
        }
    }

    /// Column-wise sums (used for bias gradients).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(i)) {
                *s += v;
            }
        }
        sums
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Index of the maximum element of row `i`.
    pub fn row_argmax(&self, i: usize) -> usize {
        let row = self.row(i);
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        best
    }

    /// Maximum element of row `i`.
    pub fn row_max(&self, i: usize) -> f64 {
        self.row(i).iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Frobenius norm (root of the sum of squared elements).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_fn_and_set() {
        let mut m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.get(1, 1), 11.0);
        m.set(0, 0, 7.0);
        assert_eq!(m.get(0, 0), 7.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_operations() {
        let a = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        assert_eq!(a.map(|x| x * 2.0).data(), &[2.0, -4.0, 6.0]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).data(), &[11.0, 18.0, 33.0]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.data(), &[11.0, 18.0, 33.0]);
        c.scale_assign(0.5);
        assert_eq!(c.data(), &[5.5, 9.0, 16.5]);
    }

    #[test]
    fn broadcast_and_column_sums() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        m.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(m.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(m.column_sums(), vec![24.0, 46.0]);
    }

    #[test]
    fn row_statistics() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 5.0, 3.0, -1.0, -5.0, -3.0]);
        assert_eq!(m.row_argmax(0), 1);
        assert_eq!(m.row_argmax(1), 0);
        assert_eq!(m.row_max(0), 5.0);
        assert_eq!(m.row_max(1), -1.0);
        assert!((m.mean() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        Matrix::zeros(0, 3);
    }
}
