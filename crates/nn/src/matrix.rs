//! A minimal row-major `f64` matrix with the operations a dense MLP needs.
//!
//! This is deliberately not a general tensor library: the Q-networks in this project are
//! small (at most a few hundred units per layer), so clarity and correctness beat clever
//! blocking. The hot path — `matmul` — iterates in `i, k, j` order so the inner loop
//! walks both operands contiguously, which the compiler auto-vectorises well enough for
//! the network sizes involved.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// Create a matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if the vector length does not equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length must match dimensions");
        Self { rows, cols, data }
    }

    /// Create a 1×n row matrix from a slice.
    pub fn row_from_slice(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Set the element at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// A view of row `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// A mutable view of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let other_row = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Reshape in place to `rows × cols`, reusing the existing allocation, and zero the
    /// contents (the shape every accumulating product expects).
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn reset_to(&mut self, rows: usize, cols: usize) {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Copy another matrix's shape and contents into this one, reusing the allocation.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Matrix product `self · other` written into `out` (reshaped as needed, allocation
    /// reused). The workhorse behind [`Matrix::matmul`] for preallocated pipelines.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset_to(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let other_row = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// Transpose-free product `selfᵀ · other` (a `cols × other.cols` result). Equivalent
    /// to `self.transpose().matmul(other)` without materialising the transposed copy;
    /// this is the backward pass's `dL/dW = inputᵀ · dL/dz`.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_tn_acc(other, &mut out);
        out
    }

    /// Accumulate `selfᵀ · other` into `acc` (which must already have the right shape).
    /// Lets gradient accumulation write straight into the gradient buffer with no
    /// temporary.
    ///
    /// # Panics
    /// Panics if shapes are inconsistent.
    pub fn matmul_tn_acc(&self, other: &Matrix, acc: &mut Matrix) {
        assert_eq!(
            self.rows, other.rows,
            "matmul_tn dimension mismatch: {}x{}ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (acc.rows, acc.cols),
            (self.cols, other.cols),
            "matmul_tn accumulator shape mismatch"
        );
        // out[j, l] += self[i, j] * other[i, l]: walking i outermost keeps both operand
        // rows and the output row contiguous in the inner loop.
        for i in 0..self.rows {
            let self_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let other_row = &other.data[i * other.cols..(i + 1) * other.cols];
            for (j, &a) in self_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let acc_row = &mut acc.data[j * other.cols..(j + 1) * other.cols];
                for (o, &b) in acc_row.iter_mut().zip(other_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// Transpose-free product `self · otherᵀ` (a `rows × other.rows` result). Equivalent
    /// to `self.matmul(&other.transpose())` without materialising the transposed copy;
    /// this is the backward pass's `dL/d(input) = dL/dz · Wᵀ`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// `self · otherᵀ` written into `out` (reshaped as needed, allocation reused).
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_nt dimension mismatch: {}x{} · {}x{}ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset_to(self.rows, other.rows);
        // out[i, l] = dot(self.row(i), other.row(l)): both rows are contiguous.
        for i in 0..self.rows {
            let self_row = &self.data[i * self.cols..(i + 1) * self.cols];
            let out_row = &mut out.data[i * other.rows..(i + 1) * other.rows];
            for (l, o) in out_row.iter_mut().enumerate() {
                let other_row = &other.data[l * other.cols..(l + 1) * other.cols];
                *o = self_row.iter().zip(other_row).map(|(&a, &b)| a * b).sum();
            }
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise map in place (e.g. applying an activation to a preallocated
    /// pre-activation buffer). Identical per-element results to [`Matrix::map`].
    pub fn map_assign(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two equally-shaped matrices.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling by a constant.
    pub fn scale_assign(&mut self, factor: f64) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Add a row vector (e.g. a bias) to every row.
    ///
    /// # Panics
    /// Panics if the vector length does not equal the column count.
    pub fn add_row_broadcast(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "broadcast length mismatch");
        for i in 0..self.rows {
            for (a, &b) in self.row_mut(i).iter_mut().zip(row) {
                *a += b;
            }
        }
    }

    /// Column-wise sums (used for bias gradients).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(i)) {
                *s += v;
            }
        }
        sums
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Index of the maximum element of row `i`.
    pub fn row_argmax(&self, i: usize) -> usize {
        let row = self.row(i);
        let mut best = 0;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        best
    }

    /// Maximum element of row `i`.
    pub fn row_max(&self, i: usize) -> f64 {
        self.row(i)
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Frobenius norm (root of the sum of squared elements).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|&x| x * x).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_fn_and_set() {
        let mut m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.get(1, 1), 11.0);
        m.set(0, 0, 7.0);
        assert_eq!(m.get(0, 0), 7.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn matmul_into_reuses_and_matches() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut out = Matrix::zeros(5, 5); // wrong shape on purpose: reset_to reshapes
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        // Run again into the same buffer: contents must not accumulate.
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 4, (1..=12).map(f64::from).collect());
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_tn_acc_accumulates() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let mut acc = a.matmul_tn(&b);
        a.matmul_tn_acc(&b, &mut acc);
        let mut doubled = a.transpose().matmul(&b);
        doubled.scale_assign(2.0);
        assert_eq!(acc, doubled);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1.0, -2.0, 3.0, 0.5, 0.0, -1.0]);
        let b = Matrix::from_vec(4, 3, (1..=12).map(f64::from).collect());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn copy_from_and_reset_reuse_the_allocation() {
        let src = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let mut dst = Matrix::zeros(1, 8);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.reset_to(2, 3);
        assert_eq!(dst.rows(), 2);
        assert_eq!(dst.cols(), 3);
        assert!(dst.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn elementwise_operations() {
        let a = Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        assert_eq!(a.map(|x| x * 2.0).data(), &[2.0, -4.0, 6.0]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).data(), &[11.0, 18.0, 33.0]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.data(), &[11.0, 18.0, 33.0]);
        c.scale_assign(0.5);
        assert_eq!(c.data(), &[5.5, 9.0, 16.5]);
    }

    #[test]
    fn broadcast_and_column_sums() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        m.add_row_broadcast(&[10.0, 20.0]);
        assert_eq!(m.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(m.column_sums(), vec![24.0, 46.0]);
    }

    #[test]
    fn row_statistics() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 5.0, 3.0, -1.0, -5.0, -3.0]);
        assert_eq!(m.row_argmax(0), 1);
        assert_eq!(m.row_argmax(1), 0);
        assert_eq!(m.row_max(0), 5.0);
        assert_eq!(m.row_max(1), -1.0);
        assert!((m.mean() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        Matrix::zeros(0, 3);
    }
}
