//! A multi-layer perceptron assembled from dense layers.

use crate::activation::Activation;
use crate::init::WeightInit;
use crate::layer::DenseLayer;
use crate::matrix::Matrix;
use crate::optim::Optimizer;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of an MLP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpConfig {
    /// Input dimension (number of state features).
    pub input_dim: usize,
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Output dimension.
    pub output_dim: usize,
    /// Activation of the hidden layers.
    pub hidden_activation: Activation,
    /// Activation of the output layer.
    pub output_activation: Activation,
    /// Weight initialisation scheme.
    pub init: WeightInit,
}

impl MlpConfig {
    /// The paper's Q-network body: four hidden layers of 256, 256, 128 and 64 ReLU units
    /// and a linear output (Section 3.3.2).
    pub fn paper_q_network(input_dim: usize, output_dim: usize) -> Self {
        Self {
            input_dim,
            hidden: vec![256, 256, 128, 64],
            output_dim,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Identity,
            init: WeightInit::HeNormal,
        }
    }

    /// A small network for tests and fast experiments.
    pub fn small(input_dim: usize, output_dim: usize) -> Self {
        Self {
            input_dim,
            hidden: vec![32, 16],
            output_dim,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Identity,
            init: WeightInit::HeNormal,
        }
    }
}

/// Reusable buffers for the allocation-free batched inference path
/// ([`Mlp::forward_batch_into`] / [`crate::DuelingQNetwork::forward_batch_into`]).
///
/// One scratch serves batches of any size and networks of any width: every buffer is
/// reshaped (allocation reused) on each call. The buffers never influence results —
/// each forward pass overwrites them from scratch — so sharing one per thread across
/// many networks is sound.
#[derive(Debug, Clone)]
pub struct BatchScratch {
    /// Ping-pong activation buffers for the hidden layers.
    pub(crate) ping: Matrix,
    pub(crate) pong: Matrix,
    /// Value-head output (dueling networks only).
    pub(crate) value: Matrix,
    /// Advantage-head output (dueling networks only).
    pub(crate) advantage: Matrix,
}

impl BatchScratch {
    /// Create an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self {
            ping: Matrix::zeros(1, 1),
            pong: Matrix::zeros(1, 1),
            value: Matrix::zeros(1, 1),
            advantage: Matrix::zeros(1, 1),
        }
    }
}

impl Default for BatchScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// A fully-connected feed-forward network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

impl Mlp {
    /// Build an MLP from a configuration.
    ///
    /// # Panics
    /// Panics if the input or output dimension is zero.
    pub fn new<R: Rng + ?Sized>(config: &MlpConfig, rng: &mut R) -> Self {
        assert!(config.input_dim > 0, "input dimension must be positive");
        assert!(config.output_dim > 0, "output dimension must be positive");
        let mut layers = Vec::with_capacity(config.hidden.len() + 1);
        let mut in_dim = config.input_dim;
        for &width in &config.hidden {
            layers.push(DenseLayer::new(
                in_dim,
                width,
                config.hidden_activation,
                config.init,
                rng,
            ));
            in_dim = width;
        }
        layers.push(DenseLayer::new(
            in_dim,
            config.output_dim,
            config.output_activation,
            config.init,
            rng,
        ));
        Self { layers }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map(DenseLayer::input_dim).unwrap_or(0)
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().map(DenseLayer::output_dim).unwrap_or(0)
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(DenseLayer::param_count).sum()
    }

    /// The layers (for inspection and tests).
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Inference-only forward pass.
    pub fn forward(&self, input: &Matrix) -> Matrix {
        let (first, rest) = self.layers.split_first().expect("networks have layers");
        let mut x = first.forward(input);
        for layer in rest {
            x = layer.forward(&x);
        }
        x
    }

    /// Batched inference written into `out` with zero allocations after warm-up: every
    /// intermediate activation lands in one of the scratch's ping-pong buffers and the
    /// last layer writes straight into `out`. One row per input state.
    ///
    /// Rides the same kernels in the same order as [`Mlp::forward`], so each output row
    /// is **bit-identical** to forwarding that row alone — the property that lets the
    /// online serving path micro-batch decision requests at any batch size without
    /// changing a single decision.
    pub fn forward_batch_into(&self, input: &Matrix, scratch: &mut BatchScratch, out: &mut Matrix) {
        let (last, rest) = self.layers.split_last().expect("networks have layers");
        let mut src: &mut Matrix = &mut scratch.ping;
        let mut dst: &mut Matrix = &mut scratch.pong;
        let mut current: &Matrix = input;
        for layer in rest {
            layer.forward_batch_into(current, dst);
            std::mem::swap(&mut src, &mut dst);
            current = src;
        }
        last.forward_batch_into(current, out);
    }

    /// Training forward pass (caches per-layer activations for the backward pass; the
    /// per-layer caches are preallocated buffers reused across steps).
    pub fn forward_train(&mut self, input: &Matrix) -> Matrix {
        let (first, rest) = self.layers.split_first_mut().expect("networks have layers");
        let mut x = first.forward_train(input);
        for layer in rest {
            x = layer.forward_train(&x);
        }
        x
    }

    /// Backward pass from the gradient of the loss with respect to the network output.
    /// Gradients accumulate in each layer; returns the gradient with respect to the input.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let (last, rest) = self.layers.split_last_mut().expect("networks have layers");
        let mut grad = last.backward(grad_output);
        for layer in rest.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    /// Reset all accumulated gradients.
    pub fn clear_gradients(&mut self) {
        for layer in &mut self.layers {
            layer.clear_gradients();
        }
    }

    /// Apply the accumulated gradients with an optimizer and clear them.
    pub fn apply_gradients(&mut self, optimizer: &mut dyn Optimizer) {
        for (idx, layer) in self.layers.iter_mut().enumerate() {
            layer.visit_params(idx * 2, |id, params, grads| {
                optimizer.update(id, params, grads);
            });
        }
        self.clear_gradients();
    }

    /// Copy all weights from another network of identical architecture (target-network
    /// synchronisation).
    ///
    /// # Panics
    /// Panics if the architectures differ.
    pub fn sync_from(&mut self, other: &Mlp) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "layer count mismatch"
        );
        for (mine, theirs) in self.layers.iter_mut().zip(&other.layers) {
            mine.copy_params_from(theirs);
        }
    }

    /// Convenience single-sample prediction.
    pub fn predict_one(&self, features: &[f64]) -> Vec<f64> {
        self.forward(&Matrix::row_from_slice(features))
            .row(0)
            .to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(&MlpConfig::small(3, 2), &mut rng)
    }

    #[test]
    fn architecture_and_param_count() {
        let net = small_net(1);
        assert_eq!(net.input_dim(), 3);
        assert_eq!(net.output_dim(), 2);
        assert_eq!(net.layers().len(), 3);
        // 3*32+32 + 32*16+16 + 16*2+2 = 128 + 528 + 34
        assert_eq!(net.param_count(), 128 + 528 + 34);
    }

    #[test]
    fn paper_architecture_matches_section_3_3_2() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Mlp::new(&MlpConfig::paper_q_network(14, 2), &mut rng);
        let widths: Vec<usize> = net.layers().iter().map(DenseLayer::output_dim).collect();
        assert_eq!(widths, vec![256, 256, 128, 64, 2]);
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let net = small_net(3);
        let x = Matrix::from_vec(4, 3, vec![0.1; 12]);
        let y1 = net.forward(&x);
        let y2 = net.forward(&x);
        assert_eq!(y1.rows(), 4);
        assert_eq!(y1.cols(), 2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn forward_batch_into_is_bit_identical_to_forward() {
        let net = small_net(9);
        let x = Matrix::from_fn(5, 3, |i, j| (i as f64 * 0.3 - j as f64 * 0.7).sin());
        let reference = net.forward(&x);
        let mut scratch = BatchScratch::new();
        let mut out = Matrix::zeros(1, 1);
        net.forward_batch_into(&x, &mut scratch, &mut out);
        assert_eq!(out.rows(), 5);
        assert_eq!(out.cols(), 2);
        for (a, b) in out.data().iter().zip(reference.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Reusing the scratch with a different batch size must not leak state: every
        // row equals the single-row forward of that state, to the bit.
        let y = Matrix::from_fn(3, 3, |i, j| (i + 2 * j) as f64 * 0.11 - 0.4);
        net.forward_batch_into(&y, &mut scratch, &mut out);
        for i in 0..3 {
            let single = net.predict_one(y.row(i));
            for (a, b) in out.row(i).iter().zip(&single) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i} diverged from single-row");
            }
        }
    }

    #[test]
    fn predict_one_matches_forward() {
        let net = small_net(4);
        let features = [0.3, -0.2, 0.9];
        let single = net.predict_one(&features);
        let batch = net.forward(&Matrix::row_from_slice(&features));
        assert_eq!(single, batch.row(0));
    }

    #[test]
    fn gradient_check_against_numerical_derivative() {
        let mut net = small_net(5);
        let x = Matrix::from_vec(2, 3, vec![0.4, -0.3, 0.7, 0.1, 0.9, -0.8]);
        // Loss = sum of outputs; dL/dy = 1.
        let ones = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let _ = net.forward_train(&x);
        let _ = net.backward(&ones);
        // Compare a few weights of the first layer against central differences. The layer
        // weights are a 3x32 row-major matrix exposed through `visit_params` (tensor 0).
        let analytic = net.layers[0].grad_weights().clone();
        let cols = net.layers[0].output_dim();
        let eps = 1e-6;
        for (i, j) in [(0, 0), (1, 3), (2, 7)] {
            let mut plus = net.clone();
            let mut minus = net.clone();
            plus.layers[0].visit_params(0, |id, params, _| {
                if id == 0 {
                    params[i * cols + j] += eps;
                }
            });
            minus.layers[0].visit_params(0, |id, params, _| {
                if id == 0 {
                    params[i * cols + j] -= eps;
                }
            });
            let f_plus: f64 = plus.forward(&x).data().iter().sum();
            let f_minus: f64 = minus.forward(&x).data().iter().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (numeric - analytic.get(i, j)).abs() < 1e-4,
                "dW[{i}][{j}]: numeric {numeric} vs analytic {}",
                analytic.get(i, j)
            );
        }
    }

    #[test]
    fn training_reduces_loss_on_a_regression_task() {
        // Learn y = [x0 + x1, x0 - x1] on a fixed batch.
        let mut rng = StdRng::seed_from_u64(6);
        let mut net = Mlp::new(&MlpConfig::small(2, 2), &mut rng);
        let mut opt = Adam::new(0.01);
        let loss = Loss::MeanSquaredError;
        let inputs = Matrix::from_vec(4, 2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let targets = Matrix::from_vec(4, 2, vec![0.0, 0.0, 1.0, 1.0, 1.0, -1.0, 2.0, 0.0]);

        let batch_loss = |net: &Mlp| -> f64 {
            let y = net.forward(&inputs);
            loss.batch_value(y.data(), targets.data(), None)
        };
        let initial = batch_loss(&net);
        for _ in 0..500 {
            let y = net.forward_train(&inputs);
            let grad = Matrix::from_vec(4, 2, loss.batch_gradient(y.data(), targets.data(), None));
            let _ = net.backward(&grad);
            net.apply_gradients(&mut opt);
        }
        let final_loss = batch_loss(&net);
        assert!(
            final_loss < initial * 0.05,
            "loss should fall sharply: {initial} -> {final_loss}"
        );
    }

    #[test]
    fn sync_from_copies_weights_exactly() {
        let mut a = small_net(7);
        let b = small_net(8);
        assert_ne!(
            a.forward(&Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0])),
            b.forward(&Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]))
        );
        a.sync_from(&b);
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn seeds_give_reproducible_networks() {
        let a = small_net(42);
        let b = small_net(42);
        let x = Matrix::from_vec(1, 3, vec![0.5, 0.5, 0.5]);
        assert_eq!(a.forward(&x), b.forward(&x));
    }
}
