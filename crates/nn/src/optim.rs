//! First-order optimizers: SGD (with momentum), RMSProp and Adam.
//!
//! Optimizers keep their per-parameter state (momenta, second moments) keyed by a stable
//! tensor id supplied by the network's parameter visitor, so one optimizer instance can
//! drive a whole network without the network having to know which optimizer is in use.
//! The hyperparameter search of the evaluation harness varies the learning rate, so every
//! optimizer exposes `set_learning_rate`.

use std::collections::HashMap;

/// A first-order gradient-descent optimizer.
pub trait Optimizer {
    /// Update one parameter tensor in place given its accumulated gradient.
    fn update(&mut self, tensor_id: usize, params: &mut [f64], grads: &[f64]);

    /// Current learning rate.
    fn learning_rate(&self) -> f64;

    /// Replace the learning rate (used by the hyperparameter search and LR schedules).
    fn set_learning_rate(&mut self, lr: f64);

    /// Drop all accumulated state (used when re-initialising an agent).
    fn reset_state(&mut self);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: HashMap<usize, Vec<f64>>,
}

impl Sgd {
    /// Create an SGD optimizer. `momentum = 0` gives plain SGD.
    ///
    /// # Panics
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn new(lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, tensor_id: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "parameter/gradient length mismatch"
        );
        if self.momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
            return;
        }
        let velocity = self
            .velocity
            .entry(tensor_id)
            .or_insert_with(|| vec![0.0; params.len()]);
        assert_eq!(velocity.len(), params.len(), "tensor size changed");
        for ((p, &g), v) in params.iter_mut().zip(grads).zip(velocity.iter_mut()) {
            *v = self.momentum * *v - self.lr * g;
            *p += *v;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
    }

    fn reset_state(&mut self) {
        self.velocity.clear();
    }
}

/// RMSProp: scales updates by a running estimate of the squared gradient.
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f64,
    decay: f64,
    epsilon: f64,
    mean_square: HashMap<usize, Vec<f64>>,
}

impl RmsProp {
    /// Create an RMSProp optimizer with the conventional defaults for `decay` (0.99).
    pub fn new(lr: f64) -> Self {
        Self::with_decay(lr, 0.99)
    }

    /// Create an RMSProp optimizer with an explicit decay.
    ///
    /// # Panics
    /// Panics if `lr <= 0` or `decay` is outside `(0, 1)`.
    pub fn with_decay(lr: f64, decay: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        assert!(decay > 0.0 && decay < 1.0, "decay must be in (0, 1)");
        Self {
            lr,
            decay,
            epsilon: 1e-8,
            mean_square: HashMap::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn update(&mut self, tensor_id: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "parameter/gradient length mismatch"
        );
        let ms = self
            .mean_square
            .entry(tensor_id)
            .or_insert_with(|| vec![0.0; params.len()]);
        assert_eq!(ms.len(), params.len(), "tensor size changed");
        for ((p, &g), m) in params.iter_mut().zip(grads).zip(ms.iter_mut()) {
            *m = self.decay * *m + (1.0 - self.decay) * g * g;
            *p -= self.lr * g / (m.sqrt() + self.epsilon);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
    }

    fn reset_state(&mut self) {
        self.mean_square.clear();
    }
}

/// Adam: adaptive moment estimation with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    step: u64,
    first_moment: HashMap<usize, Vec<f64>>,
    second_moment: HashMap<usize, Vec<f64>>,
}

impl Adam {
    /// Create an Adam optimizer with the conventional β₁ = 0.9, β₂ = 0.999.
    ///
    /// # Panics
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step: 0,
            first_moment: HashMap::new(),
            second_moment: HashMap::new(),
        }
    }

    /// Number of update steps taken so far (shared across tensors).
    pub fn steps(&self) -> u64 {
        self.step
    }
}

impl Optimizer for Adam {
    fn update(&mut self, tensor_id: usize, params: &mut [f64], grads: &[f64]) {
        assert_eq!(
            params.len(),
            grads.len(),
            "parameter/gradient length mismatch"
        );
        // Tensor 0 marks the start of a new optimisation step so bias correction uses a
        // consistent step count across all tensors of one network update.
        if tensor_id == 0 {
            self.step += 1;
        }
        let t = self.step.max(1) as f64;
        let m = self
            .first_moment
            .entry(tensor_id)
            .or_insert_with(|| vec![0.0; params.len()]);
        let v = self
            .second_moment
            .entry(tensor_id)
            .or_insert_with(|| vec![0.0; params.len()]);
        assert_eq!(m.len(), params.len(), "tensor size changed");
        let bias1 = 1.0 - self.beta1.powf(t);
        let bias2 = 1.0 - self.beta2.powf(t);
        for (((p, &g), mi), vi) in params
            .iter_mut()
            .zip(grads)
            .zip(m.iter_mut())
            .zip(v.iter_mut())
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            let m_hat = *mi / bias1;
            let v_hat = *vi / bias2;
            *p -= self.lr * m_hat / (v_hat.sqrt() + self.epsilon);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
    }

    fn reset_state(&mut self) {
        self.step = 0;
        self.first_moment.clear();
        self.second_moment.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise f(x) = (x - 3)^2 starting from 0 and check convergence.
    fn minimise(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut x = vec![0.0f64];
        for _ in 0..steps {
            let grad = vec![2.0 * (x[0] - 3.0)];
            opt.update(0, &mut x, &grad);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        let x = minimise(&mut opt, 200);
        assert!((x - 3.0).abs() < 1e-6, "x = {x}");
    }

    #[test]
    fn sgd_with_momentum_converges_faster_than_plain() {
        let mut plain = Sgd::new(0.01, 0.0);
        let mut momentum = Sgd::new(0.01, 0.9);
        let x_plain = minimise(&mut plain, 100);
        let x_momentum = minimise(&mut momentum, 100);
        assert!((x_momentum - 3.0).abs() < (x_plain - 3.0).abs());
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        let mut opt = RmsProp::new(0.05);
        let x = minimise(&mut opt, 500);
        assert!((x - 3.0).abs() < 0.05, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let x = minimise(&mut opt, 500);
        assert!((x - 3.0).abs() < 0.01, "x = {x}");
        assert!(opt.steps() > 0);
    }

    #[test]
    fn learning_rate_can_be_changed() {
        let mut opt: Box<dyn Optimizer> = Box::new(Adam::new(0.1));
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
    }

    #[test]
    fn reset_state_clears_moments() {
        let mut opt = Adam::new(0.1);
        let mut x = vec![0.0];
        opt.update(0, &mut x, &[1.0]);
        assert_eq!(opt.steps(), 1);
        opt.reset_state();
        assert_eq!(opt.steps(), 0);
    }

    #[test]
    fn separate_tensors_have_separate_state() {
        let mut opt = Sgd::new(0.1, 0.9);
        let mut a = vec![0.0];
        let mut b = vec![0.0];
        for _ in 0..10 {
            opt.update(0, &mut a, &[1.0]);
            opt.update(1, &mut b, &[-1.0]);
        }
        assert!(a[0] < 0.0);
        assert!(b[0] > 0.0);
        assert!(
            (a[0] + b[0]).abs() < 1e-12,
            "symmetric histories stay symmetric"
        );
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_learning_rate_rejected() {
        Sgd::new(0.0, 0.0);
    }
}
