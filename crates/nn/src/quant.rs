//! Quantized inference: per-layer symmetric i8 weights, i32 accumulators and f32
//! dequantization at layer boundaries.
//!
//! A [`QuantizedLayer`] freezes a trained [`DenseLayer`] into i8: each **output column**
//! of the weight matrix is scaled by its own symmetric scale (`max|w[·, j]| / 127`) and
//! rounded to `[-127, 127]`; the bias stays in f32. Per-column (a.k.a. per-channel)
//! scales matter because a single per-layer scale lets the largest weight anywhere in
//! the matrix set the step size for every column — columns with small weights would
//! quantize to a handful of levels and the resulting Q-value error flips near-tie
//! decisions. At inference time each **input row** is quantized to i16 with its own
//! dynamic symmetric scale (`max|x| / 32767`) — activations are transient, so the wider
//! type costs no model memory while removing the dominant rounding error — the matmul
//! runs entirely in i16×i8→i32 — integer accumulation is exact, so the result is
//! independent of summation order — and the i32 accumulators are dequantized back to
//! f32 (`acc · w_scale[j] · x_scale + bias[j]`) before the activation is applied in f32.
//!
//! Determinism contract: a row's quantized output depends only on that row and the layer
//! constants. There is no cross-row coupling and no floating-point reduction whose order
//! could vary, so the i8 path is bit-identical across batch sizes, shard counts and
//! thread counts — the same invariant the f64 path pins — even though it intentionally
//! diverges from the f64 oracle in value. The `quant_parity` perf_report stage measures
//! that divergence as a decision-match rate against the f32/f64 oracle.
//!
//! Accumulator headroom: every term is at most `32 767 · 127 = 4 161 409` in magnitude,
//! so an i32 accumulator overflows only beyond `k = 516`; [`QuantizedLayer::from_dense`]
//! asserts that bound, which sits far above the widest layer in the workspace (256).
//!
//! **Calibration.** The `*_calibrated` constructors take a batch of representative
//! input states (the agent retains a deterministic reservoir of replay states for this)
//! and apply two zero-inference-cost corrections, layer by layer in serving order:
//! sequential **bias correction** — the mean pre-activation error between the exact f64
//! path and the already-corrected quantized path is folded into each layer's f32 bias —
//! and **decision-aware rounding** of the final two-column `Identity` gap head, a greedy
//! floor/ceil coordinate descent minimizing the variance of the Q-gap error over the
//! calibration batch (round-to-nearest minimizes per-weight error, but `argmax` only
//! sees the gap, where individual rounding errors can be chosen to cancel). Both
//! corrections only move frozen constants, so the determinism contract below is
//! untouched; what changes is how often the i8 path agrees with the f64 oracle.

use crate::activation::Activation;
use crate::dueling::DuelingQNetwork;
use crate::layer::DenseLayer;
use crate::matrix::Matrix;
use crate::network::Mlp;

/// Output-column tile width of the i8 GEMM: the inner loop accumulates into a fixed
/// `[i32; QNR]` register block, which the autovectorizer turns into integer SIMD lanes.
const QNR: usize = 8;

/// Per-row dynamic activation quantization buffers: the i16 image of the current batch
/// and one symmetric scale per row.
#[derive(Debug, Clone, Default)]
struct RowQuant {
    values: Vec<i16>,
    scales: Vec<f32>,
}

impl RowQuant {
    /// Quantize `rows × k` f32 activations row-by-row (round-to-nearest, saturating at
    /// ±32767). A zero (or all-zero) row gets scale 1.0 so the dequantized product is
    /// exactly zero rather than NaN.
    fn quantize(&mut self, input: &[f32], rows: usize, k: usize) {
        debug_assert_eq!(input.len(), rows * k);
        self.values.clear();
        self.values.resize(rows * k, 0);
        self.scales.clear();
        self.scales.resize(rows, 1.0);
        for i in 0..rows {
            let row = &input[i * k..(i + 1) * k];
            let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if max_abs > 0.0 {
                max_abs / 32767.0
            } else {
                1.0
            };
            self.scales[i] = scale;
            let inv_scale = 1.0 / scale;
            for (q, &v) in self.values[i * k..(i + 1) * k].iter_mut().zip(row) {
                *q = (v * inv_scale).round().clamp(-32767.0, 32767.0) as i16;
            }
        }
    }
}

/// A dense layer frozen to symmetric i8 weights.
#[derive(Debug, Clone)]
pub struct QuantizedLayer {
    /// `input_dim × output_dim` row-major i8 weights (same layout as the f64 matrix).
    weights: Vec<i8>,
    /// Symmetric per-output-column weight scales: `w[·, j] ≈ q[·, j] · weight_scales[j]`.
    weight_scales: Vec<f32>,
    bias: Vec<f32>,
    activation: Activation,
    input_dim: usize,
    output_dim: usize,
}

impl QuantizedLayer {
    /// Quantize a trained dense layer: one symmetric scale per output column,
    /// round-to-nearest i8 weights, f32 bias. An all-zero column gets scale 1.0 so its
    /// dequantized product is exactly zero rather than NaN.
    pub fn from_dense(layer: &DenseLayer) -> Self {
        let w = layer.weights();
        let (k, n) = (layer.input_dim(), layer.output_dim());
        // i16×i8 terms are ≤ 32767·127, so an i32 accumulator is exact up to k = 516.
        assert!(
            k <= (i32::MAX / (32_767 * 127)) as usize,
            "input dimension {k} would overflow the i32 accumulators"
        );
        let data = w.data();
        let mut weight_scales = vec![1.0f32; n];
        let mut weights = vec![0i8; k * n];
        for j in 0..n {
            let max_abs = (0..k).fold(0.0f64, |m, i| m.max(data[i * n + j].abs()));
            let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
            weight_scales[j] = scale as f32;
            let inv_scale = 1.0 / scale;
            for i in 0..k {
                weights[i * n + j] =
                    (data[i * n + j] * inv_scale).round().clamp(-127.0, 127.0) as i8;
            }
        }
        Self {
            weights,
            weight_scales,
            bias: layer.bias().iter().map(|&b| b as f32).collect(),
            activation: layer.activation(),
            input_dim: layer.input_dim(),
            output_dim: layer.output_dim(),
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// The symmetric per-output-column weight scales.
    pub fn weight_scales(&self) -> &[f32] {
        &self.weight_scales
    }

    /// The i16×i8→i32 GEMM with f32 dequant and bias, stopping **before** the
    /// activation: `out[i, j] = acc[i, j] · w_scale[j] · x_scale[i] + bias[j]`. Shared
    /// by [`Self::forward_into`] and the calibration pass, which needs pre-activation
    /// values to measure the quantization error it folds into the bias.
    fn gemm_dequant(&self, input: &[f32], rows: usize, rowq: &mut RowQuant, out: &mut Vec<f32>) {
        let k = self.input_dim;
        let n = self.output_dim;
        debug_assert_eq!(input.len(), rows * k);
        rowq.quantize(input, rows, k);
        out.clear();
        out.resize(rows * n, 0.0);
        let n_full = n - n % QNR;
        for i in 0..rows {
            let xrow = &rowq.values[i * k..(i + 1) * k];
            let x_scale = rowq.scales[i];
            let orow = &mut out[i * n..(i + 1) * n];
            let mut j = 0;
            while j < n_full {
                let mut acc = [0i32; QNR];
                for (kk, &a) in xrow.iter().enumerate() {
                    let a = i32::from(a);
                    let wrow = &self.weights[kk * n + j..kk * n + j + QNR];
                    for (s, &wv) in acc.iter_mut().zip(wrow) {
                        *s += a * i32::from(wv);
                    }
                }
                for (l, &s) in acc.iter().enumerate() {
                    let dequant = x_scale * self.weight_scales[j + l];
                    orow[j + l] = s as f32 * dequant + self.bias[j + l];
                }
                j += QNR;
            }
            for (j, o) in orow.iter_mut().enumerate().skip(n_full) {
                let mut s = 0i32;
                for (kk, &a) in xrow.iter().enumerate() {
                    s += i32::from(a) * i32::from(self.weights[kk * n + j]);
                }
                let dequant = x_scale * self.weight_scales[j];
                *o = s as f32 * dequant + self.bias[j];
            }
        }
    }

    /// Forward `rows × input_dim` f32 activations through the layer into
    /// `rows × output_dim` f32 outputs: per-row dynamic input quantization, i16×i8→i32
    /// GEMM, f32 dequant + bias, f32 activation.
    fn forward_into(&self, input: &[f32], rows: usize, rowq: &mut RowQuant, out: &mut Vec<f32>) {
        self.gemm_dequant(input, rows, rowq, out);
        for v in out.iter_mut() {
            *v = self.activation.apply_f32(*v);
        }
    }
}

/// Exact f64 pre-activation of a dense layer over a calibration batch:
/// `z = input · W + bias`. Mirrors [`DenseLayer::forward`] minus the activation.
fn pre_activation_exact(layer: &DenseLayer, input: &Matrix) -> Matrix {
    let mut z = input.matmul(layer.weights());
    z.add_row_broadcast(layer.bias());
    z
}

/// Quantize one layer with calibration-driven bias correction, and propagate the
/// calibration batch through both paths.
///
/// The quantized pre-activation systematically deviates from the exact one (weight
/// rounding error is fixed at freeze time, so over a realistic input distribution the
/// error has a non-zero mean per output column). Folding that mean back into the f32
/// bias removes the component of the error that most often flips near-tie decisions,
/// at zero inference cost. Returns the corrected layer together with the exact f64
/// pre-activation and both paths' post-activation outputs, so the caller can chain
/// layers sequentially — each layer is corrected against the *already corrected*
/// upstream quantized activations, the way it will actually run at inference time.
fn quantize_layer_calibrated(
    layer: &DenseLayer,
    exact_in: &Matrix,
    quant_in: &[f32],
    rows: usize,
    rowq: &mut RowQuant,
) -> (QuantizedLayer, Matrix, Matrix, Vec<f32>) {
    let mut q = QuantizedLayer::from_dense(layer);
    let n = q.output_dim;
    let z_exact = pre_activation_exact(layer, exact_in);
    let mut z_quant = Vec::new();
    q.gemm_dequant(quant_in, rows, rowq, &mut z_quant);
    for j in 0..n {
        let mut err = 0.0f64;
        for i in 0..rows {
            err += z_exact.data()[i * n + j] - f64::from(z_quant[i * n + j]);
        }
        q.bias[j] += (err / rows as f64) as f32;
    }
    let exact_out = z_exact.clone().map(|x| layer.activation().apply(x));
    let mut quant_out = Vec::new();
    q.forward_into(quant_in, rows, rowq, &mut quant_out);
    (q, z_exact, exact_out, quant_out)
}

/// Decision-aware rounding for a two-column `Identity` output head (the Q-gap layer):
/// greedy floor/ceil coordinate descent over the head's i8 weights minimizing the
/// **variance** of the quantized-vs-exact gap error over the calibration batch, then
/// folding the residual mean error into the two biases.
///
/// Round-to-nearest minimizes per-weight error, but the decision a Q-network serves is
/// `argmax`, which only sees the *gap* `q[1] − q[0]`. For each weight the two nearest
/// grid points often differ little in their own error yet pull the gap error in
/// opposite directions across real inputs; choosing per-weight roundings that cancel
/// over the calibration distribution cuts decision flips several-fold versus
/// nearest-rounding alone. The mean component is handled exactly by the bias split
/// (`b0 += m/2`, `b1 −= m/2` leaves `mean(A)` — and therefore the dueling combine —
/// untouched), so the descent targets the variance.
fn decision_tune_head(
    head: &mut QuantizedLayer,
    layer: &DenseLayer,
    exact_gap: &[f64],
    quant_in: &[f32],
    rows: usize,
    rowq: &mut RowQuant,
) {
    debug_assert_eq!(head.output_dim, 2);
    debug_assert_eq!(head.activation, Activation::Identity);
    let k = head.input_dim;
    rowq.quantize(quant_in, rows, k);
    // Dequantized calibration inputs as the head's integer GEMM sees them.
    let hq: Vec<f64> = (0..rows * k)
        .map(|idx| f64::from(rowq.values[idx]) * f64::from(rowq.scales[idx / k]))
        .collect();
    let scales = [
        f64::from(head.weight_scales[0]),
        f64::from(head.weight_scales[1]),
    ];
    // Gap error per calibration row under the current rounding.
    let mut err: Vec<f64> = (0..rows)
        .map(|i| {
            let mut d = f64::from(head.bias[1]) - f64::from(head.bias[0]);
            for kk in 0..k {
                let w0 = f64::from(head.weights[kk * 2]) * scales[0];
                let w1 = f64::from(head.weights[kk * 2 + 1]) * scales[1];
                d += hq[i * k + kk] * (w1 - w0);
            }
            d - exact_gap[i]
        })
        .collect();
    let variance = |e: &[f64]| {
        let mean = e.iter().sum::<f64>() / e.len() as f64;
        e.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / e.len() as f64
    };
    let mut best = variance(&err);
    let mut trial = vec![0.0f64; rows];
    for _sweep in 0..8 {
        let mut improved = false;
        for (c, &scale) in scales.iter().enumerate() {
            // Column 0 enters the gap negated (gap = col1 − col0).
            let sign = if c == 0 { -1.0 } else { 1.0 };
            for kk in 0..k {
                let exact_w = layer.weights().data()[kk * 2 + c];
                let raw = (exact_w / scale).clamp(-127.0, 127.0);
                let current = head.weights[kk * 2 + c];
                for cand in [raw.floor() as i8, raw.ceil() as i8] {
                    if cand == current {
                        continue;
                    }
                    let delta = (f64::from(cand) - f64::from(current)) * scale;
                    for i in 0..rows {
                        trial[i] = err[i] + sign * delta * hq[i * k + kk];
                    }
                    if variance(&trial) + 1e-15 < best {
                        head.weights[kk * 2 + c] = cand;
                        std::mem::swap(&mut err, &mut trial);
                        best = variance(&err);
                        improved = true;
                        break;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    let mean = err.iter().sum::<f64>() / rows as f64;
    head.bias[0] += (mean / 2.0) as f32;
    head.bias[1] -= (mean / 2.0) as f32;
}

/// Whether a layer is the two-action `Identity` gap head that
/// [`decision_tune_head`] can tune.
fn is_gap_head(layer: &DenseLayer) -> bool {
    layer.output_dim() == 2 && layer.activation() == Activation::Identity
}

/// Reusable buffers for the quantized inference path. Mirrors
/// [`crate::network::BatchScratch`]: one scratch serves any batch size and any network;
/// every buffer is overwritten on each call and never influences results.
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    /// The f32 image of the f64 input batch.
    staged: Vec<f32>,
    /// Per-row input quantization buffers.
    rowq: RowQuant,
    /// Ping-pong f32 activation buffers for the hidden layers.
    ping: Vec<f32>,
    pong: Vec<f32>,
    /// Head outputs (dueling networks only).
    value: Vec<f32>,
    advantage: Vec<f32>,
    /// The final Q-value rows.
    q: Vec<f32>,
}

impl QuantScratch {
    /// Create an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// An [`Mlp`] frozen to i8 layers.
#[derive(Debug, Clone)]
pub struct QuantizedMlp {
    layers: Vec<QuantizedLayer>,
}

impl QuantizedMlp {
    /// Quantize every layer of a trained MLP.
    pub fn from_mlp(net: &Mlp) -> Self {
        Self {
            layers: net
                .layers()
                .iter()
                .map(QuantizedLayer::from_dense)
                .collect(),
        }
    }

    /// Quantize every layer of a trained MLP with calibration: per-layer bias
    /// correction over `calibration` (one state per row), plus decision-aware rounding
    /// of the output layer when it is a two-column `Identity` gap head. Callers with no
    /// calibration states use [`Self::from_mlp`] instead ([`Matrix`] rows are always
    /// positive).
    pub fn from_mlp_calibrated(net: &Mlp, calibration: &Matrix) -> Self {
        let rows = calibration.rows();
        let mut rowq = RowQuant::default();
        let mut exact = calibration.clone();
        let mut quant: Vec<f32> = calibration.data().iter().map(|&v| v as f32).collect();
        let mut layers = Vec::with_capacity(net.layers().len());
        let last = net.layers().len() - 1;
        for (idx, layer) in net.layers().iter().enumerate() {
            let (mut q, z_exact, exact_out, quant_out) =
                quantize_layer_calibrated(layer, &exact, &quant, rows, &mut rowq);
            if idx == last && is_gap_head(layer) {
                let gap: Vec<f64> = (0..rows)
                    .map(|i| z_exact.data()[i * 2 + 1] - z_exact.data()[i * 2])
                    .collect();
                decision_tune_head(&mut q, layer, &gap, &quant, rows, &mut rowq);
            }
            layers.push(q);
            exact = exact_out;
            quant = quant_out;
        }
        Self { layers }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers
            .first()
            .map(QuantizedLayer::input_dim)
            .unwrap_or(0)
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers
            .last()
            .map(QuantizedLayer::output_dim)
            .unwrap_or(0)
    }

    /// The quantized layers (for inspection and tests).
    pub fn layers(&self) -> &[QuantizedLayer] {
        &self.layers
    }

    fn forward_rows<'s>(&self, input: &Matrix, scratch: &'s mut QuantScratch) -> &'s [f32] {
        let rows = input.rows();
        let QuantScratch {
            staged,
            rowq,
            ping,
            pong,
            q,
            ..
        } = scratch;
        stage_f64(input, staged);
        let (last, rest) = self.layers.split_last().expect("networks have layers");
        let mut src: &mut Vec<f32> = ping;
        let mut dst: &mut Vec<f32> = pong;
        let mut current: &[f32] = staged;
        for layer in rest {
            layer.forward_into(current, rows, rowq, dst);
            std::mem::swap(&mut src, &mut dst);
            current = src;
        }
        last.forward_into(current, rows, rowq, q);
        q
    }
}

/// A [`DuelingQNetwork`] frozen to i8 layers; the dueling combine
/// `Q = V + A − mean(A)` runs in f32 with the same left-to-right per-row mean as the
/// f64 network.
#[derive(Debug, Clone)]
pub struct QuantizedDuelingNetwork {
    trunk: Vec<QuantizedLayer>,
    value_head: QuantizedLayer,
    advantage_head: QuantizedLayer,
    n_actions: usize,
}

impl QuantizedDuelingNetwork {
    /// Quantize a trained dueling network.
    pub fn from_dueling(net: &DuelingQNetwork) -> Self {
        Self {
            trunk: net.trunk().iter().map(QuantizedLayer::from_dense).collect(),
            value_head: QuantizedLayer::from_dense(net.value_head()),
            advantage_head: QuantizedLayer::from_dense(net.advantage_head()),
            n_actions: net.n_actions(),
        }
    }

    /// Quantize a trained dueling network with calibration: per-layer bias correction
    /// over `calibration` through the trunk and both heads, plus decision-aware
    /// rounding of the advantage head in the two-action case (the dueling combine
    /// cancels `V` and `mean(A)` out of the Q-gap, so the gap — the only thing
    /// `argmax` sees — lives entirely in the advantage head). Callers with no
    /// calibration states use [`Self::from_dueling`] instead ([`Matrix`] rows are
    /// always positive).
    pub fn from_dueling_calibrated(net: &DuelingQNetwork, calibration: &Matrix) -> Self {
        let rows = calibration.rows();
        let mut rowq = RowQuant::default();
        let mut exact = calibration.clone();
        let mut quant: Vec<f32> = calibration.data().iter().map(|&v| v as f32).collect();
        let mut trunk = Vec::with_capacity(net.trunk().len());
        for layer in net.trunk() {
            let (q, _, exact_out, quant_out) =
                quantize_layer_calibrated(layer, &exact, &quant, rows, &mut rowq);
            trunk.push(q);
            exact = exact_out;
            quant = quant_out;
        }
        let (value_head, _, _, _) =
            quantize_layer_calibrated(net.value_head(), &exact, &quant, rows, &mut rowq);
        let (mut advantage_head, z_exact, _, _) =
            quantize_layer_calibrated(net.advantage_head(), &exact, &quant, rows, &mut rowq);
        if is_gap_head(net.advantage_head()) {
            let gap: Vec<f64> = (0..rows)
                .map(|i| z_exact.data()[i * 2 + 1] - z_exact.data()[i * 2])
                .collect();
            decision_tune_head(
                &mut advantage_head,
                net.advantage_head(),
                &gap,
                &quant,
                rows,
                &mut rowq,
            );
        }
        Self {
            trunk,
            value_head,
            advantage_head,
            n_actions: net.n_actions(),
        }
    }

    /// Number of actions.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.trunk
            .first()
            .map(QuantizedLayer::input_dim)
            .unwrap_or(0)
    }

    fn forward_rows<'s>(&self, input: &Matrix, scratch: &'s mut QuantScratch) -> &'s [f32] {
        let rows = input.rows();
        let n = self.n_actions;
        let QuantScratch {
            staged,
            rowq,
            ping,
            pong,
            value,
            advantage,
            q,
        } = scratch;
        stage_f64(input, staged);
        let mut src: &mut Vec<f32> = ping;
        let mut dst: &mut Vec<f32> = pong;
        let mut current: &[f32] = staged;
        for layer in &self.trunk {
            layer.forward_into(current, rows, rowq, dst);
            std::mem::swap(&mut src, &mut dst);
            current = src;
        }
        self.value_head.forward_into(current, rows, rowq, value);
        self.advantage_head
            .forward_into(current, rows, rowq, advantage);
        q.clear();
        q.resize(rows * n, 0.0);
        for i in 0..rows {
            let a_row = &advantage[i * n..(i + 1) * n];
            let mean_a: f32 = a_row.iter().sum::<f32>() / n as f32;
            let v = value[i];
            for (out, &a) in q[i * n..(i + 1) * n].iter_mut().zip(a_row) {
                *out = v + a - mean_a;
            }
        }
        q
    }
}

/// Either quantized Q-function architecture — the i8 mirror of the agent's internal
/// plain/dueling network choice.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum QuantizedNetwork {
    /// A quantized plain MLP.
    Plain(QuantizedMlp),
    /// A quantized dueling network.
    Dueling(QuantizedDuelingNetwork),
}

impl QuantizedNetwork {
    /// Quantize a trained MLP.
    pub fn from_mlp(net: &Mlp) -> Self {
        QuantizedNetwork::Plain(QuantizedMlp::from_mlp(net))
    }

    /// Quantize a trained dueling network.
    pub fn from_dueling(net: &DuelingQNetwork) -> Self {
        QuantizedNetwork::Dueling(QuantizedDuelingNetwork::from_dueling(net))
    }

    /// Quantize a trained MLP with calibration-driven bias correction and
    /// decision-aware output rounding (see [`QuantizedMlp::from_mlp_calibrated`]).
    pub fn from_mlp_calibrated(net: &Mlp, calibration: &Matrix) -> Self {
        QuantizedNetwork::Plain(QuantizedMlp::from_mlp_calibrated(net, calibration))
    }

    /// Quantize a trained dueling network with calibration-driven bias correction and
    /// decision-aware advantage rounding (see
    /// [`QuantizedDuelingNetwork::from_dueling_calibrated`]).
    pub fn from_dueling_calibrated(net: &DuelingQNetwork, calibration: &Matrix) -> Self {
        QuantizedNetwork::Dueling(QuantizedDuelingNetwork::from_dueling_calibrated(
            net,
            calibration,
        ))
    }

    /// Width of one output row (the number of actions for Q-networks).
    pub fn output_dim(&self) -> usize {
        match self {
            QuantizedNetwork::Plain(net) => net.output_dim(),
            QuantizedNetwork::Dueling(net) => net.n_actions(),
        }
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        match self {
            QuantizedNetwork::Plain(net) => net.input_dim(),
            QuantizedNetwork::Dueling(net) => net.input_dim(),
        }
    }

    /// Quantized batched inference: one f32 output row of [`Self::output_dim`] values
    /// per input row, returned as one flat slice borrowed from the scratch. Each row's
    /// result depends only on that row (per-row input scales, exact integer
    /// accumulation), so the output is bit-identical across batch sizes and thread
    /// counts — the serving determinism contract — while intentionally diverging from
    /// the f64 oracle in value.
    pub fn forward_batch_into<'s>(
        &self,
        input: &Matrix,
        scratch: &'s mut QuantScratch,
    ) -> &'s [f32] {
        match self {
            QuantizedNetwork::Plain(net) => net.forward_rows(input, scratch),
            QuantizedNetwork::Dueling(net) => net.forward_rows(input, scratch),
        }
    }
}

/// Copy an f64 matrix into a flat f32 staging buffer.
fn stage_f64(input: &Matrix, staged: &mut Vec<f32>) {
    staged.clear();
    staged.extend(input.data().iter().map(|&v| v as f32));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::WeightInit;
    use crate::network::{BatchScratch, MlpConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn batch(rows: usize, cols: usize, seed: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            ((i * 31 + j * 7 + seed) as f64 * 0.37).sin() * 2.0
        })
    }

    #[test]
    fn quantized_layer_roundtrips_weights_within_half_a_step() {
        let mut rng = StdRng::seed_from_u64(11);
        let dense = DenseLayer::new(9, 5, Activation::Relu, WeightInit::HeNormal, &mut rng);
        let q = QuantizedLayer::from_dense(&dense);
        assert_eq!(q.input_dim(), 9);
        assert_eq!(q.output_dim(), 5);
        assert_eq!(q.weight_scales().len(), 5);
        for (idx, &w) in dense.weights().data().iter().enumerate() {
            let step = f64::from(q.weight_scales()[idx % 5]);
            let dequant = f64::from(q.weights[idx]) * step;
            assert!(
                (dequant - w).abs() <= step * 0.5 + 1e-12,
                "weight {idx}: {w} dequantizes to {dequant} (step {step})"
            );
        }
    }

    #[test]
    fn zero_layer_quantizes_without_nan() {
        let mut rng = StdRng::seed_from_u64(1);
        let dense = DenseLayer::new(4, 3, Activation::Identity, WeightInit::Zeros, &mut rng);
        let qnet = QuantizedLayer::from_dense(&dense);
        let mut rowq = RowQuant::default();
        let mut out = Vec::new();
        qnet.forward_into(&[0.0; 4], 1, &mut rowq, &mut out);
        assert_eq!(out, vec![0.0; 3]);
    }

    #[test]
    fn quantized_mlp_tracks_the_f64_network() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = Mlp::new(&MlpConfig::small(6, 3), &mut rng);
        let qnet = QuantizedNetwork::from_mlp(&net);
        let x = batch(5, 6, 0);
        let reference = net.forward(&x);
        let mut scratch = QuantScratch::new();
        let q = qnet.forward_batch_into(&x, &mut scratch);
        assert_eq!(q.len(), 5 * 3);
        let max_mag = reference.data().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        for (i, (&quantized, &full)) in q.iter().zip(reference.data()).enumerate() {
            assert!(
                (f64::from(quantized) - full).abs() <= 0.06 * max_mag.max(1.0),
                "output {i}: quantized {quantized} vs f64 {full} (max magnitude {max_mag})"
            );
        }
    }

    #[test]
    fn quantized_dueling_tracks_the_f64_network() {
        let mut rng = StdRng::seed_from_u64(9);
        let net = DuelingQNetwork::new(&MlpConfig::small(6, 2), 2, &mut rng);
        let qnet = QuantizedNetwork::from_dueling(&net);
        assert_eq!(qnet.output_dim(), 2);
        assert_eq!(qnet.input_dim(), 6);
        let x = batch(4, 6, 3);
        let mut ref_scratch = BatchScratch::new();
        let mut reference = Matrix::zeros(1, 1);
        net.forward_batch_into(&x, &mut ref_scratch, &mut reference);
        let mut scratch = QuantScratch::new();
        let q = qnet.forward_batch_into(&x, &mut scratch);
        let max_mag = reference.data().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        for (i, (&quantized, &full)) in q.iter().zip(reference.data()).enumerate() {
            assert!(
                (f64::from(quantized) - full).abs() <= 0.06 * max_mag.max(1.0),
                "output {i}: quantized {quantized} vs f64 {full} (max magnitude {max_mag})"
            );
        }
    }

    #[test]
    fn quantized_rows_are_bit_identical_across_batch_sizes() {
        let mut rng = StdRng::seed_from_u64(21);
        for qnet in [
            QuantizedNetwork::from_mlp(&Mlp::new(&MlpConfig::small(6, 2), &mut rng)),
            QuantizedNetwork::from_dueling(&DuelingQNetwork::new(
                &MlpConfig::small(6, 2),
                2,
                &mut rng,
            )),
        ] {
            let x = batch(7, 6, 5);
            let n = qnet.output_dim();
            let mut scratch = QuantScratch::new();
            let batched: Vec<u32> = qnet
                .forward_batch_into(&x, &mut scratch)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            for i in 0..7 {
                let single_input = Matrix::row_from_slice(x.row(i));
                let single: Vec<u32> = qnet
                    .forward_batch_into(&single_input, &mut scratch)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(
                    &batched[i * n..(i + 1) * n],
                    &single[..],
                    "row {i} diverged between batch-of-7 and batch-of-1"
                );
            }
        }
    }

    #[test]
    fn calibrated_quantization_tracks_the_f64_network() {
        let mut rng = StdRng::seed_from_u64(17);
        let calib = batch(64, 6, 9);
        let x = batch(5, 6, 2);
        let mlp = Mlp::new(&MlpConfig::small(6, 2), &mut rng);
        let dueling = DuelingQNetwork::new(&MlpConfig::small(6, 2), 2, &mut rng);
        let mut ref_scratch = BatchScratch::new();
        let mut dueling_ref = Matrix::zeros(1, 1);
        dueling.forward_batch_into(&x, &mut ref_scratch, &mut dueling_ref);
        for (qnet, reference) in [
            (
                QuantizedNetwork::from_mlp_calibrated(&mlp, &calib),
                mlp.forward(&x),
            ),
            (
                QuantizedNetwork::from_dueling_calibrated(&dueling, &calib),
                dueling_ref.clone(),
            ),
        ] {
            let mut scratch = QuantScratch::new();
            let q = qnet.forward_batch_into(&x, &mut scratch);
            let max_mag = reference.data().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            for (i, (&quantized, &full)) in q.iter().zip(reference.data()).enumerate() {
                assert!(
                    (f64::from(quantized) - full).abs() <= 0.08 * max_mag.max(1.0),
                    "output {i}: calibrated {quantized} vs f64 {full}"
                );
            }
        }
    }

    #[test]
    fn calibration_zeroes_the_mean_gap_error_on_the_calibration_batch() {
        let mut rng = StdRng::seed_from_u64(29);
        let net = DuelingQNetwork::new(&MlpConfig::small(6, 2), 2, &mut rng);
        let calib = batch(96, 6, 4);
        let plain = QuantizedNetwork::from_dueling(&net);
        let calibrated = QuantizedNetwork::from_dueling_calibrated(&net, &calib);
        let mut ref_scratch = BatchScratch::new();
        let mut exact = Matrix::zeros(1, 1);
        net.forward_batch_into(&calib, &mut ref_scratch, &mut exact);
        let mut scratch = QuantScratch::new();
        let mean_gap_err = |qnet: &QuantizedNetwork, scratch: &mut QuantScratch| {
            let q = qnet.forward_batch_into(&calib, scratch);
            (0..calib.rows())
                .map(|i| {
                    let quant_gap = f64::from(q[i * 2 + 1]) - f64::from(q[i * 2]);
                    let exact_gap = exact.data()[i * 2 + 1] - exact.data()[i * 2];
                    quant_gap - exact_gap
                })
                .sum::<f64>()
                / calib.rows() as f64
        };
        let plain_err = mean_gap_err(&plain, &mut scratch).abs();
        let calibrated_err = mean_gap_err(&calibrated, &mut scratch).abs();
        assert!(
            calibrated_err <= plain_err + 1e-9,
            "calibration should not worsen the mean gap error: {calibrated_err} vs {plain_err}"
        );
        assert!(
            calibrated_err < 1e-3,
            "mean gap error on the calibration batch should be near zero: {calibrated_err}"
        );
    }

    #[test]
    fn single_row_calibration_is_well_defined() {
        let mut rng = StdRng::seed_from_u64(41);
        let net = Mlp::new(&MlpConfig::small(5, 2), &mut rng);
        let calib = batch(1, 5, 3);
        let qnet = QuantizedNetwork::from_mlp_calibrated(&net, &calib);
        let x = batch(4, 5, 6);
        let mut scratch = QuantScratch::new();
        for &v in qnet.forward_batch_into(&x, &mut scratch) {
            assert!(v.is_finite(), "degenerate calibration produced {v}");
        }
    }

    #[test]
    fn calibrated_rows_are_bit_identical_across_batch_sizes() {
        let mut rng = StdRng::seed_from_u64(53);
        let calib = batch(48, 6, 8);
        for qnet in [
            QuantizedNetwork::from_mlp_calibrated(
                &Mlp::new(&MlpConfig::small(6, 2), &mut rng),
                &calib,
            ),
            QuantizedNetwork::from_dueling_calibrated(
                &DuelingQNetwork::new(&MlpConfig::small(6, 2), 2, &mut rng),
                &calib,
            ),
        ] {
            let x = batch(7, 6, 12);
            let n = qnet.output_dim();
            let mut scratch = QuantScratch::new();
            let batched: Vec<u32> = qnet
                .forward_batch_into(&x, &mut scratch)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            for i in 0..7 {
                let single_input = Matrix::row_from_slice(x.row(i));
                let single: Vec<u32> = qnet
                    .forward_batch_into(&single_input, &mut scratch)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(
                    &batched[i * n..(i + 1) * n],
                    &single[..],
                    "row {i} diverged between batch-of-7 and batch-of-1"
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_across_networks_is_sound() {
        let mut rng = StdRng::seed_from_u64(33);
        let a = QuantizedNetwork::from_mlp(&Mlp::new(&MlpConfig::small(5, 2), &mut rng));
        let b = QuantizedNetwork::from_dueling(&DuelingQNetwork::new(
            &MlpConfig::small(5, 3),
            3,
            &mut rng,
        ));
        let x = batch(3, 5, 1);
        let mut shared = QuantScratch::new();
        let mut fresh = QuantScratch::new();
        let first: Vec<u32> = a
            .forward_batch_into(&x, &mut shared)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let _ = b.forward_batch_into(&x, &mut shared);
        let again: Vec<u32> = a
            .forward_batch_into(&x, &mut shared)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let clean: Vec<u32> = a
            .forward_batch_into(&x, &mut fresh)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(first, again, "interleaving another network leaked state");
        assert_eq!(first, clean, "a warm scratch diverged from a fresh one");
    }
}
