//! Property tests pinning the blocked matmul kernels **bit-identical** to scalar
//! reference loops across ragged shapes.
//!
//! The serving determinism contract says every kernel's reduction order is a pure
//! function of the inner dimension — never of the blocking, the batch size, or the
//! thread count. These tests state that contract as executable references: a plain
//! ascending-`k` triple loop for the NN/TN kernels, and the documented
//! interleaved-lane tree for the NT kernel. Any future re-blocking of the kernels
//! must keep these exact summation orders or the fleet's replay/serving parity
//! guarantees break.

use proptest::prelude::*;
use uerl_nn::Matrix;

/// Deterministic pseudo-random matrix filler (values in roughly ±2, plus exact zeros
/// so the `a == 0.0` paths stay exercised).
fn fill(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let h = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((i * 131 + j * 17) as u64);
        if h.is_multiple_of(13) {
            0.0
        } else {
            ((h % 10_007) as f64 / 10_007.0 - 0.5) * 4.0
        }
    })
}

/// Reference `a · b`: for each output element, one accumulator advancing in strict
/// ascending-`k` order — the order the blocked NN kernel documents.
fn reference_nn(a: &Matrix, b: &Matrix) -> Matrix {
    Matrix::from_fn(a.rows(), b.cols(), |i, l| {
        let mut s = 0.0f64;
        for k in 0..a.cols() {
            s += a.data()[i * a.cols() + k] * b.data()[k * b.cols() + l];
        }
        s
    })
}

/// Reference `aᵀ · b` accumulated into `acc`: each element seeded from the existing
/// accumulator value and advanced in strict ascending-row order.
fn reference_tn_acc(a: &Matrix, b: &Matrix, acc: &mut Matrix) {
    let (m, ja, n) = (a.rows(), a.cols(), b.cols());
    for j in 0..ja {
        for l in 0..n {
            let mut s = acc.data()[j * n + l];
            for i in 0..m {
                s += a.data()[i * ja + j] * b.data()[i * n + l];
            }
            acc.data_mut()[j * n + l] = s;
        }
    }
}

/// Reference `a · bᵀ`: the documented `dot_lanes` order — 8 interleaved partial sums
/// (lane `c` takes terms `k ≡ c (mod 8)` in ascending-`k` order) combined by a fixed
/// balanced tree.
fn reference_nt(a: &Matrix, b: &Matrix) -> Matrix {
    Matrix::from_fn(a.rows(), b.rows(), |i, l| {
        let mut lanes = [0.0f64; 8];
        for k in 0..a.cols() {
            lanes[k % 8] += a.data()[i * a.cols() + k] * b.data()[l * b.cols() + k];
        }
        let q0 = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        let q1 = (lanes[4] + lanes[5]) + (lanes[6] + lanes[7]);
        q0 + q1
    })
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn blocked_nn_matches_the_scalar_reference_bitwise(
        dims in (1usize..20, 1usize..40, 1usize..24, 0u64..1_000_000),
    ) {
        let (m, k, n, seed) = dims;
        let a = fill(m, k, seed);
        let b = fill(k, n, seed ^ 0x5bd1);
        prop_assert_eq!(bits(&a.matmul(&b)), bits(&reference_nn(&a, &b)));
    }

    #[test]
    fn blocked_tn_acc_matches_the_scalar_reference_bitwise(
        dims in (1usize..32, 1usize..14, 1usize..24, 0u64..1_000_000),
    ) {
        // `a` is the left operand pre-transposed: (m×ja)ᵀ · (m×n) accumulated in place.
        let (m, ja, n, seed) = dims;
        let a = fill(m, ja, seed);
        let b = fill(m, n, seed ^ 0x94d0);
        let mut blocked = fill(ja, n, seed ^ 0x27d4);
        let mut reference = blocked.clone();
        a.matmul_tn_acc(&b, &mut blocked);
        reference_tn_acc(&a, &b, &mut reference);
        prop_assert_eq!(bits(&blocked), bits(&reference));
    }

    #[test]
    fn blocked_nt_matches_the_lane_reference_bitwise(
        dims in (1usize..20, 1usize..40, 1usize..20, 0u64..1_000_000),
    ) {
        let (m, k, n, seed) = dims;
        let a = fill(m, k, seed);
        let b = fill(n, k, seed ^ 0x1656);
        prop_assert_eq!(bits(&a.matmul_nt(&b)), bits(&reference_nt(&a, &b)));
    }

    #[test]
    fn batched_rows_match_single_row_products_bitwise(
        dims in (2usize..16, 1usize..40, 1usize..24, 0u64..1_000_000),
    ) {
        // The serving invariant: row i of a batch-of-N product is bit-identical to the
        // batch-of-1 product of row i alone, for every kernel in the family.
        let (m, k, n, seed) = dims;
        let a = fill(m, k, seed);
        let b = fill(k, n, seed ^ 0x85eb);
        let bt = fill(n, k, seed ^ 0xc2b2);
        let nn = a.matmul(&b);
        let nt = a.matmul_nt(&bt);
        for i in 0..m {
            let row = Matrix::row_from_slice(a.row(i));
            prop_assert_eq!(bits(&row.matmul(&b)), nn.row(i).iter().map(|v| v.to_bits()).collect::<Vec<_>>());
            prop_assert_eq!(bits(&row.matmul_nt(&bt)), nt.row(i).iter().map(|v| v.to_bits()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn matmul_into_reuses_scratch_without_divergence(
        dims in (1usize..12, 1usize..24, 1usize..16, 0u64..1_000_000),
    ) {
        let (m, k, n, seed) = dims;
        let a = fill(m, k, seed);
        let b = fill(k, n, seed ^ 0x6a09);
        // Warm the scratch with a differently-shaped product first.
        let mut out = fill(3, 3, seed ^ 0xbb67).matmul(&fill(3, 5, seed));
        a.matmul_into(&b, &mut out);
        prop_assert_eq!(bits(&out), bits(&a.matmul(&b)));
    }
}
