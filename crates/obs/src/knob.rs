//! Unified `UERL_*` environment-knob parsing.
//!
//! Every workspace knob follows the same contract: a small closed set of accepted
//! values, the empty string meaning "the default", and a **panic** on anything else —
//! a silently misread knob would invalidate a measurement run. Before this module the
//! contract was copy-pasted (and had already drifted: some parsers panicked, others
//! silently defaulted); now `UERL_QUANT`, `UERL_RETENTION`, `UERL_HYPER_SEARCH`,
//! `UERL_SCALE` and `UERL_METRICS` all route through [`choice`] / [`env_choice`], so
//! per-crate drift cannot happen. `uerl_core::knobs` re-exports these for the crates
//! that sit above `uerl-core`.

/// Map a knob's raw value onto one of its accepted choices.
///
/// `choices` pairs each accepted string with its parsed value; include an `""` entry
/// when the empty string should select the default.
///
/// # Panics
/// Panics with `"<knob> must be one of ..."` on any value not listed — the shared
/// strict contract of every `UERL_*` knob.
pub fn choice<T: Copy>(knob: &str, value: &str, choices: &[(&str, T)]) -> T {
    for (accepted, parsed) in choices {
        if *accepted == value {
            return *parsed;
        }
    }
    let accepted: Vec<&str> = choices
        .iter()
        .map(|(name, _)| *name)
        .filter(|name| !name.is_empty())
        .collect();
    panic!(
        "{knob} must be one of {}, got {value:?}",
        accepted.join(" / ")
    );
}

/// Read a knob from the environment: unset selects `default`, a set value must parse
/// through [`choice`].
///
/// # Panics
/// As [`choice`], when the variable is set to an unaccepted value.
pub fn env_choice<T: Copy>(knob: &str, choices: &[(&str, T)], default: T) -> T {
    match std::env::var(knob) {
        Ok(value) => choice(knob, &value, choices),
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODES: &[(&str, u8)] = &[("", 0), ("off", 0), ("on", 1)];

    #[test]
    fn accepted_values_parse() {
        assert_eq!(choice("UERL_TEST", "", MODES), 0);
        assert_eq!(choice("UERL_TEST", "off", MODES), 0);
        assert_eq!(choice("UERL_TEST", "on", MODES), 1);
    }

    #[test]
    #[should_panic(expected = "UERL_TEST must be one of off / on, got \"blue\"")]
    fn unknown_values_panic_with_the_accepted_set() {
        choice("UERL_TEST", "blue", MODES);
    }

    #[test]
    fn unset_env_selects_the_default() {
        // An environment variable no test sets.
        assert_eq!(env_choice("UERL_OBS_KNOB_UNSET_TEST", MODES, 7), 7);
    }
}
