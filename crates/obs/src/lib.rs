//! # uerl-obs
//!
//! The hand-rolled observability substrate of the workspace: a process-global
//! [`MetricsRegistry`] of atomic counters, gauges and fixed log2-bucket histograms,
//! RAII [`Span`] timers feeding those histograms, and the unified [`knob`] parser the
//! rest of the workspace routes its `UERL_*` environment knobs through.
//!
//! Everything here is vendored-deps-free (`std` only), matching the workspace's
//! offline-build convention.
//!
//! ## Runtime gating, and why recording is inert
//!
//! Instrumentation is **always compiled** and gated at runtime by `UERL_METRICS`
//! (`off`, the default, or `on`; any other value panics like every other workspace
//! knob). With metrics off, every record path is one relaxed atomic load and an early
//! return. Crucially, recording can never change what the instrumented code computes:
//! metric state is write-only from the hot paths (nothing reads it back into a
//! decision), so served decisions, costs and every parity fingerprint are bit-identical
//! with metrics on or off. The serving-parity suite and the `obs_overhead` perf_report
//! stage both pin this.
//!
//! ## Event-time vs. wall-clock metrics
//!
//! Every metric declares a [`MetricClass`]:
//!
//! * [`MetricClass::EventTime`] — derived from the event stream or a seeded
//!   computation (event counts, decision counts, accumulated node-hour costs,
//!   shadow-policy regret, TD errors). These are deterministic: bit-identical at any
//!   thread count, and — for the serving metrics — at any shard count and batch size.
//!   They are covered by [`MetricsSnapshot::fingerprint`].
//! * [`MetricClass::WallClock`] — timings and scheduler-dependent statistics (span
//!   durations, work-stealing pool steal counts, queue depths). These legitimately
//!   vary run to run and are **excluded** from the fingerprint.
//!
//! ## Rendering
//!
//! [`MetricsRegistry::snapshot`] produces an immutable [`MetricsSnapshot`] whose
//! entries are sorted by `(name, labels)`, so both renders — [`MetricsSnapshot::to_json`]
//! and the Prometheus text exposition [`MetricsSnapshot::to_prometheus`] — are stable
//! byte for byte for the same recorded values.

pub mod knob;

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// The runtime gate
// ---------------------------------------------------------------------------

/// Gate state: 0 = uninitialised (read `UERL_METRICS` on first use), 1 = off, 2 = on.
static GATE: AtomicU8 = AtomicU8::new(0);

/// Whether metric recording is enabled (the `UERL_METRICS` knob, overridable at
/// runtime with [`set_enabled`]). One relaxed atomic load on the hot path.
#[inline]
pub fn enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        0 => {
            let on = knob::env_choice(
                "UERL_METRICS",
                &[("", false), ("off", false), ("on", true)],
                false,
            );
            GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        state => state == 2,
    }
}

/// Override the metrics gate at runtime (tests and the `obs_overhead` benchmark stage
/// compare metrics-off and metrics-on legs within one process).
pub fn set_enabled(on: bool) {
    GATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// Determinism class of a metric. See the crate docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricClass {
    /// Deterministic, event-stream- or seed-derived. Fingerprinted.
    EventTime,
    /// Timing- or scheduler-dependent. Excluded from fingerprints.
    WallClock,
}

impl MetricClass {
    /// The snake_case label used in renders.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricClass::EventTime => "event_time",
            MetricClass::WallClock => "wall_clock",
        }
    }
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` (no-op while metrics are disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins f64 gauge (stored as bits in an atomic, so reads snapshot a
/// complete write).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the value (no-op while metrics are disabled).
    #[inline]
    pub fn set(&self, value: f64) {
        if enabled() {
            self.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: one for zero, one per power of two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value falls into: bucket 0 holds exactly 0, bucket `i >= 1` holds
/// values in `[2^(i-1), 2^i)`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive upper bound of a bucket (`2^i - 1`; bucket 0 → 0, bucket 64 →
/// `u64::MAX`).
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        1..=63 => (1u64 << index) - 1,
        _ => u64::MAX,
    }
}

/// A fixed log2-bucket histogram over `u64` observations. Recording is three relaxed
/// atomic increments; bucket boundaries are powers of two, so a value's bucket is one
/// `leading_zeros` instruction.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Record one observation (no-op while metrics are disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record the magnitude of an f64 observation in micro-units (`|value| * 1e6`,
    /// rounded): the integer-histogram form used for quantities like TD errors.
    #[inline]
    pub fn record_micros(&self, value: f64) {
        self.record((value.abs() * 1e6).round() as u64);
    }

    /// Start an RAII span feeding this histogram with the elapsed nanoseconds on drop.
    /// While metrics are disabled no clock is read and the drop is free.
    #[inline]
    pub fn span(&self) -> Span<'_> {
        Span {
            histogram: self,
            start: enabled().then(Instant::now),
        }
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Count in one bucket.
    pub fn bucket(&self, index: usize) -> u64 {
        self.buckets[index].load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for bucket in &self.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
    }
}

/// An RAII timer: records the elapsed nanoseconds into its histogram when dropped.
/// Create one with [`Histogram::span`] or the [`span!`] macro.
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span<'a> {
    histogram: &'a Histogram,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.histogram.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Time the rest of the enclosing block into a histogram:
/// `uerl_obs::span!(metrics.tick_duration);`.
#[macro_export]
macro_rules! span {
    ($histogram:expr) => {
        let _uerl_obs_span = $histogram.span();
    };
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Clone)]
struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    class: MetricClass,
    instrument: Instrument,
}

/// A registry of named metrics with static label sets (labels are fixed at
/// registration; there is no per-observation labelling, which is what keeps recording
/// allocation-free). Registering the same `(name, labels)` twice returns the existing
/// instrument, so independent subsystems can share a metric handle.
///
/// Most code uses the process-global [`registry`]; tests construct private instances.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or look up) a counter.
    ///
    /// # Panics
    /// Panics if `(name, labels)` is already registered as a different instrument type.
    pub fn counter(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        class: MetricClass,
    ) -> Arc<Counter> {
        match self.register(name, help, labels, class, || {
            Instrument::Counter(Arc::new(Counter::default()))
        }) {
            Instrument::Counter(c) => c,
            _ => panic!("metric {name:?} is already registered with a different type"),
        }
    }

    /// Register (or look up) a gauge.
    ///
    /// # Panics
    /// Panics if `(name, labels)` is already registered as a different instrument type.
    pub fn gauge(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        class: MetricClass,
    ) -> Arc<Gauge> {
        match self.register(name, help, labels, class, || {
            Instrument::Gauge(Arc::new(Gauge::default()))
        }) {
            Instrument::Gauge(g) => g,
            _ => panic!("metric {name:?} is already registered with a different type"),
        }
    }

    /// Register (or look up) a histogram.
    ///
    /// # Panics
    /// Panics if `(name, labels)` is already registered as a different instrument type.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        class: MetricClass,
    ) -> Arc<Histogram> {
        match self.register(name, help, labels, class, || {
            Instrument::Histogram(Arc::new(Histogram::default()))
        }) {
            Instrument::Histogram(h) => h,
            _ => panic!("metric {name:?} is already registered with a different type"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        class: MetricClass,
        build: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(entry) = entries.iter().find(|e| {
            e.name == name
                && e.labels.len() == labels.len()
                && e.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        }) {
            return entry.instrument.clone();
        }
        let instrument = build();
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            class,
            instrument: instrument.clone(),
        });
        instrument
    }

    /// Zero every registered instrument (registrations are kept). The `obs_overhead`
    /// benchmark stage resets between its metrics-off / metrics-on legs.
    pub fn reset(&self) {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        for entry in entries.iter() {
            match &entry.instrument {
                Instrument::Counter(c) => c.reset(),
                Instrument::Gauge(g) => g.reset(),
                Instrument::Histogram(h) => h.reset(),
            }
        }
    }

    /// An immutable snapshot of every registered metric, sorted by `(name, labels)`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut out: Vec<SnapshotEntry> = entries
            .iter()
            .map(|entry| SnapshotEntry {
                name: entry.name.clone(),
                help: entry.help.clone(),
                labels: entry.labels.clone(),
                class: entry.class,
                value: match &entry.instrument {
                    Instrument::Counter(c) => SnapshotValue::Counter(c.get()),
                    Instrument::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Instrument::Histogram(h) => {
                        let top = (0..HISTOGRAM_BUCKETS)
                            .rev()
                            .find(|&i| h.bucket(i) > 0)
                            .map_or(0, |i| i + 1);
                        let mut cumulative = 0;
                        let buckets = (0..top)
                            .map(|i| {
                                cumulative += h.bucket(i);
                                (bucket_upper_bound(i), cumulative)
                            })
                            .collect();
                        SnapshotValue::Histogram {
                            count: h.count(),
                            sum: h.sum(),
                            buckets,
                        }
                    }
                },
            })
            .collect();
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        MetricsSnapshot { entries: out }
    }
}

/// The process-global registry every subsystem records into.
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

// ---------------------------------------------------------------------------
// Snapshot + renders
// ---------------------------------------------------------------------------

/// The value of one snapshotted metric.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(f64),
    /// A histogram: total count, total sum and `(inclusive upper bound, cumulative
    /// count)` per bucket up to the highest non-empty one.
    Histogram {
        /// Observations recorded.
        count: u64,
        /// Sum of recorded values.
        sum: u64,
        /// Cumulative bucket counts.
        buckets: Vec<(u64, u64)>,
    },
}

/// One snapshotted metric.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Static label set.
    pub labels: Vec<(String, String)>,
    /// Determinism class.
    pub class: MetricClass,
    /// The value.
    pub value: SnapshotValue,
}

/// An immutable, `(name, labels)`-sorted snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// The snapshotted metrics.
    pub entries: Vec<SnapshotEntry>,
}

impl MetricsSnapshot {
    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SnapshotEntry> {
        self.entries.iter().find(|e| {
            e.name == name
                && e.labels.len() == labels.len()
                && e.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
    }

    /// The value of a counter, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.find(name, labels)?.value {
            SnapshotValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// The value of a gauge, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.find(name, labels)?.value {
            SnapshotValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// FNV-1a digest of every [`MetricClass::EventTime`] entry (name, labels, value
    /// bits). Wall-clock metrics are excluded by construction, so the fingerprint is
    /// bit-stable across thread counts and, for the serving metrics, across shard and
    /// batch configurations.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for entry in &self.entries {
            if entry.class != MetricClass::EventTime {
                continue;
            }
            eat(entry.name.as_bytes());
            for (k, v) in &entry.labels {
                eat(k.as_bytes());
                eat(v.as_bytes());
            }
            match &entry.value {
                SnapshotValue::Counter(v) => eat(&v.to_le_bytes()),
                SnapshotValue::Gauge(v) => eat(&v.to_bits().to_le_bytes()),
                SnapshotValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    eat(&count.to_le_bytes());
                    eat(&sum.to_le_bytes());
                    for (bound, cumulative) in buckets {
                        eat(&bound.to_le_bytes());
                        eat(&cumulative.to_le_bytes());
                    }
                }
            }
        }
        hash
    }

    /// Deterministic JSON render: `{"metrics": [...]}` with entries in snapshot
    /// (name, labels) order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_string(&mut out, &entry.name);
            out.push_str(",\"class\":");
            push_json_string(&mut out, entry.class.as_str());
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in entry.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_json_string(&mut out, k);
                out.push(':');
                push_json_string(&mut out, v);
            }
            out.push('}');
            match &entry.value {
                SnapshotValue::Counter(v) => {
                    out.push_str(&format!(",\"type\":\"counter\",\"value\":{v}"));
                }
                SnapshotValue::Gauge(v) => {
                    out.push_str(&format!(",\"type\":\"gauge\",\"value\":{}", json_f64(*v)));
                }
                SnapshotValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    out.push_str(&format!(
                        ",\"type\":\"histogram\",\"count\":{count},\"sum\":{sum},\"buckets\":["
                    ));
                    for (j, (bound, cumulative)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{bound},{cumulative}]"));
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Prometheus text exposition format (version 0.0.4): `# HELP` / `# TYPE` headers
    /// per metric name, histograms as cumulative `_bucket{le=...}` series plus `_sum`
    /// and `_count`. Rendering is byte-stable for identical recorded values.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for entry in &self.entries {
            if last_name != Some(entry.name.as_str()) {
                let kind = match entry.value {
                    SnapshotValue::Counter(_) => "counter",
                    SnapshotValue::Gauge(_) => "gauge",
                    SnapshotValue::Histogram { .. } => "histogram",
                };
                out.push_str(&format!("# HELP {} {}\n", entry.name, entry.help));
                out.push_str(&format!("# TYPE {} {}\n", entry.name, kind));
                last_name = Some(entry.name.as_str());
            }
            match &entry.value {
                SnapshotValue::Counter(v) => {
                    out.push_str(&entry.name);
                    push_prom_labels(&mut out, &entry.labels, None);
                    out.push_str(&format!(" {v}\n"));
                }
                SnapshotValue::Gauge(v) => {
                    out.push_str(&entry.name);
                    push_prom_labels(&mut out, &entry.labels, None);
                    out.push_str(&format!(" {}\n", json_f64(*v)));
                }
                SnapshotValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    for (bound, cumulative) in buckets {
                        out.push_str(&format!("{}_bucket", entry.name));
                        push_prom_labels(&mut out, &entry.labels, Some(&bound.to_string()));
                        out.push_str(&format!(" {cumulative}\n"));
                    }
                    out.push_str(&format!("{}_bucket", entry.name));
                    push_prom_labels(&mut out, &entry.labels, Some("+Inf"));
                    out.push_str(&format!(" {count}\n"));
                    out.push_str(&format!("{}_sum", entry.name));
                    push_prom_labels(&mut out, &entry.labels, None);
                    out.push_str(&format!(" {sum}\n"));
                    out.push_str(&format!("{}_count", entry.name));
                    push_prom_labels(&mut out, &entry.labels, None);
                    out.push_str(&format!(" {count}\n"));
                }
            }
        }
        out
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Shortest-roundtrip decimal for a finite f64 (Rust's `{:?}`), the form both renders
/// use so a re-parsed gauge is bit-exact.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        // JSON has no Inf/NaN; clamp to null (gauges in this workspace are finite).
        "null".to_string()
    }
}

fn push_prom_labels(out: &mut String, labels: &[(String, String)], le: Option<&str>) {
    if labels.is_empty() && le.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{k}=\"{v}\""));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The gate is process-global and tests run concurrently, so every test that
    /// manipulates it serialises on this lock.
    static GATE_LOCK: Mutex<()> = Mutex::new(());

    fn with_metrics_on<T>(f: impl FnOnce() -> T) -> T {
        let _guard = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Bucket 0 holds exactly zero; bucket i holds [2^(i-1), 2^i).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        for value in [0u64, 1, 2, 7, 8, 1 << 20, u64::MAX - 1, u64::MAX] {
            let i = bucket_index(value);
            assert!(value <= bucket_upper_bound(i), "value above its bucket");
            if i > 0 {
                assert!(
                    value > bucket_upper_bound(i - 1),
                    "value fits an earlier bucket"
                );
            }
        }
    }

    #[test]
    fn disabled_metrics_record_nothing_and_read_no_clock() {
        let _guard = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        let registry = MetricsRegistry::new();
        let c = registry.counter("c_total", "help", &[], MetricClass::EventTime);
        let g = registry.gauge("g", "help", &[], MetricClass::EventTime);
        let h = registry.histogram("h", "help", &[], MetricClass::WallClock);
        c.inc();
        g.set(5.0);
        h.record(10);
        {
            let span = h.span();
            assert!(span.start.is_none(), "no clock read while disabled");
        }
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn event_time_counters_are_identical_at_1_and_4_threads() {
        // The same event-derived workload recorded from one thread and from four must
        // snapshot to bit-identical event-time entries and fingerprints (each record
        // is one atomic add; partitioning the work cannot change any total).
        let record_all = |threads: usize| -> (MetricsSnapshot, u64) {
            let registry = MetricsRegistry::new();
            let c = registry.counter("events_total", "h", &[], MetricClass::EventTime);
            let h = registry.histogram("sizes", "h", &[], MetricClass::EventTime);
            let work: Vec<u64> = (0..4096).map(|i| i % 97).collect();
            with_metrics_on(|| {
                std::thread::scope(|scope| {
                    for chunk in work.chunks(work.len() / threads) {
                        let (c, h) = (&c, &h);
                        scope.spawn(move || {
                            for &v in chunk {
                                c.inc();
                                h.record(v);
                            }
                        });
                    }
                });
            });
            let snap = registry.snapshot();
            let fp = snap.fingerprint();
            (snap, fp)
        };
        let (snap1, fp1) = record_all(1);
        let (snap4, fp4) = record_all(4);
        assert_eq!(snap1, snap4);
        assert_eq!(fp1, fp4);
        assert_eq!(snap1.counter("events_total", &[]), Some(4096));
    }

    #[test]
    fn wall_clock_entries_are_excluded_from_the_fingerprint() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("events_total", "h", &[], MetricClass::EventTime);
        let w = registry.histogram("tick_nanos", "h", &[], MetricClass::WallClock);
        with_metrics_on(|| {
            c.add(7);
            w.record(123);
        });
        let fp_before = registry.snapshot().fingerprint();
        with_metrics_on(|| w.record(456_789));
        assert_eq!(
            registry.snapshot().fingerprint(),
            fp_before,
            "wall-clock observations must not move the fingerprint"
        );
        with_metrics_on(|| c.inc());
        assert_ne!(registry.snapshot().fingerprint(), fp_before);
    }

    #[test]
    fn prometheus_render_is_stable() {
        let registry = MetricsRegistry::new();
        let mitigate = registry.counter(
            "uerl_decisions_total",
            "Decisions served",
            &[("action", "mitigate")],
            MetricClass::EventTime,
        );
        let none = registry.counter(
            "uerl_decisions_total",
            "Decisions served",
            &[("action", "none")],
            MetricClass::EventTime,
        );
        let g = registry.gauge("uerl_cost", "Cost", &[], MetricClass::EventTime);
        let h = registry.histogram("uerl_sizes", "Sizes", &[], MetricClass::EventTime);
        with_metrics_on(|| {
            mitigate.add(3);
            none.add(4);
            g.set(1.5);
            h.record(0);
            h.record(3);
            h.record(3);
        });
        let expected = "\
# HELP uerl_cost Cost
# TYPE uerl_cost gauge
uerl_cost 1.5
# HELP uerl_decisions_total Decisions served
# TYPE uerl_decisions_total counter
uerl_decisions_total{action=\"mitigate\"} 3
uerl_decisions_total{action=\"none\"} 4
# HELP uerl_sizes Sizes
# TYPE uerl_sizes histogram
uerl_sizes_bucket{le=\"0\"} 1
uerl_sizes_bucket{le=\"1\"} 1
uerl_sizes_bucket{le=\"3\"} 3
uerl_sizes_bucket{le=\"+Inf\"} 3
uerl_sizes_sum 6
uerl_sizes_count 3
";
        assert_eq!(registry.snapshot().to_prometheus(), expected);
        // Rendering twice (and re-snapshotting) is byte-identical.
        assert_eq!(
            registry.snapshot().to_prometheus(),
            registry.snapshot().to_prometheus()
        );
    }

    #[test]
    fn json_render_is_valid_and_stable() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("a_total", "h", &[("k", "v")], MetricClass::EventTime);
        let h = registry.histogram("b_nanos", "h", &[], MetricClass::WallClock);
        with_metrics_on(|| {
            c.add(2);
            h.record(5);
        });
        let json = registry.snapshot().to_json();
        assert_eq!(
            json,
            "{\"metrics\":[\
             {\"name\":\"a_total\",\"class\":\"event_time\",\"labels\":{\"k\":\"v\"},\
             \"type\":\"counter\",\"value\":2},\
             {\"name\":\"b_nanos\",\"class\":\"wall_clock\",\"labels\":{},\
             \"type\":\"histogram\",\"count\":1,\"sum\":5,\"buckets\":[[0,0],[1,0],[3,0],[7,1]]}\
             ]}"
        );
    }

    #[test]
    fn registration_is_idempotent_and_type_checked() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("x_total", "h", &[], MetricClass::EventTime);
        let b = registry.counter("x_total", "h", &[], MetricClass::EventTime);
        with_metrics_on(|| {
            a.inc();
            b.inc();
        });
        assert_eq!(a.get(), 2, "same (name, labels) shares one instrument");
        assert!(std::panic::catch_unwind(|| {
            registry.gauge("x_total", "h", &[], MetricClass::EventTime)
        })
        .is_err());
        // Different labels are a different instrument.
        let c = registry.counter("x_total", "h", &[("k", "v")], MetricClass::EventTime);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn reset_zeroes_values_but_keeps_registrations() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("c_total", "h", &[], MetricClass::EventTime);
        let g = registry.gauge("g", "h", &[], MetricClass::EventTime);
        let h = registry.histogram("h", "h", &[], MetricClass::EventTime);
        with_metrics_on(|| {
            c.add(9);
            g.set(2.5);
            h.record(4);
        });
        registry.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(registry.snapshot().entries.len(), 3);
    }

    #[test]
    fn span_records_elapsed_nanos() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("span_nanos", "h", &[], MetricClass::WallClock);
        with_metrics_on(|| {
            let _span = h.span();
            std::hint::black_box(1 + 1);
        });
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn record_micros_scales_and_rounds() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("td", "h", &[], MetricClass::EventTime);
        with_metrics_on(|| {
            h.record_micros(-1.5); // |−1.5| * 1e6 = 1_500_000
            h.record_micros(0.0);
        });
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 1_500_000);
    }
}
