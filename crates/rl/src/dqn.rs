//! Deep Q-network agents: DQN, double DQN and the dueling double DQN (DDDQN) used by the
//! paper, with optional prioritized experience replay.
//!
//! The agent keeps two networks: the *online* network selects actions and is trained
//! every few environment steps on a replayed mini-batch; the *target* network evaluates
//! bootstrapped TD targets and is synchronised with the online network every
//! `target_sync_every` updates. In the *double* configuration the online network chooses
//! the argmax action for the next state while the target network provides its value,
//! which removes the max-operator overestimation bias. The *dueling* configuration swaps
//! the plain MLP for the value/advantage architecture of [`uerl_nn::DuelingQNetwork`].

use crate::per::PrioritizedReplay;
use crate::replay::UniformReplay;
use crate::schedule::{BetaSchedule, EpsilonSchedule};
use crate::transition::Transition;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use uerl_nn::{
    Activation, Adam, BatchScratch, DuelingQNetwork, Loss, Matrix, Mlp, MlpConfig, WeightInit,
};

/// Number of replay states [`DqnAgent::compact_for_inference`] retains as the
/// quantization calibration sample.
pub const CALIBRATION_STATES: usize = 2048;

/// Deterministic greedy action over one state's Q-values: the argmax, with exact ties
/// going to the **last** maximal action (the semantics [`DqnAgent::act_greedy`] has
/// always had, via `Iterator::max_by`). Every inference path — single-state, scratch
/// and micro-batched — must route through this one helper so the offline evaluator and
/// the online serving layer cannot diverge on a tie.
///
/// # Panics
/// Panics if a Q-value is NaN.
pub fn greedy_action(q: &[f64]) -> usize {
    q.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite Q-values"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// [`greedy_action`] over f32 Q-values — the quantized inference path dequantizes to
/// f32 and must resolve exact ties identically (last maximal action wins).
///
/// # Panics
/// Panics if a Q-value is NaN.
pub fn greedy_action_f32(q: &[f32]) -> usize {
    q.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite Q-values"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Reusable buffers for allocation-free greedy inference: a staging matrix for the
/// input batch, the network's internal forward scratch, and the Q-value output. One
/// scratch serves any batch size and any agent; the buffers are overwritten on every
/// call and never influence results.
#[derive(Debug, Clone)]
pub struct InferenceScratch {
    input: Matrix,
    forward: BatchScratch,
    q: Matrix,
}

impl InferenceScratch {
    /// Create an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self {
            input: Matrix::zeros(1, 1),
            forward: BatchScratch::new(),
            q: Matrix::zeros(1, 1),
        }
    }

    /// Reset the staging batch to `rows × state_dim` zeros and hand it out for filling
    /// (one row per state, written via [`Matrix::row_mut`]); the allocation is reused.
    pub fn input_mut(&mut self, rows: usize, state_dim: usize) -> &mut Matrix {
        self.input.reset_to(rows, state_dim);
        &mut self.input
    }
}

impl Default for InferenceScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Configuration of a [`DqnAgent`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Dimension of the state feature vector.
    pub state_dim: usize,
    /// Number of discrete actions.
    pub n_actions: usize,
    /// Hidden layer widths of the Q-network.
    pub hidden: Vec<usize>,
    /// Discount factor γ.
    pub gamma: f64,
    /// Learning rate of the Adam optimizer.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Replay memory capacity.
    pub replay_capacity: usize,
    /// Minimum number of stored transitions before training starts.
    pub min_replay: usize,
    /// Train every this many environment steps.
    pub train_every: usize,
    /// Synchronise the target network every this many training updates.
    pub target_sync_every: usize,
    /// Use double Q-learning (decouple action selection from evaluation).
    pub double: bool,
    /// Use the dueling value/advantage architecture.
    pub dueling: bool,
    /// Use prioritized experience replay.
    pub prioritized: bool,
    /// PER prioritisation exponent α.
    pub per_alpha: f64,
    /// Exploration schedule.
    pub epsilon: EpsilonSchedule,
    /// PER importance-sampling annealing schedule.
    pub beta: BetaSchedule,
    /// RNG seed (weights, exploration, replay sampling).
    pub seed: u64,
}

impl AgentConfig {
    /// The paper's agent: dueling double DQN with prioritized experience replay and the
    /// 256-256-128-64 network of Section 3.3.2.
    pub fn paper(state_dim: usize) -> Self {
        Self {
            state_dim,
            n_actions: 2,
            hidden: vec![256, 256, 128, 64],
            gamma: 0.99,
            learning_rate: 1e-4,
            batch_size: 64,
            replay_capacity: 100_000,
            min_replay: 1_000,
            train_every: 4,
            target_sync_every: 500,
            double: true,
            dueling: true,
            prioritized: true,
            per_alpha: 0.6,
            epsilon: EpsilonSchedule::default(),
            beta: BetaSchedule::default(),
            seed: 0,
        }
    }

    /// A small, fast configuration for tests and examples.
    pub fn small(state_dim: usize) -> Self {
        Self {
            state_dim,
            n_actions: 2,
            hidden: vec![32, 32],
            gamma: 0.95,
            learning_rate: 1e-3,
            batch_size: 32,
            replay_capacity: 10_000,
            min_replay: 64,
            train_every: 1,
            target_sync_every: 50,
            double: true,
            dueling: true,
            prioritized: true,
            per_alpha: 0.6,
            epsilon: EpsilonSchedule::new(1.0, 0.05, 2_000),
            beta: BetaSchedule::new(0.4, 5_000),
            seed: 0,
        }
    }

    /// A copy with a different seed (used when training several agents during
    /// hyperparameter search).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self) {
        assert!(self.state_dim > 0, "state_dim must be positive");
        assert!(self.n_actions >= 2, "need at least two actions");
        assert!(!self.hidden.is_empty(), "need at least one hidden layer");
        assert!((0.0..=1.0).contains(&self.gamma), "gamma must be in [0, 1]");
        assert!(self.learning_rate > 0.0, "learning rate must be positive");
        assert!(self.batch_size > 0, "batch size must be positive");
        assert!(
            self.replay_capacity >= self.batch_size,
            "replay must hold a batch"
        );
        assert!(self.train_every > 0, "train_every must be positive");
        assert!(
            self.target_sync_every > 0,
            "target_sync_every must be positive"
        );
    }
}

/// Either of the two Q-function architectures.
// The dueling variant is larger than the plain MLP, but agents hold exactly one
// Q-function pair for their whole lifetime, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum QFunction {
    Plain(Mlp),
    Dueling(DuelingQNetwork),
}

impl QFunction {
    fn build(config: &AgentConfig, rng: &mut StdRng) -> Self {
        let mlp_config = MlpConfig {
            input_dim: config.state_dim,
            hidden: config.hidden.clone(),
            output_dim: config.n_actions,
            hidden_activation: Activation::Relu,
            output_activation: Activation::Identity,
            init: WeightInit::HeNormal,
        };
        if config.dueling {
            QFunction::Dueling(DuelingQNetwork::new(&mlp_config, config.n_actions, rng))
        } else {
            QFunction::Plain(Mlp::new(&mlp_config, rng))
        }
    }

    fn forward(&self, x: &Matrix) -> Matrix {
        match self {
            QFunction::Plain(net) => net.forward(x),
            QFunction::Dueling(net) => net.forward(x),
        }
    }

    fn forward_train(&mut self, x: &Matrix) -> Matrix {
        match self {
            QFunction::Plain(net) => net.forward_train(x),
            QFunction::Dueling(net) => net.forward_train(x),
        }
    }

    fn backward(&mut self, grad: &Matrix) {
        match self {
            QFunction::Plain(net) => {
                let _ = net.backward(grad);
            }
            QFunction::Dueling(net) => {
                let _ = net.backward(grad);
            }
        }
    }

    fn apply_gradients(&mut self, optimizer: &mut Adam) {
        match self {
            QFunction::Plain(net) => net.apply_gradients(optimizer),
            QFunction::Dueling(net) => net.apply_gradients(optimizer),
        }
    }

    fn sync_from(&mut self, other: &QFunction) {
        match (self, other) {
            (QFunction::Plain(a), QFunction::Plain(b)) => a.sync_from(b),
            (QFunction::Dueling(a), QFunction::Dueling(b)) => a.sync_from(b),
            _ => panic!("cannot sync networks of different architectures"),
        }
    }

    fn predict_one(&self, state: &[f64]) -> Vec<f64> {
        match self {
            QFunction::Plain(net) => net.predict_one(state),
            QFunction::Dueling(net) => net.predict_one(state),
        }
    }

    fn forward_batch_into(&self, input: &Matrix, scratch: &mut BatchScratch, out: &mut Matrix) {
        match self {
            QFunction::Plain(net) => net.forward_batch_into(input, scratch, out),
            QFunction::Dueling(net) => net.forward_batch_into(input, scratch, out),
        }
    }
}

/// Either replay memory flavour.
#[derive(Debug, Clone)]
enum ReplayMemory {
    Uniform(UniformReplay),
    Prioritized(PrioritizedReplay),
}

impl ReplayMemory {
    fn len(&self) -> usize {
        match self {
            ReplayMemory::Uniform(r) => r.len(),
            ReplayMemory::Prioritized(r) => r.len(),
        }
    }
}

/// A complete snapshot of an agent mid-training: networks, optimizer moments, replay
/// memory, exploration RNG and the env-step/update counters. Resuming from a checkpoint
/// and continuing to train is **bit-equal** to never having paused.
///
/// This is the agent-level statement of the resumability contract the successive-
/// halving search builds on (its rung-by-rung training holds live agents inside
/// `TrainingSession`s rather than going through this type); the checkpoint API is the
/// surface for callers that need to pause and hand off an agent explicitly, and its
/// tests pin the bit-equality contract itself.
#[derive(Debug, Clone)]
pub struct AgentCheckpoint {
    agent: DqnAgent,
}

impl AgentCheckpoint {
    /// Environment steps the checkpointed agent had observed.
    pub fn env_steps(&self) -> u64 {
        self.agent.env_steps
    }

    /// Gradient updates the checkpointed agent had performed.
    pub fn updates(&self) -> u64 {
        self.agent.updates
    }

    /// Resume training from this checkpoint.
    pub fn resume(self) -> DqnAgent {
        self.agent
    }
}

/// A deep Q-network agent.
#[derive(Debug, Clone)]
pub struct DqnAgent {
    config: AgentConfig,
    online: QFunction,
    target: QFunction,
    optimizer: Adam,
    replay: ReplayMemory,
    rng: StdRng,
    env_steps: u64,
    updates: u64,
    loss: Loss,
    last_loss: Option<f64>,
    compacted: bool,
    /// Calibration states retained from the replay memory by
    /// [`DqnAgent::compact_for_inference`], consumed by [`DqnAgent::quantize`].
    calibration: Vec<Vec<f64>>,
}

impl DqnAgent {
    /// Create an agent from a configuration.
    ///
    /// # Panics
    /// Panics if the configuration is internally inconsistent (see [`AgentConfig`]).
    pub fn new(config: AgentConfig) -> Self {
        config.validate();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let online = QFunction::build(&config, &mut rng);
        let mut target = QFunction::build(&config, &mut rng);
        target.sync_from(&online);
        let replay = if config.prioritized {
            ReplayMemory::Prioritized(PrioritizedReplay::new(
                config.replay_capacity,
                config.per_alpha,
            ))
        } else {
            ReplayMemory::Uniform(UniformReplay::new(config.replay_capacity))
        };
        let optimizer = Adam::new(config.learning_rate);
        Self {
            config,
            online,
            target,
            optimizer,
            replay,
            rng,
            env_steps: 0,
            updates: 0,
            loss: Loss::huber(),
            last_loss: None,
            compacted: false,
            calibration: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// Shrink a trained agent to its inference footprint by dropping the accumulated
    /// replay memory (a fresh minimal buffer keeps the agent valid). Greedy inference
    /// (`q_values` / `act_greedy`) is unaffected; only further training would differ.
    /// The parallel hyperparameter search compacts every candidate policy so a round
    /// of trained agents does not pin one filled replay buffer per candidate.
    ///
    /// Before the replay memory is dropped, up to [`CALIBRATION_STATES`] of its states
    /// (evenly strided over the buffer, deterministically) are retained as the
    /// calibration sample for [`DqnAgent::quantize`] — they are drawn from the training
    /// trajectories and therefore cover the state distribution the deployed policy
    /// will serve.
    pub fn compact_for_inference(&mut self) {
        let transitions = match &self.replay {
            ReplayMemory::Uniform(replay) => replay.transitions(),
            ReplayMemory::Prioritized(replay) => replay.transitions(),
        };
        if !transitions.is_empty() {
            let stride = transitions.len().div_ceil(CALIBRATION_STATES).max(1);
            self.calibration = transitions
                .iter()
                .step_by(stride)
                .take(CALIBRATION_STATES)
                .map(|t| t.state.clone())
                .collect();
        }
        self.replay = if self.config.prioritized {
            ReplayMemory::Prioritized(PrioritizedReplay::new(1, self.config.per_alpha))
        } else {
            ReplayMemory::Uniform(UniformReplay::new(1))
        };
        self.compacted = true;
    }

    /// Whether [`DqnAgent::compact_for_inference`] dropped the replay memory. A
    /// compacted agent can still be queried but must not be trained or checkpointed.
    pub fn is_compacted(&self) -> bool {
        self.compacted
    }

    /// Capture the complete training state (networks, optimizer, replay, RNG,
    /// counters), so training can later continue from exactly this point.
    ///
    /// # Panics
    /// Panics if the agent was compacted for inference — its replay memory is gone, so
    /// resumed training could not be bit-equal to uninterrupted training.
    pub fn checkpoint(&self) -> AgentCheckpoint {
        assert!(
            !self.compacted,
            "a compacted agent cannot be checkpointed for resumable training"
        );
        AgentCheckpoint {
            agent: self.clone(),
        }
    }

    /// Number of environment steps observed so far.
    pub fn env_steps(&self) -> u64 {
        self.env_steps
    }

    /// Number of transitions currently held in the replay memory.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Number of gradient updates performed so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The loss of the most recent training step, if any.
    pub fn last_loss(&self) -> Option<f64> {
        self.last_loss
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.config.epsilon.value(self.env_steps)
    }

    /// Q-values predicted by the online network for one state.
    pub fn q_values(&self, state: &[f64]) -> Vec<f64> {
        self.online.predict_one(state)
    }

    /// Q-values of the online network for the batch staged in `scratch` (one row per
    /// state, filled through [`InferenceScratch::input_mut`]). The entire pass reuses
    /// the scratch's preallocated buffers — no allocation after warm-up — and each
    /// output row is **bit-identical** to [`DqnAgent::q_values`] on that state alone,
    /// which is what lets the serving layer stack a tick's decision requests into one
    /// forward pass at any batch size without changing a single decision.
    pub fn q_values_batch<'s>(&self, scratch: &'s mut InferenceScratch) -> &'s Matrix {
        let InferenceScratch { input, forward, q } = scratch;
        self.online.forward_batch_into(input, forward, q);
        q
    }

    /// Freeze the online network into the symmetric-i8 inference mirror
    /// ([`uerl_nn::QuantizedNetwork`]): per-layer i8 weights, i32 accumulators, f32
    /// dequant at layer boundaries. The quantized network is a snapshot — further
    /// training does not update it — and its decisions intentionally may diverge from
    /// the f64 path; the serving layer measures that divergence as a decision-match
    /// rate.
    pub fn quantize(&self) -> uerl_nn::QuantizedNetwork {
        let calib = if self.calibration.is_empty() {
            None
        } else {
            let dim = self.config.state_dim;
            Some(Matrix::from_fn(self.calibration.len(), dim, |i, j| {
                self.calibration[i][j]
            }))
        };
        match (&self.online, &calib) {
            (QFunction::Plain(net), None) => uerl_nn::QuantizedNetwork::from_mlp(net),
            (QFunction::Plain(net), Some(calib)) => {
                uerl_nn::QuantizedNetwork::from_mlp_calibrated(net, calib)
            }
            (QFunction::Dueling(net), None) => uerl_nn::QuantizedNetwork::from_dueling(net),
            (QFunction::Dueling(net), Some(calib)) => {
                uerl_nn::QuantizedNetwork::from_dueling_calibrated(net, calib)
            }
        }
    }

    /// Greedy action (no exploration): argmax of the online Q-values.
    pub fn act_greedy(&self, state: &[f64]) -> usize {
        greedy_action(&self.q_values(state))
    }

    /// Allocation-free [`DqnAgent::act_greedy`]: stages the state into the scratch's
    /// single-row batch and runs the preallocated forward path. Bit-identical decision
    /// to `act_greedy` (same kernels, same tie rule).
    pub fn act_greedy_with(&self, state: &[f64], scratch: &mut InferenceScratch) -> usize {
        let input = scratch.input_mut(1, state.len());
        input.row_mut(0).copy_from_slice(state);
        greedy_action(self.q_values_batch(scratch).row(0))
    }

    /// ε-greedy action for training.
    pub fn act(&mut self, state: &[f64]) -> usize {
        let eps = self.epsilon();
        if self.rng.gen::<f64>() < eps {
            self.rng.gen_range(0..self.config.n_actions)
        } else {
            self.act_greedy(state)
        }
    }

    /// Store one transition and, when due, run a training step.
    pub fn observe(&mut self, transition: Transition) {
        debug_assert!(
            !self.compacted,
            "agent was compacted for inference; training would sample a 1-slot replay"
        );
        debug_assert_eq!(transition.state_dim(), self.config.state_dim);
        match &mut self.replay {
            ReplayMemory::Uniform(r) => r.push(transition),
            ReplayMemory::Prioritized(r) => r.push(transition),
        }
        self.env_steps += 1;
        if self.replay.len() >= self.config.min_replay.max(self.config.batch_size)
            && self
                .env_steps
                .is_multiple_of(self.config.train_every as u64)
        {
            self.train_step();
        }
    }

    /// Force a target-network synchronisation.
    pub fn sync_target(&mut self) {
        self.target.sync_from(&self.online);
        crate::metrics::metrics().target_syncs.inc();
    }

    /// Run one gradient update on a replayed mini-batch. Returns the batch loss, or
    /// `None` if the replay memory does not yet hold enough transitions.
    pub fn train_step(&mut self) -> Option<f64> {
        debug_assert!(
            !self.compacted,
            "agent was compacted for inference; training would sample a 1-slot replay"
        );
        let batch_size = self.config.batch_size;
        if self.replay.len() < batch_size {
            return None;
        }

        // Sample a batch (with importance weights for PER, unit weights otherwise).
        let (indices, weights, transitions): (Vec<usize>, Vec<f64>, Vec<Transition>) =
            match &self.replay {
                ReplayMemory::Prioritized(per) => {
                    let beta = self.config.beta.value(self.updates);
                    let batch = per.sample(batch_size, beta, &mut self.rng);
                    (batch.indices, batch.weights, batch.transitions)
                }
                ReplayMemory::Uniform(uni) => {
                    let sampled: Vec<Transition> = uni
                        .sample(batch_size, &mut self.rng)
                        .into_iter()
                        .cloned()
                        .collect();
                    (Vec::new(), vec![1.0; sampled.len()], sampled)
                }
            };
        if transitions.is_empty() {
            return None;
        }
        let n = transitions.len();

        // Assemble the state batch and the TD targets.
        let state_dim = self.config.state_dim;
        let mut states = Matrix::zeros(n, state_dim);
        for (i, t) in transitions.iter().enumerate() {
            states.row_mut(i).copy_from_slice(&t.state);
        }

        // Next-state values for the non-terminal transitions.
        let non_terminal: Vec<usize> = transitions
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_terminal())
            .map(|(i, _)| i)
            .collect();
        let mut next_values = vec![0.0; n];
        if !non_terminal.is_empty() {
            let mut next_states = Matrix::zeros(non_terminal.len(), state_dim);
            for (row, &i) in non_terminal.iter().enumerate() {
                next_states
                    .row_mut(row)
                    .copy_from_slice(transitions[i].next_state.as_ref().expect("non-terminal"));
            }
            let q_target_next = self.target.forward(&next_states);
            if self.config.double {
                let q_online_next = self.online.forward(&next_states);
                for (row, &i) in non_terminal.iter().enumerate() {
                    let a_star = q_online_next.row_argmax(row);
                    next_values[i] = q_target_next.get(row, a_star);
                }
            } else {
                for (row, &i) in non_terminal.iter().enumerate() {
                    next_values[i] = q_target_next.row_max(row);
                }
            }
        }

        let targets: Vec<f64> = transitions
            .iter()
            .enumerate()
            .map(|(i, t)| t.reward + self.config.gamma * next_values[i])
            .collect();

        // Forward the online network, compute the action-gated gradient and step.
        let q_online = self.online.forward_train(&states);
        let predictions: Vec<f64> = transitions
            .iter()
            .enumerate()
            .map(|(i, t)| q_online.get(i, t.action))
            .collect();
        let td_errors: Vec<f64> = predictions
            .iter()
            .zip(&targets)
            .map(|(&p, &y)| p - y)
            .collect();
        let loss_value = self
            .loss
            .batch_value(&predictions, &targets, Some(&weights));
        let per_sample_grads = self
            .loss
            .batch_gradient(&predictions, &targets, Some(&weights));
        let mut grad_q = Matrix::zeros(n, self.config.n_actions);
        for (i, t) in transitions.iter().enumerate() {
            grad_q.set(i, t.action, per_sample_grads[i]);
        }
        self.online.backward(&grad_q);
        self.online.apply_gradients(&mut self.optimizer);

        // Refresh priorities and the target network.
        if let ReplayMemory::Prioritized(per) = &mut self.replay {
            per.update_priorities(&indices, &td_errors);
        }
        if uerl_obs::enabled() {
            let m = crate::metrics::metrics();
            m.updates.inc();
            m.replay_len.set(self.replay.len() as f64);
            for &e in &td_errors {
                m.td_error_micros.record_micros(e);
            }
        }
        self.updates += 1;
        if self
            .updates
            .is_multiple_of(self.config.target_sync_every as u64)
        {
            self.sync_target();
        }
        self.last_loss = Some(loss_value);
        Some(loss_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-context bandit: state [1,0] rewards action 0, state [0,1] rewards action 1.
    fn train_bandit(mut config: AgentConfig, steps: usize) -> DqnAgent {
        config.state_dim = 2;
        let mut agent = DqnAgent::new(config);
        let states = [vec![1.0, 0.0], vec![0.0, 1.0]];
        for step in 0..steps {
            let s = states[step % 2].clone();
            let a = agent.act(&s);
            let correct = if s[0] > 0.5 { 0 } else { 1 };
            let reward = if a == correct { 1.0 } else { -1.0 };
            agent.observe(Transition::terminal(s, a, reward));
        }
        agent
    }

    #[test]
    fn dddqn_with_per_solves_contextual_bandit() {
        let agent = train_bandit(AgentConfig::small(2).with_seed(1), 2_000);
        assert_eq!(agent.act_greedy(&[1.0, 0.0]), 0);
        assert_eq!(agent.act_greedy(&[0.0, 1.0]), 1);
        assert!(agent.updates() > 0);
        assert!(agent.last_loss().is_some());
    }

    #[test]
    fn compaction_drops_the_replay_but_preserves_inference() {
        let mut agent = train_bandit(AgentConfig::small(2).with_seed(6), 1_000);
        assert!(agent.replay_len() > 0);
        let q0 = agent.q_values(&[1.0, 0.0]);
        let q1 = agent.q_values(&[0.0, 1.0]);
        agent.compact_for_inference();
        assert_eq!(agent.replay_len(), 0);
        for (a, b) in q0.iter().zip(&agent.q_values(&[1.0, 0.0])) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in q1.iter().zip(&agent.q_values(&[0.0, 1.0])) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batched_q_values_are_bit_identical_to_single_state_inference() {
        // Both architectures: each row of a staged batch must match `q_values` on that
        // state to the bit, and the scratch paths must agree with the allocating ones.
        for dueling in [false, true] {
            let config = AgentConfig {
                dueling,
                ..AgentConfig::small(2).with_seed(21)
            };
            let agent = train_bandit(config, 500);
            let states = [
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![0.3, -0.7],
                vec![-0.2, 0.9],
                vec![0.0, 0.0],
            ];
            let mut scratch = InferenceScratch::new();
            let input = scratch.input_mut(states.len(), 2);
            for (i, s) in states.iter().enumerate() {
                input.row_mut(i).copy_from_slice(s);
            }
            let q = agent.q_values_batch(&mut scratch);
            let rows: Vec<Vec<f64>> = (0..states.len()).map(|i| q.row(i).to_vec()).collect();
            for (s, row) in states.iter().zip(&rows) {
                for (a, b) in row.iter().zip(agent.q_values(s)) {
                    assert_eq!(a.to_bits(), b.to_bits(), "dueling={dueling}");
                }
            }
            // The scratch single-state path and the tie rule agree with act_greedy.
            for s in &states {
                assert_eq!(
                    agent.act_greedy_with(s, &mut scratch),
                    agent.act_greedy(s),
                    "dueling={dueling}"
                );
            }
        }
    }

    #[test]
    fn greedy_action_ties_keep_the_last_maximal_action() {
        // act_greedy has always resolved exact ties through `max_by`, which returns the
        // last maximal element; the shared helper must preserve that so the batched
        // serving path and the offline evaluator decide identically on ties.
        assert_eq!(greedy_action(&[1.0, 1.0]), 1);
        assert_eq!(greedy_action(&[2.0, 1.0]), 0);
        assert_eq!(greedy_action(&[1.0, 2.0]), 1);
        assert_eq!(greedy_action(&[3.0, 3.0, 1.0]), 1);
        // The f32 helper must mirror the tie rule exactly.
        assert_eq!(greedy_action_f32(&[1.0, 1.0]), 1);
        assert_eq!(greedy_action_f32(&[2.0, 1.0]), 0);
        assert_eq!(greedy_action_f32(&[1.0, 2.0]), 1);
        assert_eq!(greedy_action_f32(&[3.0, 3.0, 1.0]), 1);
    }

    #[test]
    fn quantized_agent_mostly_agrees_with_the_f64_path() {
        // Quantization may legitimately flip near-tie decisions, but on a trained agent
        // whose two bandit actions are well separated the i8 mirror must agree on the
        // clear-cut states and on the vast majority of probe states. Deterministic
        // seeds make this exact, not statistical.
        for dueling in [false, true] {
            let config = AgentConfig {
                dueling,
                ..AgentConfig::small(2).with_seed(21)
            };
            let agent = train_bandit(config, 500);
            let qnet = agent.quantize();
            assert_eq!(qnet.output_dim(), 2);
            assert_eq!(qnet.input_dim(), 2);
            let mut scratch = uerl_nn::QuantScratch::new();
            let clear = [vec![1.0, 0.0], vec![0.0, 1.0]];
            for s in &clear {
                let input = Matrix::row_from_slice(s);
                let q = qnet.forward_batch_into(&input, &mut scratch);
                assert_eq!(
                    greedy_action_f32(q),
                    agent.act_greedy(s),
                    "dueling={dueling} state={s:?}"
                );
            }
            let probes: Vec<Vec<f64>> = (0..50)
                .map(|i| {
                    let t = f64::from(i) * 0.13;
                    vec![t.sin(), (t * 1.7).cos()]
                })
                .collect();
            let agree = probes
                .iter()
                .filter(|s| {
                    let input = Matrix::row_from_slice(s);
                    let q = qnet.forward_batch_into(&input, &mut scratch);
                    greedy_action_f32(q) == agent.act_greedy(s)
                })
                .count();
            assert!(
                agree >= 45,
                "dueling={dueling}: only {agree}/50 probe decisions agree with f64"
            );
        }
    }

    #[test]
    fn plain_uniform_dqn_also_solves_it() {
        let config = AgentConfig {
            double: false,
            dueling: false,
            prioritized: false,
            ..AgentConfig::small(2).with_seed(2)
        };
        let agent = train_bandit(config, 2_500);
        assert_eq!(agent.act_greedy(&[1.0, 0.0]), 0);
        assert_eq!(agent.act_greedy(&[0.0, 1.0]), 1);
    }

    #[test]
    fn bootstrapping_propagates_future_reward() {
        // Two-step chain: s0 --a0--> s1 (r=0), s1 --a0--> terminal (r=1). Action 1 ends
        // the episode immediately with r=0. Q(s0, a0) should approach gamma * 1.
        let mut config = AgentConfig::small(2).with_seed(3);
        config.gamma = 0.9;
        config.epsilon = EpsilonSchedule::new(1.0, 0.2, 1_000);
        let mut agent = DqnAgent::new(config);
        let s0 = vec![1.0, 0.0];
        let s1 = vec![0.0, 1.0];
        for _ in 0..1_500 {
            // From s0.
            let a = agent.act(&s0);
            if a == 0 {
                agent.observe(Transition::new(s0.clone(), 0, 0.0, s1.clone()));
                let a1 = agent.act(&s1);
                let r = if a1 == 0 { 1.0 } else { 0.0 };
                agent.observe(Transition::terminal(s1.clone(), a1, r));
            } else {
                agent.observe(Transition::terminal(s0.clone(), 1, 0.0));
            }
        }
        let q0 = agent.q_values(&s0);
        let q1 = agent.q_values(&s1);
        assert!((q1[0] - 1.0).abs() < 0.2, "Q(s1, continue) = {}", q1[0]);
        assert!(
            (q0[0] - 0.9).abs() < 0.25,
            "Q(s0, continue) = {} should be near gamma",
            q0[0]
        );
        assert!(q0[0] > q0[1], "continuing must beat quitting in s0");
    }

    #[test]
    fn target_network_tracks_online_after_sync() {
        let mut agent = DqnAgent::new(AgentConfig::small(2).with_seed(4));
        let s = [0.5, -0.5];
        // Push enough data and train a few steps so the online network moves.
        for i in 0..200 {
            agent.observe(Transition::terminal(vec![0.5, -0.5], i % 2, 1.0));
        }
        let before_online = agent.q_values(&s);
        let before_target = agent.target.predict_one(&s);
        assert_ne!(before_online, before_target, "online should have drifted");
        agent.sync_target();
        let after_target = agent.target.predict_one(&s);
        assert_eq!(agent.q_values(&s), after_target);
    }

    #[test]
    fn exploration_rate_decays_with_steps() {
        let mut agent = DqnAgent::new(AgentConfig::small(2).with_seed(5));
        let eps0 = agent.epsilon();
        for _ in 0..500 {
            agent.observe(Transition::terminal(vec![0.0, 0.0], 0, 0.0));
        }
        assert!(agent.epsilon() < eps0);
        assert!(agent.env_steps() == 500);
    }

    #[test]
    fn train_step_requires_enough_replay() {
        let mut agent = DqnAgent::new(AgentConfig::small(2).with_seed(6));
        assert_eq!(agent.train_step(), None);
    }

    /// Continue the bandit workload on an existing agent for `steps` more steps,
    /// starting the episode pattern at `offset` so resumed runs see the same stream.
    fn continue_bandit(agent: &mut DqnAgent, offset: usize, steps: usize) {
        let states = [vec![1.0, 0.0], vec![0.0, 1.0]];
        for step in offset..offset + steps {
            let s = states[step % 2].clone();
            let a = agent.act(&s);
            let correct = if s[0] > 0.5 { 0 } else { 1 };
            let reward = if a == correct { 1.0 } else { -1.0 };
            agent.observe(Transition::terminal(s, a, reward));
        }
    }

    #[test]
    fn resumed_training_is_bit_equal_to_straight_through() {
        // Train 500 steps, checkpoint, continue to 1500 — and compare against an agent
        // that trained the same 1500 steps without pausing. Counters, Q-values and the
        // next exploration decisions must agree to the bit: the checkpoint carries the
        // networks, optimizer moments, replay contents/priorities and the RNG.
        let straight = train_bandit(AgentConfig::small(2).with_seed(11), 1_500);
        let mut paused = train_bandit(AgentConfig::small(2).with_seed(11), 500);
        let checkpoint = paused.checkpoint();
        assert_eq!(checkpoint.env_steps(), 500);
        let mut resumed = checkpoint.resume();
        continue_bandit(&mut paused, 500, 1_000);
        continue_bandit(&mut resumed, 500, 1_000);
        for agent in [&paused, &resumed] {
            assert_eq!(agent.env_steps(), straight.env_steps());
            assert_eq!(agent.updates(), straight.updates());
            assert_eq!(agent.replay_len(), straight.replay_len());
            for probe in [[1.0, 0.0], [0.0, 1.0], [0.3, -0.7]] {
                for (a, b) in agent.q_values(&probe).iter().zip(straight.q_values(&probe)) {
                    assert_eq!(a.to_bits(), b.to_bits(), "Q-values diverged after resume");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "compacted agent cannot be checkpointed")]
    fn compacted_agents_refuse_to_checkpoint() {
        let mut agent = train_bandit(AgentConfig::small(2).with_seed(12), 300);
        assert!(!agent.is_compacted());
        agent.compact_for_inference();
        assert!(agent.is_compacted());
        let _ = agent.checkpoint();
    }

    #[test]
    fn same_seed_gives_identical_behaviour() {
        let a = train_bandit(AgentConfig::small(2).with_seed(7), 300);
        let b = train_bandit(AgentConfig::small(2).with_seed(7), 300);
        assert_eq!(a.q_values(&[1.0, 0.0]), b.q_values(&[1.0, 0.0]));
    }

    #[test]
    fn paper_config_builds_the_full_architecture() {
        let agent = DqnAgent::new(AgentConfig::paper(14));
        assert_eq!(agent.config().hidden, vec![256, 256, 128, 64]);
        assert!(agent.config().double && agent.config().dueling && agent.config().prioritized);
        assert_eq!(agent.q_values(&[0.0; 14]).len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least two actions")]
    fn bad_config_rejected() {
        let config = AgentConfig {
            n_actions: 1,
            ..AgentConfig::small(2)
        };
        DqnAgent::new(config);
    }
}
