//! Hyperparameter sets and the two-round random search of the evaluation protocol.
//!
//! Section 4.1 of the paper: for every cross-validation split, a first round of random
//! search draws 60 hyperparameter sets (learning rate, discount factor, network update
//! and synchronisation frequencies, PER batch size, ...), the best agent on the training
//! data seeds a second, narrowed round, and the best agent on the validation set is kept.
//! This module provides the hyperparameter vector, its samplers, and a generic two-round
//! search driver that the evaluation harness feeds with a "train and score this
//! configuration" closure.

use crate::dqn::AgentConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The hyperparameters explored by the random search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperParams {
    /// Learning rate of the optimizer.
    pub learning_rate: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Mini-batch size of the replay sampler.
    pub batch_size: usize,
    /// Environment steps between training updates.
    pub train_every: usize,
    /// Training updates between target-network synchronisations.
    pub target_sync_every: usize,
    /// Prioritisation exponent α of PER.
    pub per_alpha: f64,
    /// Steps over which ε decays to its final value.
    pub epsilon_decay_steps: u64,
}

impl HyperParams {
    /// A reasonable default point in the search space.
    pub fn default_point() -> Self {
        Self {
            learning_rate: 1e-3,
            gamma: 0.99,
            batch_size: 32,
            train_every: 2,
            target_sync_every: 250,
            per_alpha: 0.6,
            epsilon_decay_steps: 20_000,
        }
    }

    /// Draw a random point from the full search space.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let lr_exp = rng.gen_range(-4.0..-2.0); // 1e-4 .. 1e-2
        let gammas = [0.9, 0.95, 0.99, 0.995];
        let batches = [16, 32, 64];
        let train_everys = [1, 2, 4];
        let syncs = [100, 250, 500, 1000];
        Self {
            learning_rate: 10f64.powf(lr_exp),
            gamma: gammas[rng.gen_range(0..gammas.len())],
            batch_size: batches[rng.gen_range(0..batches.len())],
            train_every: train_everys[rng.gen_range(0..train_everys.len())],
            target_sync_every: syncs[rng.gen_range(0..syncs.len())],
            per_alpha: rng.gen_range(0.4..0.8),
            epsilon_decay_steps: rng.gen_range(5_000..50_000),
        }
    }

    /// Draw a point close to `self` (the narrowed second-round search space).
    pub fn narrowed<R: Rng + ?Sized>(&self, rng: &mut R) -> Self {
        let jitter = |rng: &mut R, v: f64, rel: f64| -> f64 {
            let factor = 1.0 + rng.gen_range(-rel..rel);
            v * factor
        };
        Self {
            learning_rate: jitter(rng, self.learning_rate, 0.5).clamp(1e-5, 1e-1),
            gamma: (self.gamma + rng.gen_range(-0.01..0.01)).clamp(0.8, 0.999),
            batch_size: self.batch_size,
            train_every: self.train_every,
            target_sync_every: ((jitter(rng, self.target_sync_every as f64, 0.5)) as usize).max(10),
            per_alpha: jitter(rng, self.per_alpha, 0.2).clamp(0.2, 1.0),
            epsilon_decay_steps: (jitter(rng, self.epsilon_decay_steps as f64, 0.5) as u64)
                .max(1_000),
        }
    }

    /// Apply these hyperparameters to a base agent configuration.
    pub fn apply_to(&self, base: &AgentConfig) -> AgentConfig {
        let mut config = base.clone();
        config.learning_rate = self.learning_rate;
        config.gamma = self.gamma;
        config.batch_size = self.batch_size;
        config.train_every = self.train_every;
        config.target_sync_every = self.target_sync_every;
        config.per_alpha = self.per_alpha;
        config.epsilon = crate::schedule::EpsilonSchedule::new(
            base.epsilon.start,
            base.epsilon.end,
            self.epsilon_decay_steps,
        );
        config
    }
}

/// One evaluated configuration in the search trace, in evaluation order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedCandidate {
    /// The hyperparameters that were evaluated.
    pub params: HyperParams,
    /// The pre-drawn seed material handed to the evaluation closure.
    pub trainer_seed: u64,
    /// The candidate's score (higher is better).
    pub score: f64,
    /// The cost charged for evaluating this candidate (e.g. training node-hours).
    pub cost: f64,
    /// Whether the candidate belongs to the narrowed second round.
    pub refined: bool,
}

/// The result of a two-round search: the winning artifact plus the full candidate trace.
#[derive(Debug, Clone)]
pub struct SearchOutcome<P> {
    /// The artifact (e.g. trained policy) returned by the winning candidate.
    pub best: P,
    /// The winning hyperparameters.
    pub best_params: HyperParams,
    /// The winning score.
    pub best_score: f64,
    /// Index of the winner in [`SearchOutcome::candidates`].
    pub best_index: usize,
    /// Sum of every candidate's cost, accumulated in candidate order (the whole
    /// search is charged, not just the winner).
    pub total_cost: f64,
    /// Every evaluated candidate, in evaluation order (broad round first).
    pub candidates: Vec<EvaluatedCandidate>,
}

/// A two-round random hyperparameter search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperSearch {
    /// Total configurations evaluated in the broad first round, *including* the
    /// default point (60 in the paper).
    pub initial_round: usize,
    /// Number of configurations drawn in the narrowed second round.
    pub refined_round: usize,
}

impl HyperSearch {
    /// The paper's budget: 60 random configurations plus a narrowed second round.
    pub fn paper() -> Self {
        Self {
            initial_round: 60,
            refined_round: 20,
        }
    }

    /// A reduced budget for tests and laptop-scale runs.
    pub fn reduced(initial: usize, refined: usize) -> Self {
        Self {
            initial_round: initial.max(1),
            refined_round: refined,
        }
    }

    /// Run the search with a parallel fan-out over the candidates of each round.
    ///
    /// Every candidate's parameters and per-candidate seed material are pre-drawn from
    /// `rng` up front (in candidate order, parameters before seed), so the evaluation
    /// closure never touches the shared RNG and the candidates of a round are
    /// embarrassingly parallel: each round is one plain indexed fan-out over the
    /// persistent work-stealing pool, which also balances the search against whatever
    /// else is running (e.g. the evaluator trains it concurrently with the SC20-RF
    /// threshold scan, and every candidate's rollouts nest inside it) without any
    /// per-level thread budgeting. `evaluate` maps a candidate and its pre-drawn seed
    /// to `(artifact, score, cost)`; higher scores win, ties keep the earliest
    /// candidate, and costs are accumulated in candidate order — the outcome is
    /// **bit-identical at any thread count** and identical to a serial evaluation.
    ///
    /// The default point counts as the first of the `initial_round` broad candidates,
    /// so exactly `initial_round + refined_round` configurations are evaluated.
    pub fn run_parallel<P, R, F>(&self, rng: &mut R, evaluate: F) -> SearchOutcome<P>
    where
        P: Send,
        R: Rng + ?Sized,
        F: Fn(&HyperParams, u64) -> (P, f64, f64) + Sync,
    {
        let initial = self.initial_round.max(1);
        let mut candidates = Vec::with_capacity(initial + self.refined_round);
        let mut total_cost = 0.0f64;
        let mut best: Option<(usize, P, f64)> = None;

        // Broad round: the default point plus `initial - 1` samples from the full space.
        let mut round: Vec<(HyperParams, u64)> = Vec::with_capacity(initial);
        let default = HyperParams::default_point();
        round.push((default, rng.next_u64()));
        for _ in 1..initial {
            let params = HyperParams::sample(rng);
            round.push((params, rng.next_u64()));
        }
        reduce_round(
            &round,
            false,
            &evaluate,
            &mut candidates,
            &mut total_cost,
            &mut best,
        );

        // Narrowed round, anchored at the broad round's winner.
        let anchor = best
            .as_ref()
            .map(|&(i, _, _)| candidates[i].params)
            .expect("the broad round evaluated at least one candidate");
        let mut round: Vec<(HyperParams, u64)> = Vec::with_capacity(self.refined_round);
        for _ in 0..self.refined_round {
            let params = anchor.narrowed(rng);
            round.push((params, rng.next_u64()));
        }
        reduce_round(
            &round,
            true,
            &evaluate,
            &mut candidates,
            &mut total_cost,
            &mut best,
        );

        let (best_index, best_artifact, best_score) = best.expect("at least one candidate");
        SearchOutcome {
            best: best_artifact,
            best_params: candidates[best_index].params,
            best_score,
            best_index,
            total_cost,
            candidates,
        }
    }

    /// Run the search with a score-only closure (higher is better) and return the best
    /// hyperparameters together with their score. Convenience wrapper over
    /// [`HyperSearch::run_parallel`] with no artifact and no cost accounting.
    ///
    /// The search is deterministic given `rng` and a deterministic scoring closure.
    pub fn run<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        score: impl Fn(&HyperParams) -> f64 + Sync,
    ) -> (HyperParams, f64) {
        let outcome = self.run_parallel(rng, |params, _seed| ((), score(params), 0.0));
        (outcome.best_params, outcome.best_score)
    }
}

/// Evaluate one pre-drawn round as a plain indexed fan-out over the work-stealing pool
/// and fold it into the running search state in candidate order (deterministic best
/// selection and cost accumulation). Results land in candidate-index slots, so the
/// fold order never depends on which worker trained which candidate.
fn reduce_round<P, F>(
    round: &[(HyperParams, u64)],
    refined: bool,
    evaluate: &F,
    candidates: &mut Vec<EvaluatedCandidate>,
    total_cost: &mut f64,
    best: &mut Option<(usize, P, f64)>,
) where
    P: Send,
    F: Fn(&HyperParams, u64) -> (P, f64, f64) + Sync,
{
    let evaluated: Vec<(P, f64, f64)> =
        rayon::execute_indexed(round.len(), |i| evaluate(&round[i].0, round[i].1));
    for ((params, seed), (artifact, score, cost)) in round.iter().zip(evaluated) {
        let index = candidates.len();
        *total_cost += cost;
        candidates.push(EvaluatedCandidate {
            params: *params,
            trainer_seed: *seed,
            score,
            cost,
            refined,
        });
        let better = best.as_ref().map(|&(_, _, s)| score > s).unwrap_or(true);
        if better {
            *best = Some((index, artifact, score));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_points_stay_in_the_search_space() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let h = HyperParams::sample(&mut rng);
            assert!(h.learning_rate >= 1e-4 && h.learning_rate <= 1e-2);
            assert!(h.gamma >= 0.9 && h.gamma <= 0.995);
            assert!([16, 32, 64].contains(&h.batch_size));
            assert!([1, 2, 4].contains(&h.train_every));
            assert!(h.per_alpha >= 0.4 && h.per_alpha < 0.8);
            assert!(h.epsilon_decay_steps >= 5_000);
        }
    }

    #[test]
    fn narrowed_points_stay_near_the_anchor() {
        let mut rng = StdRng::seed_from_u64(2);
        let anchor = HyperParams::default_point();
        for _ in 0..100 {
            let h = anchor.narrowed(&mut rng);
            assert!(h.learning_rate >= anchor.learning_rate * 0.4);
            assert!(h.learning_rate <= anchor.learning_rate * 1.6);
            assert_eq!(h.batch_size, anchor.batch_size);
            assert!((h.gamma - anchor.gamma).abs() <= 0.011);
        }
    }

    #[test]
    fn apply_to_overrides_the_right_fields() {
        let base = AgentConfig::small(4);
        let h = HyperParams {
            learning_rate: 0.005,
            gamma: 0.9,
            batch_size: 16,
            train_every: 4,
            target_sync_every: 123,
            per_alpha: 0.7,
            epsilon_decay_steps: 9_999,
        };
        let config = h.apply_to(&base);
        assert_eq!(config.learning_rate, 0.005);
        assert_eq!(config.gamma, 0.9);
        assert_eq!(config.batch_size, 16);
        assert_eq!(config.train_every, 4);
        assert_eq!(config.target_sync_every, 123);
        assert_eq!(config.per_alpha, 0.7);
        assert_eq!(config.epsilon.decay_steps, 9_999);
        // Untouched fields keep the base values.
        assert_eq!(config.hidden, base.hidden);
        assert_eq!(config.state_dim, base.state_dim);
    }

    #[test]
    fn search_finds_a_known_optimum() {
        // Score favours a learning rate near 3e-3 and gamma near 0.99.
        let mut rng = StdRng::seed_from_u64(3);
        let search = HyperSearch::reduced(40, 20);
        let (best, score) = search.run(&mut rng, |h| {
            -((h.learning_rate.log10() - (-2.5)).powi(2)) - (h.gamma - 0.99).powi(2)
        });
        assert!(score > -0.3, "score {score}");
        assert!(
            best.learning_rate > 1e-3 && best.learning_rate < 1e-2,
            "lr {}",
            best.learning_rate
        );
    }

    #[test]
    fn search_with_zero_refined_round_still_works() {
        let mut rng = StdRng::seed_from_u64(4);
        let search = HyperSearch::reduced(5, 0);
        let (_, score) = search.run(&mut rng, |h| h.gamma);
        assert!(score >= 0.9);
    }

    #[test]
    fn paper_budget_is_sixty_initial() {
        assert_eq!(HyperSearch::paper().initial_round, 60);
    }

    #[test]
    fn budget_counts_the_default_point_inside_the_broad_round() {
        // Paper semantics: `initial_round` is the *total* broad-round budget, with the
        // default point as candidate 0 — not one extra candidate on top of it.
        let mut rng = StdRng::seed_from_u64(11);
        let search = HyperSearch::reduced(5, 3);
        let outcome = search.run_parallel(&mut rng, |h, _| ((), h.gamma, 1.0));
        assert_eq!(outcome.candidates.len(), 5 + 3);
        assert_eq!(outcome.candidates[0].params, HyperParams::default_point());
        assert!(outcome.candidates[..5].iter().all(|c| !c.refined));
        assert!(outcome.candidates[5..].iter().all(|c| c.refined));
        let paper = HyperSearch::paper();
        let outcome = paper.run_parallel(&mut StdRng::seed_from_u64(12), |h, _| ((), h.gamma, 0.0));
        assert_eq!(outcome.candidates.len(), 60 + 20);
        assert_eq!(
            outcome.candidates.iter().filter(|c| !c.refined).count(),
            60,
            "the broad round must evaluate exactly 60 candidates including the default"
        );
    }

    #[test]
    fn equal_scores_keep_the_earliest_candidate() {
        let mut rng = StdRng::seed_from_u64(13);
        let search = HyperSearch::reduced(8, 4);
        let outcome = search.run_parallel(&mut rng, |_, _| ((), 1.0, 0.0));
        assert_eq!(outcome.best_index, 0);
        assert_eq!(outcome.best_params, HyperParams::default_point());
    }

    #[test]
    fn cost_accumulates_over_every_candidate_in_order() {
        let mut rng = StdRng::seed_from_u64(14);
        let search = HyperSearch::reduced(7, 5);
        let cost_of = |h: &HyperParams| h.learning_rate * 1e3 + h.per_alpha;
        let outcome = search.run_parallel(&mut rng, |h, _| ((), -h.gamma, cost_of(h)));
        let mut expected = 0.0f64;
        for c in &outcome.candidates {
            expected += cost_of(&c.params);
        }
        assert_eq!(
            outcome.total_cost.to_bits(),
            expected.to_bits(),
            "total cost must be the in-order sum over all candidates"
        );
        assert!(outcome
            .candidates
            .iter()
            .all(|c| c.cost == cost_of(&c.params)));
    }

    #[test]
    fn parallel_search_is_bit_identical_across_thread_counts() {
        let search = HyperSearch::reduced(12, 6);
        let score = |h: &HyperParams, seed: u64| {
            // A deterministic, seed-sensitive score so any RNG-order or reduction-order
            // difference across thread counts would show up.
            -((h.learning_rate.log10() + 3.0).powi(2)) - ((seed % 997) as f64) * 1e-6
        };
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            pool.install(|| {
                let mut rng = StdRng::seed_from_u64(15);
                search.run_parallel(&mut rng, |h, s| ((), score(h, s), h.gamma))
            })
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.best_index, four.best_index);
        assert_eq!(one.best_params, four.best_params);
        assert_eq!(one.best_score.to_bits(), four.best_score.to_bits());
        assert_eq!(one.total_cost.to_bits(), four.total_cost.to_bits());
        assert_eq!(one.candidates, four.candidates);
    }
}
