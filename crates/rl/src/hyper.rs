//! Hyperparameter sets and the two-round random search of the evaluation protocol.
//!
//! Section 4.1 of the paper: for every cross-validation split, a first round of random
//! search draws 60 hyperparameter sets (learning rate, discount factor, network update
//! and synchronisation frequencies, PER batch size, ...), the best agent on the training
//! data seeds a second, narrowed round, and the best agent on the validation set is kept.
//! This module provides the hyperparameter vector, its samplers, and a generic two-round
//! search driver that the evaluation harness feeds with a "train and score this
//! configuration" closure.

use crate::dqn::AgentConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The hyperparameters explored by the random search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperParams {
    /// Learning rate of the optimizer.
    pub learning_rate: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Mini-batch size of the replay sampler.
    pub batch_size: usize,
    /// Environment steps between training updates.
    pub train_every: usize,
    /// Training updates between target-network synchronisations.
    pub target_sync_every: usize,
    /// Prioritisation exponent α of PER.
    pub per_alpha: f64,
    /// Steps over which ε decays to its final value.
    pub epsilon_decay_steps: u64,
}

impl HyperParams {
    /// A reasonable default point in the search space.
    pub fn default_point() -> Self {
        Self {
            learning_rate: 1e-3,
            gamma: 0.99,
            batch_size: 32,
            train_every: 2,
            target_sync_every: 250,
            per_alpha: 0.6,
            epsilon_decay_steps: 20_000,
        }
    }

    /// Draw a random point from the full search space.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let lr_exp = rng.gen_range(-4.0..-2.0); // 1e-4 .. 1e-2
        let gammas = [0.9, 0.95, 0.99, 0.995];
        let batches = [16, 32, 64];
        let train_everys = [1, 2, 4];
        let syncs = [100, 250, 500, 1000];
        Self {
            learning_rate: 10f64.powf(lr_exp),
            gamma: gammas[rng.gen_range(0..gammas.len())],
            batch_size: batches[rng.gen_range(0..batches.len())],
            train_every: train_everys[rng.gen_range(0..train_everys.len())],
            target_sync_every: syncs[rng.gen_range(0..syncs.len())],
            per_alpha: rng.gen_range(0.4..0.8),
            epsilon_decay_steps: rng.gen_range(5_000..50_000),
        }
    }

    /// Draw a point close to `self` (the narrowed second-round search space).
    ///
    /// Continuous dimensions get a symmetric multiplicative jitter (the *inclusive*
    /// range keeps the factor distribution centred on 1); integer dimensions round to
    /// the nearest value instead of truncating toward zero; and the grid dimensions
    /// (`batch_size`, `train_every`) step to an adjacent grid value so the second round
    /// still searches them instead of pinning the broad winner's choice.
    pub fn narrowed<R: Rng + ?Sized>(&self, rng: &mut R) -> Self {
        let jitter = |rng: &mut R, v: f64, rel: f64| -> f64 {
            let factor = 1.0 + rng.gen_range(-rel..=rel);
            v * factor
        };
        // Move one position down, stay, or move one position up on the sampling grid
        // (clamped at the ends), anchored at the grid value closest to `current`.
        let grid_step = |rng: &mut R, grid: &[usize], current: usize| -> usize {
            let anchor = grid
                .iter()
                .enumerate()
                .min_by_key(|(_, &g)| (g as i64 - current as i64).unsigned_abs())
                .map(|(i, _)| i)
                .expect("non-empty grid");
            let step = rng.gen_range(-1i64..=1);
            let pos = (anchor as i64 + step).clamp(0, grid.len() as i64 - 1) as usize;
            grid[pos]
        };
        let learning_rate = jitter(rng, self.learning_rate, 0.5).clamp(1e-5, 1e-1);
        let gamma = (self.gamma + rng.gen_range(-0.01..=0.01)).clamp(0.8, 0.999);
        let batch_size = grid_step(rng, &[16, 32, 64], self.batch_size);
        let train_every = grid_step(rng, &[1, 2, 4], self.train_every);
        let target_sync_every =
            (jitter(rng, self.target_sync_every as f64, 0.5).round() as usize).max(10);
        let per_alpha = jitter(rng, self.per_alpha, 0.2).clamp(0.2, 1.0);
        let epsilon_decay_steps =
            (jitter(rng, self.epsilon_decay_steps as f64, 0.5).round() as u64).max(1_000);
        Self {
            learning_rate,
            gamma,
            batch_size,
            train_every,
            target_sync_every,
            per_alpha,
            epsilon_decay_steps,
        }
    }

    /// Apply these hyperparameters to a base agent configuration.
    pub fn apply_to(&self, base: &AgentConfig) -> AgentConfig {
        let mut config = base.clone();
        config.learning_rate = self.learning_rate;
        config.gamma = self.gamma;
        config.batch_size = self.batch_size;
        config.train_every = self.train_every;
        config.target_sync_every = self.target_sync_every;
        config.per_alpha = self.per_alpha;
        config.epsilon = crate::schedule::EpsilonSchedule::new(
            base.epsilon.start,
            base.epsilon.end,
            self.epsilon_decay_steps,
        );
        config
    }
}

/// One evaluated configuration in the search trace, in evaluation order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedCandidate {
    /// The hyperparameters that were evaluated.
    pub params: HyperParams,
    /// The pre-drawn seed material handed to the evaluation closure.
    pub trainer_seed: u64,
    /// The candidate's score (higher is better).
    pub score: f64,
    /// The cost charged for evaluating this candidate (e.g. training node-hours).
    pub cost: f64,
    /// Whether the candidate belongs to the narrowed second round.
    pub refined: bool,
}

/// The result of a two-round search: the winning artifact plus the full candidate trace.
#[derive(Debug, Clone)]
pub struct SearchOutcome<P> {
    /// The artifact (e.g. trained policy) returned by the winning candidate.
    pub best: P,
    /// The winning hyperparameters.
    pub best_params: HyperParams,
    /// The winning score.
    pub best_score: f64,
    /// Index of the winner in [`SearchOutcome::candidates`].
    pub best_index: usize,
    /// Sum of every candidate's cost, accumulated in candidate order (the whole
    /// search is charged, not just the winner).
    pub total_cost: f64,
    /// Every evaluated candidate, in evaluation order (broad round first).
    pub candidates: Vec<EvaluatedCandidate>,
}

/// Deterministic "strictly better" for score reductions (higher wins): finite scores
/// always beat non-finite ones, a non-finite score never replaces the incumbent (so a
/// NaN cannot poison every later comparison), and ties keep the incumbent (the earliest
/// candidate).
pub fn better_score(new: f64, incumbent: f64) -> bool {
    match (new.is_finite(), incumbent.is_finite()) {
        (true, true) => new > incumbent,
        (true, false) => true,
        (false, _) => false,
    }
}

/// A candidate whose training can be advanced in budget increments and resumed, as the
/// successive-halving driver requires. The contract that keeps halving bit-identical to
/// straight-through training: calling [`Trainable::train_to`] with an increasing
/// sequence of budgets must leave the candidate in exactly the state a single
/// `train_to(final_budget)` call would have produced.
pub trait Trainable {
    /// The artifact the winning candidate is converted into (e.g. a trained policy).
    type Artifact;

    /// Advance training to the *cumulative* `budget` (in whatever unit the
    /// implementation measures training — the evaluation harness uses environment
    /// steps; `u64::MAX` means "train to completion"). Budgets at or below the amount
    /// already trained are a no-op. Returns the cost charged for the increment; a
    /// returned cost of exactly `0.0` must mean the candidate state did not change
    /// (the driver then reuses the previous rung's score instead of re-scoring).
    fn train_to(&mut self, budget: u64) -> f64;

    /// Cumulative budget units this candidate has actually trained so far (same unit
    /// as [`Trainable::train_to`] budgets). After the first rung, the successive-
    /// halving driver recalibrates the remaining rung budgets from the **maximum**
    /// observed value across the round's candidates, so the schedule tracks realised
    /// training lengths (e.g. episode-boundary overshoot on skewed fleets) instead of
    /// the caller's a-priori full-budget estimate.
    fn trained_units(&self) -> u64;

    /// Score the current policy (higher is better). Non-finite scores rank last.
    fn score(&self) -> f64;

    /// Finish the candidate, converting it into its artifact.
    fn into_artifact(self) -> Self::Artifact;
}

/// One rung of a successive-halving round: which candidates entered it, the cumulative
/// budget they were trained to, and the scores/costs the rung produced (aligned with
/// `survivors`, which is kept in candidate order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RungTrace {
    /// Whether this rung belongs to the narrowed second round.
    pub refined: bool,
    /// Rung index within its round (0 = first rung, every candidate alive).
    pub rung: usize,
    /// Cumulative training budget of this rung (`u64::MAX` = train to completion).
    pub budget: u64,
    /// Global candidate indices that entered this rung, in candidate order.
    pub survivors: Vec<usize>,
    /// Score of each survivor after training to this rung's budget.
    pub scores: Vec<f64>,
    /// Cost charged to each survivor for this rung's training increment.
    pub costs: Vec<f64>,
}

/// The result of a successive-halving search: the usual [`SearchOutcome`] plus the
/// rung-by-rung elimination trace.
#[derive(Debug, Clone)]
pub struct HalvingOutcome<P> {
    /// Winner, candidate trace and total charged cost, as in the exhaustive driver.
    /// Each candidate's recorded `score` is from the last rung it reached and its
    /// `cost` is the sum of its per-rung increments.
    pub search: SearchOutcome<P>,
    /// Every rung of both rounds, in execution order (broad round first).
    pub rungs: Vec<RungTrace>,
}

/// A two-round random hyperparameter search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperSearch {
    /// Total configurations evaluated in the broad first round, *including* the
    /// default point (60 in the paper).
    pub initial_round: usize,
    /// Number of configurations drawn in the narrowed second round.
    pub refined_round: usize,
}

impl HyperSearch {
    /// The paper's budget: 60 random configurations plus a narrowed second round.
    pub fn paper() -> Self {
        Self {
            initial_round: 60,
            refined_round: 20,
        }
    }

    /// A reduced budget for tests and laptop-scale runs.
    pub fn reduced(initial: usize, refined: usize) -> Self {
        Self {
            initial_round: initial.max(1),
            refined_round: refined,
        }
    }

    /// Run the search with a parallel fan-out over the candidates of each round.
    ///
    /// Every candidate's parameters and per-candidate seed material are pre-drawn from
    /// `rng` up front (in candidate order, parameters before seed), so the evaluation
    /// closure never touches the shared RNG and the candidates of a round are
    /// embarrassingly parallel: each round is one plain indexed fan-out over the
    /// persistent work-stealing pool, which also balances the search against whatever
    /// else is running (e.g. the evaluator trains it concurrently with the SC20-RF
    /// threshold scan, and every candidate's rollouts nest inside it) without any
    /// per-level thread budgeting. `evaluate` maps a candidate and its pre-drawn seed
    /// to `(artifact, score, cost)`; higher scores win, ties keep the earliest
    /// candidate, and costs are accumulated in candidate order — the outcome is
    /// **bit-identical at any thread count** and identical to a serial evaluation.
    ///
    /// The default point counts as the first of the `initial_round` broad candidates,
    /// so exactly `initial_round + refined_round` configurations are evaluated.
    pub fn run_parallel<P, R, F>(&self, rng: &mut R, evaluate: F) -> SearchOutcome<P>
    where
        P: Send,
        R: Rng + ?Sized,
        F: Fn(&HyperParams, u64) -> (P, f64, f64) + Sync,
    {
        let initial = self.initial_round.max(1);
        let mut candidates = Vec::with_capacity(initial + self.refined_round);
        let mut total_cost = 0.0f64;
        let mut best: Option<(usize, P, f64)> = None;

        // Broad round: the default point plus `initial - 1` samples from the full space.
        let mut round: Vec<(HyperParams, u64)> = Vec::with_capacity(initial);
        let default = HyperParams::default_point();
        round.push((default, rng.next_u64()));
        for _ in 1..initial {
            let params = HyperParams::sample(rng);
            round.push((params, rng.next_u64()));
        }
        reduce_round(
            &round,
            false,
            &evaluate,
            &mut candidates,
            &mut total_cost,
            &mut best,
        );

        // Narrowed round, anchored at the broad round's winner.
        let anchor = best
            .as_ref()
            .map(|&(i, _, _)| candidates[i].params)
            .expect("the broad round evaluated at least one candidate");
        let mut round: Vec<(HyperParams, u64)> = Vec::with_capacity(self.refined_round);
        for _ in 0..self.refined_round {
            let params = anchor.narrowed(rng);
            round.push((params, rng.next_u64()));
        }
        reduce_round(
            &round,
            true,
            &evaluate,
            &mut candidates,
            &mut total_cost,
            &mut best,
        );

        let (best_index, best_artifact, best_score) = best.expect("at least one candidate");
        SearchOutcome {
            best: best_artifact,
            best_params: candidates[best_index].params,
            best_score,
            best_index,
            total_cost,
            candidates,
        }
    }

    /// Run the two-round search with a **successive-halving** schedule inside each
    /// round, so hopeless candidates stop training early.
    ///
    /// Candidate parameters and per-candidate seed material are pre-drawn from `rng`
    /// exactly as in [`HyperSearch::run_parallel`] (same draws, same order), so the two
    /// drivers explore identical candidate sets. Each round then runs
    /// `ceil(log2(n)) + 1` rungs: every alive candidate is trained to the rung's
    /// cumulative budget (doubling per rung; the last rung is `u64::MAX`, i.e. trained
    /// to completion) and scored, and the top half —
    /// `ceil(alive / 2)`, ranked by score with non-finite scores last and ties keeping
    /// the earliest candidate — survives to the next rung. Training happens in parallel
    /// over the work-stealing pool, but eliminations, cost accumulation and every other
    /// reduction happen in candidate order, so the outcome is **bit-identical at any
    /// thread count**. The winner of each round is its last survivor, trained to
    /// completion; the overall winner is whichever round winner scores higher (broad
    /// round kept on ties).
    ///
    /// `full_budget` — the caller's estimate of a full training run — only scales
    /// **rung 0** (`full_budget >> (rungs - 1)`). From rung 1 on, the schedule is
    /// calibrated from the budget units the rung-0 candidates *actually* trained
    /// ([`Trainable::trained_units`], maximum across the round), so realised episode
    /// lengths — not the a-priori estimate — set the elimination pace.
    ///
    /// The charged `total_cost` is the in-order sum of every rung increment actually
    /// trained — the whole point: most candidates only ever pay the early, cheap rungs.
    pub fn run_halving<C, R, F>(
        &self,
        rng: &mut R,
        full_budget: u64,
        init: F,
    ) -> HalvingOutcome<C::Artifact>
    where
        C: Trainable + Send,
        C::Artifact: Send,
        R: Rng + ?Sized,
        F: Fn(&HyperParams, u64) -> C + Sync,
    {
        let initial = self.initial_round.max(1);
        let mut candidates = Vec::with_capacity(initial + self.refined_round);
        let mut rungs = Vec::new();
        let mut total_cost = 0.0f64;

        // Broad round: identical pre-draws to `run_parallel`.
        let mut round: Vec<(HyperParams, u64)> = Vec::with_capacity(initial);
        round.push((HyperParams::default_point(), rng.next_u64()));
        for _ in 1..initial {
            let params = HyperParams::sample(rng);
            round.push((params, rng.next_u64()));
        }
        let broad = halve_round(
            &round,
            false,
            full_budget,
            &init,
            &mut candidates,
            &mut rungs,
            &mut total_cost,
        );

        // Narrowed round, anchored at the broad round's winner.
        let anchor = candidates[broad.0].params;
        let mut round: Vec<(HyperParams, u64)> = Vec::with_capacity(self.refined_round);
        for _ in 0..self.refined_round {
            let params = anchor.narrowed(rng);
            round.push((params, rng.next_u64()));
        }
        let refined = if round.is_empty() {
            None
        } else {
            Some(halve_round(
                &round,
                true,
                full_budget,
                &init,
                &mut candidates,
                &mut rungs,
                &mut total_cost,
            ))
        };

        let (best_index, best_artifact, best_score) = match refined {
            Some(refined) if better_score(refined.2, broad.2) => refined,
            _ => broad,
        };
        HalvingOutcome {
            search: SearchOutcome {
                best: best_artifact,
                best_params: candidates[best_index].params,
                best_score,
                best_index,
                total_cost,
                candidates,
            },
            rungs,
        }
    }

    /// Run the search with a score-only closure (higher is better) and return the best
    /// hyperparameters together with their score. Convenience wrapper over
    /// [`HyperSearch::run_parallel`] with no artifact and no cost accounting.
    ///
    /// The search is deterministic given `rng` and a deterministic scoring closure.
    pub fn run<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        score: impl Fn(&HyperParams) -> f64 + Sync,
    ) -> (HyperParams, f64) {
        let outcome = self.run_parallel(rng, |params, _seed| ((), score(params), 0.0));
        (outcome.best_params, outcome.best_score)
    }
}

/// Evaluate one pre-drawn round as a plain indexed fan-out over the work-stealing pool
/// and fold it into the running search state in candidate order (deterministic best
/// selection and cost accumulation). Results land in candidate-index slots, so the
/// fold order never depends on which worker trained which candidate.
fn reduce_round<P, F>(
    round: &[(HyperParams, u64)],
    refined: bool,
    evaluate: &F,
    candidates: &mut Vec<EvaluatedCandidate>,
    total_cost: &mut f64,
    best: &mut Option<(usize, P, f64)>,
) where
    P: Send,
    F: Fn(&HyperParams, u64) -> (P, f64, f64) + Sync,
{
    let evaluated: Vec<(P, f64, f64)> =
        rayon::execute_indexed(round.len(), |i| evaluate(&round[i].0, round[i].1));
    for ((params, seed), (artifact, score, cost)) in round.iter().zip(evaluated) {
        let index = candidates.len();
        *total_cost += cost;
        candidates.push(EvaluatedCandidate {
            params: *params,
            trainer_seed: *seed,
            score,
            cost,
            refined,
        });
        let better = best
            .as_ref()
            .map(|&(_, _, s)| better_score(score, s))
            .unwrap_or(true);
        if better {
            *best = Some((index, artifact, score));
        }
    }
}

/// Run one pre-drawn round through the successive-halving rung schedule. Appends one
/// [`EvaluatedCandidate`] per candidate (score = last rung reached, cost = sum of its
/// rung increments) and one [`RungTrace`] per rung, and returns the round winner as
/// `(global candidate index, artifact, final score)`.
///
/// Within a rung, training and scoring fan out over the pool via `execute_owned`, which
/// returns results in input order; everything else — cost accumulation, the score
/// ranking, survivor selection, dropping eliminated candidates — walks the candidates
/// in candidate order, so the round is bit-identical at any thread count.
fn halve_round<C, F>(
    round: &[(HyperParams, u64)],
    refined: bool,
    full_budget: u64,
    init: &F,
    candidates: &mut Vec<EvaluatedCandidate>,
    rungs: &mut Vec<RungTrace>,
    total_cost: &mut f64,
) -> (usize, C::Artifact, f64)
where
    C: Trainable + Send,
    C::Artifact: Send,
    F: Fn(&HyperParams, u64) -> C + Sync,
{
    let n = round.len();
    let base_index = candidates.len();
    for (params, seed) in round {
        candidates.push(EvaluatedCandidate {
            params: *params,
            trainer_seed: *seed,
            score: f64::NEG_INFINITY,
            cost: 0.0,
            refined,
        });
    }

    // `ceil(log2(n)) + 1` rungs halve the field to a single survivor; the last rung is
    // always "train to completion" so the round winner is a fully trained candidate.
    let n_rungs = n.next_power_of_two().trailing_zeros() as usize + 1;
    let mut alive: Vec<usize> = (0..n).collect();
    let mut states: Vec<Option<C>> = (0..n).map(|_| None).collect();
    // Only rung 0 derives from the caller's a-priori estimate; after it, `full` is
    // recalibrated from the units the rung-0 candidates actually trained.
    let mut full = full_budget;
    for rung in 0..n_rungs {
        let budget = if rung == n_rungs - 1 {
            u64::MAX
        } else {
            (full >> (n_rungs - 1 - rung)).max(1)
        };
        // Move the alive sessions through the pool: init on the first rung, then train
        // to the rung budget and score. `execute_owned` keeps results in input order.
        // A survivor whose training increment was a no-op (zero cost — e.g. its episode
        // budget ran out on an earlier rung) keeps its previous score instead of paying
        // another full selection replay: a zero-cost `train_to` leaves the candidate
        // unchanged, so re-scoring could only recompute the identical value.
        let prev_scores: Vec<f64> = alive
            .iter()
            .map(|&i| candidates[base_index + i].score)
            .collect();
        let work: Vec<(usize, usize, Option<C>)> = alive
            .iter()
            .enumerate()
            .map(|(pos, &i)| (pos, i, states[i].take()))
            .collect();
        let trained: Vec<(usize, C, f64, f64)> = rayon::execute_owned(work, |(pos, i, state)| {
            let mut candidate = state.unwrap_or_else(|| init(&round[i].0, round[i].1));
            let cost = candidate.train_to(budget);
            let score = if rung > 0 && cost == 0.0 {
                prev_scores[pos]
            } else {
                candidate.score()
            };
            (i, candidate, cost, score)
        });
        let mut trace = RungTrace {
            refined,
            rung,
            budget,
            survivors: alive.iter().map(|&i| base_index + i).collect(),
            scores: Vec::with_capacity(alive.len()),
            costs: Vec::with_capacity(alive.len()),
        };
        for (i, candidate, cost, score) in trained {
            *total_cost += cost;
            let entry = &mut candidates[base_index + i];
            entry.cost += cost;
            entry.score = score;
            trace.scores.push(score);
            trace.costs.push(cost);
            states[i] = Some(candidate);
        }
        rungs.push(trace);
        if rung == 0 && n_rungs > 1 {
            // Calibrate the remaining rung budgets from the units rung 0 actually
            // trained: `train_to` implementations stop at natural boundaries (e.g.
            // whole episodes), so the realised amount can overshoot the request, and
            // the caller's estimate can be off on skewed fleets. Anchoring the
            // schedule at the *maximum* observed amount keeps every survivor's next
            // target above anything already trained (no silently-empty rungs) and the
            // doubling progression intact. The maximum over candidates is order-free,
            // so the recalibrated schedule is bit-identical at any thread count.
            let observed = alive
                .iter()
                .filter_map(|&i| states[i].as_ref().map(Trainable::trained_units))
                .max()
                .unwrap_or(0)
                .max(1);
            let shift = (n_rungs - 1).min(63) as u32;
            full = observed.saturating_mul(1u64 << shift);
        }
        if alive.len() <= 1 {
            break;
        }

        // Keep the top half: rank by score (descending, non-finite last, ties by
        // candidate index), truncate, then restore candidate order for the next rung.
        let keep = alive.len().div_ceil(2);
        let rank_of = |i: usize| -> f64 {
            let s = candidates[base_index + i].score;
            if s.is_finite() {
                s
            } else {
                f64::NEG_INFINITY
            }
        };
        let mut ranked = alive.clone();
        ranked.sort_unstable_by(|&a, &b| rank_of(b).total_cmp(&rank_of(a)).then(a.cmp(&b)));
        ranked.truncate(keep);
        ranked.sort_unstable();
        for &i in &alive {
            if !ranked.contains(&i) {
                states[i] = None;
            }
        }
        alive = ranked;
    }

    let winner = alive[0];
    let artifact = states[winner]
        .take()
        .expect("the round winner's state is alive")
        .into_artifact();
    (
        base_index + winner,
        artifact,
        candidates[base_index + winner].score,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_points_stay_in_the_search_space() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let h = HyperParams::sample(&mut rng);
            assert!(h.learning_rate >= 1e-4 && h.learning_rate <= 1e-2);
            assert!(h.gamma >= 0.9 && h.gamma <= 0.995);
            assert!([16, 32, 64].contains(&h.batch_size));
            assert!([1, 2, 4].contains(&h.train_every));
            assert!(h.per_alpha >= 0.4 && h.per_alpha < 0.8);
            assert!(h.epsilon_decay_steps >= 5_000);
        }
    }

    #[test]
    fn narrowed_points_stay_near_the_anchor() {
        let mut rng = StdRng::seed_from_u64(2);
        let anchor = HyperParams::default_point();
        for _ in 0..100 {
            let h = anchor.narrowed(&mut rng);
            assert!(h.learning_rate >= anchor.learning_rate * 0.4);
            assert!(h.learning_rate <= anchor.learning_rate * 1.6);
            // Grid dimensions stay on the grid, at most one position from the anchor.
            assert!([16, 32, 64].contains(&h.batch_size));
            assert!([1, 2, 4].contains(&h.train_every));
            assert!((h.gamma - anchor.gamma).abs() <= 0.011);
        }
    }

    #[test]
    fn narrowed_grid_dimensions_are_searched_not_pinned() {
        // Regression: round 2 used to copy `batch_size`/`train_every` verbatim, turning
        // them into dead search dimensions. Adjacent grid values must now appear.
        let mut rng = StdRng::seed_from_u64(21);
        let anchor = HyperParams::default_point(); // batch 32, train_every 2
        let mut batches = std::collections::BTreeSet::new();
        let mut train_everys = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let h = anchor.narrowed(&mut rng);
            batches.insert(h.batch_size);
            train_everys.insert(h.train_every);
        }
        assert_eq!(batches.into_iter().collect::<Vec<_>>(), vec![16, 32, 64]);
        assert_eq!(train_everys.into_iter().collect::<Vec<_>>(), vec![1, 2, 4]);
    }

    #[test]
    fn narrowed_integer_knobs_round_instead_of_truncating() {
        // Regression: the multiplicative jitter used to truncate toward zero via `as`,
        // biasing `target_sync_every`/`epsilon_decay_steps` downward. With rounding,
        // the mean over many draws must sit near the anchor (truncation sat ~0.5 below
        // per draw and, worse, `0.999... as usize` floors). Jitter is ±50% uniform, so
        // the sample mean over 4000 draws is well within 2% of the anchor.
        let mut rng = StdRng::seed_from_u64(22);
        let anchor = HyperParams::default_point();
        let n = 4_000;
        let mut sync_sum = 0.0f64;
        let mut decay_sum = 0.0f64;
        for _ in 0..n {
            let h = anchor.narrowed(&mut rng);
            sync_sum += h.target_sync_every as f64;
            decay_sum += h.epsilon_decay_steps as f64;
        }
        let sync_mean = sync_sum / n as f64;
        let decay_mean = decay_sum / n as f64;
        assert!(
            (sync_mean - anchor.target_sync_every as f64).abs()
                < 0.02 * anchor.target_sync_every as f64,
            "target_sync_every mean {sync_mean} drifted from {}",
            anchor.target_sync_every
        );
        assert!(
            (decay_mean - anchor.epsilon_decay_steps as f64).abs()
                < 0.02 * anchor.epsilon_decay_steps as f64,
            "epsilon_decay_steps mean {decay_mean} drifted from {}",
            anchor.epsilon_decay_steps
        );
    }

    #[test]
    fn apply_to_overrides_the_right_fields() {
        let base = AgentConfig::small(4);
        let h = HyperParams {
            learning_rate: 0.005,
            gamma: 0.9,
            batch_size: 16,
            train_every: 4,
            target_sync_every: 123,
            per_alpha: 0.7,
            epsilon_decay_steps: 9_999,
        };
        let config = h.apply_to(&base);
        assert_eq!(config.learning_rate, 0.005);
        assert_eq!(config.gamma, 0.9);
        assert_eq!(config.batch_size, 16);
        assert_eq!(config.train_every, 4);
        assert_eq!(config.target_sync_every, 123);
        assert_eq!(config.per_alpha, 0.7);
        assert_eq!(config.epsilon.decay_steps, 9_999);
        // Untouched fields keep the base values.
        assert_eq!(config.hidden, base.hidden);
        assert_eq!(config.state_dim, base.state_dim);
    }

    #[test]
    fn search_finds_a_known_optimum() {
        // Score favours a learning rate near 3e-3 and gamma near 0.99.
        let mut rng = StdRng::seed_from_u64(3);
        let search = HyperSearch::reduced(40, 20);
        let (best, score) = search.run(&mut rng, |h| {
            -((h.learning_rate.log10() - (-2.5)).powi(2)) - (h.gamma - 0.99).powi(2)
        });
        assert!(score > -0.3, "score {score}");
        assert!(
            best.learning_rate > 1e-3 && best.learning_rate < 1e-2,
            "lr {}",
            best.learning_rate
        );
    }

    #[test]
    fn search_with_zero_refined_round_still_works() {
        let mut rng = StdRng::seed_from_u64(4);
        let search = HyperSearch::reduced(5, 0);
        let (_, score) = search.run(&mut rng, |h| h.gamma);
        assert!(score >= 0.9);
    }

    #[test]
    fn paper_budget_is_sixty_initial() {
        assert_eq!(HyperSearch::paper().initial_round, 60);
    }

    #[test]
    fn budget_counts_the_default_point_inside_the_broad_round() {
        // Paper semantics: `initial_round` is the *total* broad-round budget, with the
        // default point as candidate 0 — not one extra candidate on top of it.
        let mut rng = StdRng::seed_from_u64(11);
        let search = HyperSearch::reduced(5, 3);
        let outcome = search.run_parallel(&mut rng, |h, _| ((), h.gamma, 1.0));
        assert_eq!(outcome.candidates.len(), 5 + 3);
        assert_eq!(outcome.candidates[0].params, HyperParams::default_point());
        assert!(outcome.candidates[..5].iter().all(|c| !c.refined));
        assert!(outcome.candidates[5..].iter().all(|c| c.refined));
        let paper = HyperSearch::paper();
        let outcome = paper.run_parallel(&mut StdRng::seed_from_u64(12), |h, _| ((), h.gamma, 0.0));
        assert_eq!(outcome.candidates.len(), 60 + 20);
        assert_eq!(
            outcome.candidates.iter().filter(|c| !c.refined).count(),
            60,
            "the broad round must evaluate exactly 60 candidates including the default"
        );
    }

    #[test]
    fn equal_scores_keep_the_earliest_candidate() {
        let mut rng = StdRng::seed_from_u64(13);
        let search = HyperSearch::reduced(8, 4);
        let outcome = search.run_parallel(&mut rng, |_, _| ((), 1.0, 0.0));
        assert_eq!(outcome.best_index, 0);
        assert_eq!(outcome.best_params, HyperParams::default_point());
    }

    #[test]
    fn cost_accumulates_over_every_candidate_in_order() {
        let mut rng = StdRng::seed_from_u64(14);
        let search = HyperSearch::reduced(7, 5);
        let cost_of = |h: &HyperParams| h.learning_rate * 1e3 + h.per_alpha;
        let outcome = search.run_parallel(&mut rng, |h, _| ((), -h.gamma, cost_of(h)));
        let mut expected = 0.0f64;
        for c in &outcome.candidates {
            expected += cost_of(&c.params);
        }
        assert_eq!(
            outcome.total_cost.to_bits(),
            expected.to_bits(),
            "total cost must be the in-order sum over all candidates"
        );
        assert!(outcome
            .candidates
            .iter()
            .all(|c| c.cost == cost_of(&c.params)));
    }

    #[test]
    fn non_finite_scores_never_win_the_reduction() {
        // Regression: `score > s` silently mishandled NaN — a NaN first candidate became
        // an unbeatable incumbent. Finite scores must always beat non-finite ones.
        assert!(!better_score(f64::NAN, 0.0));
        assert!(!better_score(f64::INFINITY, 0.0));
        assert!(better_score(0.0, f64::NAN));
        assert!(!better_score(f64::NAN, f64::NAN));
        assert!(!better_score(1.0, 1.0), "ties keep the incumbent");

        let mut rng = StdRng::seed_from_u64(31);
        let search = HyperSearch::reduced(6, 3);
        // The default point (candidate 0) scores NaN; everything else is finite.
        let outcome = search.run_parallel(&mut rng, |h, _| {
            if h.learning_rate == HyperParams::default_point().learning_rate {
                ((), f64::NAN, 0.0)
            } else {
                ((), h.gamma, 0.0)
            }
        });
        assert!(
            outcome.best_score.is_finite(),
            "a NaN score must never be selected as the winner"
        );
        assert_ne!(outcome.best_index, 0);
    }

    /// A synthetic resumable candidate for driver tests: "training" advances a unit
    /// counter toward the cumulative budget (capped at `cap` = full training), the cost
    /// is the number of units actually trained, and the score is a deterministic
    /// function of the parameters, the seed and the trained amount.
    struct FakeCandidate {
        lr: f64,
        seed: u64,
        trained: u64,
        cap: u64,
    }

    impl FakeCandidate {
        fn new(params: &HyperParams, seed: u64, cap: u64) -> Self {
            Self {
                lr: params.learning_rate,
                seed,
                trained: 0,
                cap,
            }
        }
    }

    impl Trainable for FakeCandidate {
        type Artifact = (u64, u64);

        fn train_to(&mut self, budget: u64) -> f64 {
            let target = budget.min(self.cap);
            let added = target.saturating_sub(self.trained);
            self.trained = self.trained.max(target);
            added as f64
        }

        fn trained_units(&self) -> u64 {
            self.trained
        }

        fn score(&self) -> f64 {
            -((self.lr.log10() + 3.0).powi(2)) + (self.trained as f64 / self.cap as f64) * 0.05
                - ((self.seed % 97) as f64) * 1e-6
        }

        fn into_artifact(self) -> (u64, u64) {
            (self.seed, self.trained)
        }
    }

    const FAKE_CAP: u64 = 1 << 10;

    #[test]
    fn halving_explores_the_same_candidates_but_trains_strictly_less() {
        let search = HyperSearch::reduced(12, 6);
        let halving = search.run_halving(&mut StdRng::seed_from_u64(41), FAKE_CAP, |h, s| {
            FakeCandidate::new(h, s, FAKE_CAP)
        });
        let exhaustive = search.run_parallel(&mut StdRng::seed_from_u64(41), |h, s| {
            let mut c = FakeCandidate::new(h, s, FAKE_CAP);
            let cost = c.train_to(u64::MAX);
            let score = c.score();
            (c.into_artifact(), score, cost)
        });
        // Same pre-drawn candidate sets (the whole point of sharing the draw order).
        assert_eq!(halving.search.candidates.len(), exhaustive.candidates.len());
        for (a, b) in halving.search.candidates.iter().zip(&exhaustive.candidates) {
            assert_eq!(a.params, b.params);
            assert_eq!(a.trainer_seed, b.trainer_seed);
        }
        // The quality ordering is training-invariant here, so both pick the same winner,
        // trained to completion — but halving charges strictly less total training.
        assert_eq!(halving.search.best_index, exhaustive.best_index);
        assert_eq!(halving.search.best.0, exhaustive.best.0);
        assert_eq!(
            halving.search.best.1, FAKE_CAP,
            "winner trained to completion"
        );
        assert!(
            halving.search.total_cost < exhaustive.total_cost,
            "halving {} must train strictly fewer units than exhaustive {}",
            halving.search.total_cost,
            exhaustive.total_cost
        );
        // Charged cost is exactly the in-order sum of the per-rung increments.
        let rung_sum: f64 = halving.rungs.iter().flat_map(|r| r.costs.iter()).sum();
        assert_eq!(halving.search.total_cost.to_bits(), rung_sum.to_bits());
    }

    #[test]
    fn halving_rungs_halve_survivors_and_double_budgets() {
        let search = HyperSearch::reduced(12, 5);
        let outcome = search.run_halving(&mut StdRng::seed_from_u64(42), FAKE_CAP, |h, s| {
            FakeCandidate::new(h, s, FAKE_CAP)
        });
        let broad: Vec<&RungTrace> = outcome.rungs.iter().filter(|r| !r.refined).collect();
        let refined: Vec<&RungTrace> = outcome.rungs.iter().filter(|r| r.refined).collect();
        let sizes =
            |rungs: &[&RungTrace]| rungs.iter().map(|r| r.survivors.len()).collect::<Vec<_>>();
        assert_eq!(sizes(&broad), vec![12, 6, 3, 2, 1]);
        assert_eq!(sizes(&refined), vec![5, 3, 2, 1]);
        for rungs in [&broad, &refined] {
            for pair in rungs.windows(2) {
                if pair[1].budget != u64::MAX {
                    assert_eq!(
                        pair[1].budget,
                        pair[0].budget * 2,
                        "budgets double per rung"
                    );
                }
                // Survivors are a subset of the previous rung, kept in candidate order.
                assert!(pair[1]
                    .survivors
                    .iter()
                    .all(|i| pair[0].survivors.contains(i)));
                assert!(pair[1].survivors.windows(2).all(|w| w[0] < w[1]));
            }
            assert_eq!(rungs.last().unwrap().budget, u64::MAX);
        }
        // Refined candidates index past the broad round.
        assert!(refined[0].survivors.iter().all(|&i| i >= 12));
    }

    /// A candidate whose training overshoots the requested budget by a fixed amount,
    /// the way a real trainer that only stops at episode boundaries does.
    struct OvershootCandidate {
        inner: FakeCandidate,
        overshoot: u64,
    }

    impl Trainable for OvershootCandidate {
        type Artifact = (u64, u64);
        fn train_to(&mut self, budget: u64) -> f64 {
            if budget <= self.inner.trained {
                return 0.0;
            }
            let target = budget.saturating_add(self.overshoot).min(self.inner.cap);
            let added = target.saturating_sub(self.inner.trained);
            self.inner.trained = self.inner.trained.max(target);
            added as f64
        }
        fn trained_units(&self) -> u64 {
            self.inner.trained
        }
        fn score(&self) -> f64 {
            self.inner.score()
        }
        fn into_artifact(self) -> (u64, u64) {
            self.inner.into_artifact()
        }
    }

    #[test]
    fn rung_budgets_recalibrate_from_observed_rung_zero_training() {
        // Rung 0 derives from the caller's estimate; the later rungs must derive from
        // what rung 0 *actually* trained. Every candidate here overshoots each request
        // by 13 units (episode-boundary style), so with 8 candidates (4 rungs, rung-0
        // budget = FAKE_CAP >> 3 = 128) the observed maximum is 141 and rung 1 must be
        // 2 × 141 = 282 — not the a-priori 256.
        let search = HyperSearch::reduced(8, 0);
        let outcome = search.run_halving(&mut StdRng::seed_from_u64(47), FAKE_CAP, |h, s| {
            OvershootCandidate {
                inner: FakeCandidate::new(h, s, 1 << 20),
                overshoot: 13,
            }
        });
        let budgets: Vec<u64> = outcome.rungs.iter().map(|r| r.budget).collect();
        assert_eq!(
            budgets[0],
            FAKE_CAP >> 3,
            "rung 0 uses the a-priori estimate"
        );
        assert_eq!(
            budgets[1],
            ((FAKE_CAP >> 3) + 13) * 2,
            "rung 1 must be twice the observed rung-0 maximum"
        );
        assert_eq!(budgets[2], budgets[1] * 2, "doubling continues from there");
        assert_eq!(*budgets.last().unwrap(), u64::MAX);
    }

    #[test]
    fn halving_is_bit_identical_across_thread_counts() {
        let search = HyperSearch::reduced(11, 4);
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            pool.install(|| {
                search.run_halving(&mut StdRng::seed_from_u64(43), FAKE_CAP, |h, s| {
                    FakeCandidate::new(h, s, FAKE_CAP)
                })
            })
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.search.best_index, four.search.best_index);
        assert_eq!(one.search.best_params, four.search.best_params);
        assert_eq!(
            one.search.best_score.to_bits(),
            four.search.best_score.to_bits()
        );
        assert_eq!(
            one.search.total_cost.to_bits(),
            four.search.total_cost.to_bits()
        );
        assert_eq!(one.search.candidates, four.search.candidates);
        assert_eq!(
            one.rungs, four.rungs,
            "rung traces diverged across thread counts"
        );
    }

    #[test]
    fn exhausted_candidates_are_not_rescored_on_later_rungs() {
        // Candidates whose budget is exhausted (zero-cost increments) must reuse their
        // previous score instead of paying another selection replay per rung.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        struct CountingCandidate {
            inner: FakeCandidate,
            score_calls: Arc<AtomicUsize>,
        }
        impl Trainable for CountingCandidate {
            type Artifact = (u64, u64);
            fn train_to(&mut self, budget: u64) -> f64 {
                self.inner.train_to(budget)
            }
            fn trained_units(&self) -> u64 {
                self.inner.trained_units()
            }
            fn score(&self) -> f64 {
                self.score_calls.fetch_add(1, Ordering::Relaxed);
                self.inner.score()
            }
            fn into_artifact(self) -> (u64, u64) {
                self.inner.into_artifact()
            }
        }
        let calls = Arc::new(AtomicUsize::new(0));
        let search = HyperSearch::reduced(8, 0);
        // Every candidate saturates its tiny cap at rung 0 (the rung-0 budget is
        // already above it), so rungs 1..3 train nothing and must not re-score.
        let cap = 4;
        let outcome = search.run_halving(&mut StdRng::seed_from_u64(46), FAKE_CAP, {
            let calls = Arc::clone(&calls);
            move |h, s| CountingCandidate {
                inner: FakeCandidate::new(h, s, cap),
                score_calls: Arc::clone(&calls),
            }
        });
        assert_eq!(outcome.rungs.len(), 4, "8 -> 4 -> 2 -> 1");
        assert_eq!(
            calls.load(Ordering::Relaxed),
            8,
            "each candidate is scored exactly once (at rung 0)"
        );
        // The reused scores are recorded unchanged in the later rung traces.
        for rung in &outcome.rungs[1..] {
            assert!(rung.costs.iter().all(|&c| c == 0.0));
            for (survivor, score) in rung.survivors.iter().zip(&rung.scores) {
                assert_eq!(
                    outcome.search.candidates[*survivor].score.to_bits(),
                    score.to_bits()
                );
            }
        }
    }

    #[test]
    fn halving_handles_degenerate_round_sizes() {
        // One broad candidate, no refined round: a single "train to completion" rung.
        let search = HyperSearch::reduced(1, 0);
        let outcome = search.run_halving(&mut StdRng::seed_from_u64(44), FAKE_CAP, |h, s| {
            FakeCandidate::new(h, s, FAKE_CAP)
        });
        assert_eq!(outcome.search.candidates.len(), 1);
        assert_eq!(outcome.rungs.len(), 1);
        assert_eq!(outcome.rungs[0].budget, u64::MAX);
        assert_eq!(outcome.search.best.1, FAKE_CAP);
        assert_eq!(outcome.search.best_index, 0);
    }

    #[test]
    fn halving_ranks_non_finite_scores_last() {
        // Candidates whose seed is even score NaN; they must be eliminated first and
        // can never win, whatever their parameters.
        struct NanCandidate(FakeCandidate);
        impl Trainable for NanCandidate {
            type Artifact = (u64, u64);
            fn train_to(&mut self, budget: u64) -> f64 {
                self.0.train_to(budget)
            }
            fn trained_units(&self) -> u64 {
                self.0.trained_units()
            }
            fn score(&self) -> f64 {
                if self.0.seed.is_multiple_of(2) {
                    f64::NAN
                } else {
                    self.0.score()
                }
            }
            fn into_artifact(self) -> (u64, u64) {
                self.0.into_artifact()
            }
        }
        let search = HyperSearch::reduced(10, 0);
        let outcome = search.run_halving(&mut StdRng::seed_from_u64(45), FAKE_CAP, |h, s| {
            NanCandidate(FakeCandidate::new(h, s, FAKE_CAP))
        });
        let winner = &outcome.search.candidates[outcome.search.best_index];
        if outcome
            .search
            .candidates
            .iter()
            .any(|c| c.trainer_seed % 2 == 1)
        {
            assert_eq!(winner.trainer_seed % 2, 1, "a NaN-scoring candidate won");
            assert!(outcome.search.best_score.is_finite());
        }
        // Whenever finite candidates were alive in a rung, no NaN candidate outlived one.
        for pair in outcome.rungs.windows(2) {
            let finite_dropped = pair[0]
                .survivors
                .iter()
                .zip(&pair[0].scores)
                .any(|(i, s)| s.is_finite() && !pair[1].survivors.contains(i));
            let nan_kept = pair[1]
                .survivors
                .iter()
                .zip(&pair[1].scores)
                .any(|(_, s)| s.is_nan());
            assert!(
                !(finite_dropped && nan_kept),
                "a NaN candidate survived past a finite one"
            );
        }
    }

    #[test]
    fn parallel_search_is_bit_identical_across_thread_counts() {
        let search = HyperSearch::reduced(12, 6);
        let score = |h: &HyperParams, seed: u64| {
            // A deterministic, seed-sensitive score so any RNG-order or reduction-order
            // difference across thread counts would show up.
            -((h.learning_rate.log10() + 3.0).powi(2)) - ((seed % 997) as f64) * 1e-6
        };
        let run = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            pool.install(|| {
                let mut rng = StdRng::seed_from_u64(15);
                search.run_parallel(&mut rng, |h, s| ((), score(h, s), h.gamma))
            })
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.best_index, four.best_index);
        assert_eq!(one.best_params, four.best_params);
        assert_eq!(one.best_score.to_bits(), four.best_score.to_bits());
        assert_eq!(one.total_cost.to_bits(), four.total_cost.to_bits());
        assert_eq!(one.candidates, four.candidates);
    }
}
