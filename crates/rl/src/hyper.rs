//! Hyperparameter sets and the two-round random search of the evaluation protocol.
//!
//! Section 4.1 of the paper: for every cross-validation split, a first round of random
//! search draws 60 hyperparameter sets (learning rate, discount factor, network update
//! and synchronisation frequencies, PER batch size, ...), the best agent on the training
//! data seeds a second, narrowed round, and the best agent on the validation set is kept.
//! This module provides the hyperparameter vector, its samplers, and a generic two-round
//! search driver that the evaluation harness feeds with a "train and score this
//! configuration" closure.

use crate::dqn::AgentConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The hyperparameters explored by the random search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperParams {
    /// Learning rate of the optimizer.
    pub learning_rate: f64,
    /// Discount factor γ.
    pub gamma: f64,
    /// Mini-batch size of the replay sampler.
    pub batch_size: usize,
    /// Environment steps between training updates.
    pub train_every: usize,
    /// Training updates between target-network synchronisations.
    pub target_sync_every: usize,
    /// Prioritisation exponent α of PER.
    pub per_alpha: f64,
    /// Steps over which ε decays to its final value.
    pub epsilon_decay_steps: u64,
}

impl HyperParams {
    /// A reasonable default point in the search space.
    pub fn default_point() -> Self {
        Self {
            learning_rate: 1e-3,
            gamma: 0.99,
            batch_size: 32,
            train_every: 2,
            target_sync_every: 250,
            per_alpha: 0.6,
            epsilon_decay_steps: 20_000,
        }
    }

    /// Draw a random point from the full search space.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let lr_exp = rng.gen_range(-4.0..-2.0); // 1e-4 .. 1e-2
        let gammas = [0.9, 0.95, 0.99, 0.995];
        let batches = [16, 32, 64];
        let train_everys = [1, 2, 4];
        let syncs = [100, 250, 500, 1000];
        Self {
            learning_rate: 10f64.powf(lr_exp),
            gamma: gammas[rng.gen_range(0..gammas.len())],
            batch_size: batches[rng.gen_range(0..batches.len())],
            train_every: train_everys[rng.gen_range(0..train_everys.len())],
            target_sync_every: syncs[rng.gen_range(0..syncs.len())],
            per_alpha: rng.gen_range(0.4..0.8),
            epsilon_decay_steps: rng.gen_range(5_000..50_000),
        }
    }

    /// Draw a point close to `self` (the narrowed second-round search space).
    pub fn narrowed<R: Rng + ?Sized>(&self, rng: &mut R) -> Self {
        let jitter = |rng: &mut R, v: f64, rel: f64| -> f64 {
            let factor = 1.0 + rng.gen_range(-rel..rel);
            v * factor
        };
        Self {
            learning_rate: jitter(rng, self.learning_rate, 0.5).clamp(1e-5, 1e-1),
            gamma: (self.gamma + rng.gen_range(-0.01..0.01)).clamp(0.8, 0.999),
            batch_size: self.batch_size,
            train_every: self.train_every,
            target_sync_every: ((jitter(rng, self.target_sync_every as f64, 0.5)) as usize).max(10),
            per_alpha: jitter(rng, self.per_alpha, 0.2).clamp(0.2, 1.0),
            epsilon_decay_steps: (jitter(rng, self.epsilon_decay_steps as f64, 0.5) as u64)
                .max(1_000),
        }
    }

    /// Apply these hyperparameters to a base agent configuration.
    pub fn apply_to(&self, base: &AgentConfig) -> AgentConfig {
        let mut config = base.clone();
        config.learning_rate = self.learning_rate;
        config.gamma = self.gamma;
        config.batch_size = self.batch_size;
        config.train_every = self.train_every;
        config.target_sync_every = self.target_sync_every;
        config.per_alpha = self.per_alpha;
        config.epsilon = crate::schedule::EpsilonSchedule::new(
            base.epsilon.start,
            base.epsilon.end,
            self.epsilon_decay_steps,
        );
        config
    }
}

/// A two-round random hyperparameter search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HyperSearch {
    /// Number of configurations drawn in the broad first round (60 in the paper).
    pub initial_round: usize,
    /// Number of configurations drawn in the narrowed second round.
    pub refined_round: usize,
}

impl HyperSearch {
    /// The paper's budget: 60 random configurations plus a narrowed second round.
    pub fn paper() -> Self {
        Self {
            initial_round: 60,
            refined_round: 20,
        }
    }

    /// A reduced budget for tests and laptop-scale runs.
    pub fn reduced(initial: usize, refined: usize) -> Self {
        Self {
            initial_round: initial.max(1),
            refined_round: refined,
        }
    }

    /// Run the search: evaluate each candidate with `score` (higher is better) and return
    /// the best hyperparameters together with their score.
    ///
    /// The search is deterministic given `rng` and a deterministic scoring closure.
    pub fn run<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        mut score: impl FnMut(&HyperParams) -> f64,
    ) -> (HyperParams, f64) {
        let mut best = HyperParams::default_point();
        let mut best_score = score(&best);
        for _ in 0..self.initial_round {
            let candidate = HyperParams::sample(rng);
            let s = score(&candidate);
            if s > best_score {
                best_score = s;
                best = candidate;
            }
        }
        let anchor = best;
        for _ in 0..self.refined_round {
            let candidate = anchor.narrowed(rng);
            let s = score(&candidate);
            if s > best_score {
                best_score = s;
                best = candidate;
            }
        }
        (best, best_score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_points_stay_in_the_search_space() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let h = HyperParams::sample(&mut rng);
            assert!(h.learning_rate >= 1e-4 && h.learning_rate <= 1e-2);
            assert!(h.gamma >= 0.9 && h.gamma <= 0.995);
            assert!([16, 32, 64].contains(&h.batch_size));
            assert!([1, 2, 4].contains(&h.train_every));
            assert!(h.per_alpha >= 0.4 && h.per_alpha < 0.8);
            assert!(h.epsilon_decay_steps >= 5_000);
        }
    }

    #[test]
    fn narrowed_points_stay_near_the_anchor() {
        let mut rng = StdRng::seed_from_u64(2);
        let anchor = HyperParams::default_point();
        for _ in 0..100 {
            let h = anchor.narrowed(&mut rng);
            assert!(h.learning_rate >= anchor.learning_rate * 0.4);
            assert!(h.learning_rate <= anchor.learning_rate * 1.6);
            assert_eq!(h.batch_size, anchor.batch_size);
            assert!((h.gamma - anchor.gamma).abs() <= 0.011);
        }
    }

    #[test]
    fn apply_to_overrides_the_right_fields() {
        let base = AgentConfig::small(4);
        let h = HyperParams {
            learning_rate: 0.005,
            gamma: 0.9,
            batch_size: 16,
            train_every: 4,
            target_sync_every: 123,
            per_alpha: 0.7,
            epsilon_decay_steps: 9_999,
        };
        let config = h.apply_to(&base);
        assert_eq!(config.learning_rate, 0.005);
        assert_eq!(config.gamma, 0.9);
        assert_eq!(config.batch_size, 16);
        assert_eq!(config.train_every, 4);
        assert_eq!(config.target_sync_every, 123);
        assert_eq!(config.per_alpha, 0.7);
        assert_eq!(config.epsilon.decay_steps, 9_999);
        // Untouched fields keep the base values.
        assert_eq!(config.hidden, base.hidden);
        assert_eq!(config.state_dim, base.state_dim);
    }

    #[test]
    fn search_finds_a_known_optimum() {
        // Score favours a learning rate near 3e-3 and gamma near 0.99.
        let mut rng = StdRng::seed_from_u64(3);
        let search = HyperSearch::reduced(40, 20);
        let (best, score) = search.run(&mut rng, |h| {
            -((h.learning_rate.log10() - (-2.5)).powi(2)) - (h.gamma - 0.99).powi(2)
        });
        assert!(score > -0.3, "score {score}");
        assert!(
            best.learning_rate > 1e-3 && best.learning_rate < 1e-2,
            "lr {}",
            best.learning_rate
        );
    }

    #[test]
    fn search_with_zero_refined_round_still_works() {
        let mut rng = StdRng::seed_from_u64(4);
        let search = HyperSearch::reduced(5, 0);
        let (_, score) = search.run(&mut rng, |h| h.gamma);
        assert!(score >= 0.9);
    }

    #[test]
    fn paper_budget_is_sixty_initial() {
        assert_eq!(HyperSearch::paper().initial_round, 60);
    }
}
