//! # uerl-rl
//!
//! Deep reinforcement-learning substrate.
//!
//! Implements the learning machinery the paper builds its mitigation agent on:
//!
//! * [`transition`] — the `(state, action, reward, next_state)` experience tuple;
//! * [`replay`] — a uniform experience-replay ring buffer;
//! * [`sumtree`] — the sum-tree used for proportional prioritized sampling;
//! * [`per`] — prioritized experience replay (Schaul et al.) with importance-sampling
//!   weights and priority updates, which the paper uses to cope with the 3.5
//!   orders-of-magnitude class imbalance between events and uncorrected errors;
//! * [`schedule`] — ε-greedy exploration schedules and the β annealing schedule of PER;
//! * [`dqn`] — the deep Q-network agent family: vanilla DQN, double DQN and the dueling
//!   double DQN (DDDQN) configuration used in the paper, with target-network
//!   synchronisation and Huber-loss TD updates;
//! * [`hyper`] — the hyperparameter set and the two-round random search used during
//!   time-series nested cross-validation, with both an exhaustive driver
//!   ([`HyperSearch::run_parallel`]) and a successive-halving driver
//!   ([`HyperSearch::run_halving`]) that stops training losing candidates early.

pub mod dqn;
pub mod hyper;
pub mod metrics;
pub mod per;
pub mod replay;
pub mod schedule;
pub mod sumtree;
pub mod transition;

pub use dqn::{
    greedy_action, greedy_action_f32, AgentCheckpoint, AgentConfig, DqnAgent, InferenceScratch,
};
pub use hyper::{
    better_score, EvaluatedCandidate, HalvingOutcome, HyperParams, HyperSearch, RungTrace,
    SearchOutcome, Trainable,
};
pub use per::PrioritizedReplay;
pub use replay::UniformReplay;
pub use schedule::{BetaSchedule, EpsilonSchedule};
pub use sumtree::SumTree;
pub use transition::Transition;
