//! Training-loop metrics: instruments registered once in the global
//! [`uerl_obs::registry`] and shared by every agent in the process.
//!
//! Everything here is **event-time** (deterministic given the seeded training
//! sequence): gradient updates, target-network syncs, replay occupancy and the TD-error
//! distribution do not depend on wall clocks or scheduling, so they participate in the
//! snapshot fingerprint. The instruments are always registered; recording is gated
//! inside `uerl-obs` by `UERL_METRICS`, so with the gate closed each hook is one
//! relaxed atomic load.

use std::sync::{Arc, OnceLock};
use uerl_obs::{registry, Counter, Gauge, Histogram, MetricClass};

/// Handles to the training-side instruments.
pub struct RlMetrics {
    /// Gradient updates performed (`train_step` calls that sampled a batch).
    pub updates: Arc<Counter>,
    /// Target-network synchronisations.
    pub target_syncs: Arc<Counter>,
    /// Current replay-memory occupancy (transitions).
    pub replay_len: Arc<Gauge>,
    /// Distribution of |TD error| per replayed sample, recorded in micro-units
    /// (|error| × 1e6, rounded) so the log2 buckets resolve sub-1.0 errors.
    pub td_error_micros: Arc<Histogram>,
}

/// The process-wide training instruments (registered on first use).
pub fn metrics() -> &'static RlMetrics {
    static METRICS: OnceLock<RlMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = registry();
        RlMetrics {
            updates: r.counter(
                "uerl_rl_train_updates_total",
                "Gradient updates performed across all agents",
                &[],
                MetricClass::EventTime,
            ),
            target_syncs: r.counter(
                "uerl_rl_target_syncs_total",
                "Target-network synchronisations across all agents",
                &[],
                MetricClass::EventTime,
            ),
            replay_len: r.gauge(
                "uerl_rl_replay_len",
                "Replay-memory occupancy after the most recent update",
                &[],
                MetricClass::EventTime,
            ),
            td_error_micros: r.histogram(
                "uerl_rl_td_error_micros",
                "Absolute TD error per replayed sample, in micro-units (|e| * 1e6)",
                &[],
                MetricClass::EventTime,
            ),
        }
    })
}
