//! Proportional prioritized experience replay (Schaul et al., ICLR 2016).
//!
//! The paper relies on PER to cope with the extreme class imbalance of the mitigation
//! problem: 67 effective uncorrected errors among 259,270 events (3.5 orders of
//! magnitude). Transitions are sampled with probability proportional to
//! `priority^alpha`, where the priority is the magnitude of the last TD error (plus a
//! small floor so nothing starves), and the induced bias is corrected with
//! importance-sampling weights annealed by `beta`.

use crate::sumtree::SumTree;
use crate::transition::Transition;
use rand::Rng;

/// A batch sampled from prioritized replay.
#[derive(Debug, Clone)]
pub struct SampledBatch {
    /// Buffer slots of the sampled transitions (pass back to `update_priorities`).
    pub indices: Vec<usize>,
    /// Normalised importance-sampling weights (max weight = 1).
    pub weights: Vec<f64>,
    /// The sampled transitions, cloned out of the buffer.
    pub transitions: Vec<Transition>,
}

/// Prioritized experience replay memory.
#[derive(Debug, Clone)]
pub struct PrioritizedReplay {
    capacity: usize,
    alpha: f64,
    priority_floor: f64,
    transitions: Vec<Transition>,
    tree: SumTree,
    next: usize,
    max_priority: f64,
}

impl PrioritizedReplay {
    /// Create a replay memory of the given capacity and prioritisation exponent `alpha`
    /// (`alpha = 0` degenerates to uniform sampling).
    ///
    /// # Panics
    /// Panics if `capacity` is zero or `alpha` is outside `[0, 1]`.
    pub fn new(capacity: usize, alpha: f64) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
        Self {
            capacity,
            alpha,
            priority_floor: 1e-4,
            transitions: Vec::with_capacity(capacity.min(4096)),
            tree: SumTree::new(capacity),
            next: 0,
            max_priority: 1.0,
        }
    }

    /// Maximum number of stored transitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of stored transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the memory is empty.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// All stored transitions, in ring-buffer slot order (deterministic — used to draw
    /// calibration states for post-training quantization).
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// The prioritisation exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Override the priority floor (the minimum TD-error magnitude credited to a
    /// transition so nothing starves; default `1e-4`).
    ///
    /// # Panics
    /// Panics if the floor is not strictly positive and finite.
    pub fn with_priority_floor(mut self, floor: f64) -> Self {
        assert!(
            floor.is_finite() && floor > 0.0,
            "priority floor must be positive and finite"
        );
        self.priority_floor = floor;
        self
    }

    /// The stored (post-exponentiation) priority of a slot, for diagnostics and tests.
    pub fn priority_of(&self, slot: usize) -> f64 {
        self.tree.get(slot)
    }

    /// Add a transition with the maximum priority seen so far, so every new experience is
    /// replayed at least once soon after being stored.
    pub fn push(&mut self, transition: Transition) {
        let slot = if self.transitions.len() < self.capacity {
            self.transitions.push(transition);
            self.transitions.len() - 1
        } else {
            self.transitions[self.next] = transition;
            self.next
        };
        self.next = (slot + 1) % self.capacity;
        // Floor the raw magnitude *before* exponentiation, matching `update_priorities`:
        // the floor lives in TD-error space, not in priority (`magnitude^alpha`) space.
        let magnitude = self.max_priority.max(self.priority_floor);
        self.tree.set(slot, magnitude.powf(self.alpha));
    }

    /// Sample `batch` transitions proportionally to priority; `beta` controls the
    /// strength of the importance-sampling correction (1 = full correction).
    pub fn sample<R: Rng + ?Sized>(&self, batch: usize, beta: f64, rng: &mut R) -> SampledBatch {
        let n = self.transitions.len();
        let total = self.tree.total();
        // Guard the degenerate trees (empty, all-zero, or a sum corrupted to NaN/inf —
        // e.g. after an unguarded priority write): sampling from them would divide by
        // zero below and poison every importance weight.
        if n == 0 || !total.is_finite() || total <= 0.0 {
            return SampledBatch {
                indices: Vec::new(),
                weights: Vec::new(),
                transitions: Vec::new(),
            };
        }
        let beta = beta.clamp(0.0, 1.0);
        let mut indices = Vec::with_capacity(batch);
        let mut weights = Vec::with_capacity(batch);
        let mut transitions = Vec::with_capacity(batch);
        // Weight normalisation uses the maximum weight over the buffer, which corresponds
        // to the minimum sampling probability. The priority floor guarantees every
        // stored slot has a strictly positive priority (the all-floor edge included), so
        // `min_prob > 0` and the normaliser is finite.
        let min_prob = self
            .tree
            .min_nonzero_priority()
            .map(|p| p / total)
            .unwrap_or(1.0 / n as f64);
        debug_assert!(
            min_prob.is_finite() && min_prob > 0.0,
            "minimum sampling probability must be positive and finite, got {min_prob}"
        );
        let max_weight = (n as f64 * min_prob).powf(-beta);
        debug_assert!(
            max_weight.is_finite() && max_weight > 0.0,
            "weight normaliser must be positive and finite, got {max_weight}"
        );
        for _ in 0..batch {
            let value = rng.gen::<f64>() * total;
            let idx = self.tree.find(value).min(n - 1);
            let prob = (self.tree.get(idx) / total).max(f64::MIN_POSITIVE);
            let weight = (n as f64 * prob).powf(-beta) / max_weight;
            // `prob >= min_prob` for every sampled slot, so `weight <= 1` holds exactly;
            // a violation means the sum tree or the normaliser drifted. Assert instead
            // of masking it with a clamp — a silent `.min(1.0)` hid real normalisation
            // bugs (and would let a NaN weight straight through, since `NaN.min(1.0)`
            // is NaN).
            debug_assert!(
                weight.is_finite() && weight <= 1.0 + 1e-9,
                "importance weight {weight} outside (0, 1] — sum-tree drift or a \
                 zero-priority slot was sampled (prob {prob}, min_prob {min_prob})"
            );
            indices.push(idx);
            weights.push(weight);
            transitions.push(self.transitions[idx].clone());
        }
        SampledBatch {
            indices,
            weights,
            transitions,
        }
    }

    /// Update the priorities of previously sampled slots from their new TD errors.
    ///
    /// # Panics
    /// Panics if the slice lengths differ.
    pub fn update_priorities(&mut self, indices: &[usize], td_errors: &[f64]) {
        assert_eq!(indices.len(), td_errors.len(), "length mismatch");
        for (&idx, &err) in indices.iter().zip(td_errors) {
            if idx >= self.transitions.len() {
                continue;
            }
            let magnitude = err.abs().max(self.priority_floor);
            self.max_priority = self.max_priority.max(magnitude);
            self.tree.set(idx, magnitude.powf(self.alpha));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(id: f64) -> Transition {
        Transition::terminal(vec![id], 0, id)
    }

    #[test]
    fn push_and_len_with_eviction() {
        let mut per = PrioritizedReplay::new(2, 0.6);
        per.push(t(1.0));
        per.push(t(2.0));
        per.push(t(3.0));
        assert_eq!(per.len(), 2);
        assert_eq!(per.capacity(), 2);
    }

    #[test]
    fn sampling_empty_returns_empty_batch() {
        let per = PrioritizedReplay::new(4, 0.6);
        let mut rng = StdRng::seed_from_u64(1);
        let b = per.sample(8, 0.4, &mut rng);
        assert!(b.indices.is_empty() && b.weights.is_empty() && b.transitions.is_empty());
    }

    #[test]
    fn high_priority_transitions_are_sampled_more_often() {
        let mut per = PrioritizedReplay::new(4, 1.0);
        for i in 0..4 {
            per.push(t(i as f64));
        }
        // Give slot 3 a much larger TD error.
        per.update_priorities(&[0, 1, 2, 3], &[0.01, 0.01, 0.01, 10.0]);
        let mut rng = StdRng::seed_from_u64(2);
        let batch = per.sample(5000, 0.4, &mut rng);
        let hot = batch.indices.iter().filter(|&&i| i == 3).count();
        assert!(
            hot as f64 / batch.indices.len() as f64 > 0.9,
            "hot slot sampled {hot} of {}",
            batch.indices.len()
        );
    }

    #[test]
    fn alpha_zero_is_close_to_uniform() {
        let mut per = PrioritizedReplay::new(4, 0.0);
        for i in 0..4 {
            per.push(t(i as f64));
        }
        per.update_priorities(&[0, 1, 2, 3], &[0.01, 0.01, 0.01, 10.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let batch = per.sample(8000, 1.0, &mut rng);
        let counts = (0..4)
            .map(|k| batch.indices.iter().filter(|&&i| i == k).count())
            .collect::<Vec<_>>();
        for &c in &counts {
            let frac = c as f64 / batch.indices.len() as f64;
            assert!(
                (frac - 0.25).abs() < 0.05,
                "uniform-ish expected, got {counts:?}"
            );
        }
    }

    #[test]
    fn importance_weights_are_normalised_and_smaller_for_hot_slots() {
        let mut per = PrioritizedReplay::new(4, 1.0);
        for i in 0..4 {
            per.push(t(i as f64));
        }
        per.update_priorities(&[0, 1, 2, 3], &[0.1, 0.1, 0.1, 5.0]);
        let mut rng = StdRng::seed_from_u64(4);
        let batch = per.sample(2000, 1.0, &mut rng);
        assert!(batch.weights.iter().all(|&w| w > 0.0 && w <= 1.0 + 1e-12));
        // Weights of the over-sampled slot must be below those of rare slots.
        let hot: Vec<f64> = batch
            .indices
            .iter()
            .zip(&batch.weights)
            .filter(|(&i, _)| i == 3)
            .map(|(_, &w)| w)
            .collect();
        let cold: Vec<f64> = batch
            .indices
            .iter()
            .zip(&batch.weights)
            .filter(|(&i, _)| i != 3)
            .map(|(_, &w)| w)
            .collect();
        if !hot.is_empty() && !cold.is_empty() {
            let hot_mean: f64 = hot.iter().sum::<f64>() / hot.len() as f64;
            let cold_mean: f64 = cold.iter().sum::<f64>() / cold.len() as f64;
            assert!(hot_mean < cold_mean, "hot {hot_mean} vs cold {cold_mean}");
        }
    }

    #[test]
    fn new_experiences_get_max_priority() {
        let mut per = PrioritizedReplay::new(8, 1.0);
        per.push(t(0.0));
        per.update_priorities(&[0], &[4.0]);
        // A fresh push should be stored with priority >= the current maximum, so it is
        // sampled promptly even before its TD error is known.
        per.push(t(1.0));
        let mut rng = StdRng::seed_from_u64(5);
        let batch = per.sample(4000, 0.4, &mut rng);
        let fresh = batch.indices.iter().filter(|&&i| i == 1).count();
        assert!(fresh as f64 / batch.indices.len() as f64 > 0.3);
    }

    #[test]
    fn push_floors_the_raw_magnitude_before_exponentiation() {
        // Regression: `push` used to floor *after* exponentiation
        // (`max_priority^alpha` then `.max(floor)`) while `update_priorities` floors the
        // raw magnitude first. Both paths must agree that the floor lives in TD-error
        // space: a floor above the running max priority yields `floor^alpha`, not
        // `floor`.
        let alpha = 0.5;
        let floor = 2.0;
        let mut per = PrioritizedReplay::new(4, alpha).with_priority_floor(floor);
        per.push(t(0.0)); // max_priority = 1.0 < floor
        assert!(
            (per.priority_of(0) - floor.powf(alpha)).abs() < 1e-15,
            "push stored {}, want floor^alpha = {}",
            per.priority_of(0),
            floor.powf(alpha)
        );
        // `update_priorities` with a sub-floor error must store the same value.
        per.push(t(1.0));
        per.update_priorities(&[1], &[0.0]);
        assert_eq!(per.priority_of(0).to_bits(), per.priority_of(1).to_bits());
    }

    #[test]
    fn sub_floor_td_errors_are_floored_consistently() {
        let mut per = PrioritizedReplay::new(2, 0.6);
        per.push(t(0.0));
        per.update_priorities(&[0], &[1e-9]);
        let expected = 1e-4f64.powf(0.6);
        assert!((per.priority_of(0) - expected).abs() < 1e-15);
    }

    #[test]
    fn all_floor_priorities_yield_unit_weights() {
        // The hardest normalisation edge: every slot sits exactly on the priority
        // floor, so min_prob == prob for every sample and the importance weights must
        // be exactly 1 — never NaN/inf, never above 1.
        let mut per = PrioritizedReplay::new(8, 0.7);
        for i in 0..8 {
            per.push(t(i as f64));
        }
        let indices: Vec<usize> = (0..8).collect();
        per.update_priorities(&indices, &[0.0; 8]);
        let mut rng = StdRng::seed_from_u64(6);
        for beta in [0.0, 0.4, 1.0] {
            let batch = per.sample(64, beta, &mut rng);
            assert_eq!(batch.weights.len(), 64);
            for &w in &batch.weights {
                assert!(w.is_finite());
                assert_eq!(w.to_bits(), 1.0f64.to_bits(), "all-floor weight must be 1");
            }
        }
    }

    #[test]
    fn importance_weights_are_always_finite_under_extreme_spreads() {
        // Nine orders of magnitude of priority spread with full correction (beta = 1):
        // weights must stay finite and within the normalisation bound.
        let mut per = PrioritizedReplay::new(16, 1.0);
        for i in 0..16 {
            per.push(t(i as f64));
        }
        let indices: Vec<usize> = (0..16).collect();
        let errors: Vec<f64> = (0..16).map(|i| 10f64.powi(i - 8)).collect();
        per.update_priorities(&indices, &errors);
        let mut rng = StdRng::seed_from_u64(7);
        let batch = per.sample(2000, 1.0, &mut rng);
        for &w in &batch.weights {
            assert!(w.is_finite() && w > 0.0 && w <= 1.0 + 1e-9, "weight {w}");
        }
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_rejected() {
        PrioritizedReplay::new(4, 1.5);
    }

    #[test]
    #[should_panic(expected = "priority floor must be positive")]
    fn bad_floor_rejected() {
        let _ = PrioritizedReplay::new(4, 0.5).with_priority_floor(0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_priority_update_rejected() {
        let mut per = PrioritizedReplay::new(4, 0.5);
        per.push(t(0.0));
        per.update_priorities(&[0], &[1.0, 2.0]);
    }
}
