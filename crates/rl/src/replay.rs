//! A uniform experience-replay ring buffer.

use crate::transition::Transition;
use rand::Rng;

/// A fixed-capacity ring buffer of transitions with uniform random sampling.
///
/// Used by the non-prioritized agent variants (and as the baseline against which
/// prioritized experience replay is ablated).
#[derive(Debug, Clone)]
pub struct UniformReplay {
    capacity: usize,
    buffer: Vec<Transition>,
    next: usize,
}

impl UniformReplay {
    /// Create a buffer holding at most `capacity` transitions.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "replay capacity must be positive");
        Self {
            capacity,
            buffer: Vec::with_capacity(capacity.min(4096)),
            next: 0,
        }
    }

    /// Maximum number of stored transitions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of stored transitions.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// All stored transitions, in ring-buffer slot order (deterministic — used to draw
    /// calibration states for post-training quantization).
    pub fn transitions(&self) -> &[Transition] {
        &self.buffer
    }

    /// Add a transition, evicting the oldest once the buffer is full.
    pub fn push(&mut self, transition: Transition) {
        if self.buffer.len() < self.capacity {
            self.buffer.push(transition);
        } else {
            self.buffer[self.next] = transition;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Sample `batch` transitions uniformly at random (with replacement).
    ///
    /// Returns fewer than `batch` items only when the buffer is empty.
    pub fn sample<R: Rng + ?Sized>(&self, batch: usize, rng: &mut R) -> Vec<&Transition> {
        if self.buffer.is_empty() {
            return Vec::new();
        }
        (0..batch)
            .map(|_| &self.buffer[rng.gen_range(0..self.buffer.len())])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(id: f64) -> Transition {
        Transition::terminal(vec![id], 0, id)
    }

    #[test]
    fn push_and_len() {
        let mut r = UniformReplay::new(3);
        assert!(r.is_empty());
        r.push(t(1.0));
        r.push(t(2.0));
        assert_eq!(r.len(), 2);
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn eviction_replaces_oldest() {
        let mut r = UniformReplay::new(2);
        r.push(t(1.0));
        r.push(t(2.0));
        r.push(t(3.0));
        assert_eq!(r.len(), 2);
        let mut rng = StdRng::seed_from_u64(1);
        let rewards: Vec<f64> = r.sample(100, &mut rng).iter().map(|t| t.reward).collect();
        assert!(!rewards.contains(&1.0), "oldest transition must be gone");
        assert!(rewards.contains(&3.0));
    }

    #[test]
    fn sampling_from_empty_buffer_is_empty() {
        let r = UniformReplay::new(4);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(r.sample(8, &mut rng).is_empty());
    }

    #[test]
    fn sampling_covers_contents() {
        let mut r = UniformReplay::new(10);
        for i in 0..10 {
            r.push(t(i as f64));
        }
        let mut rng = StdRng::seed_from_u64(3);
        let sampled: std::collections::HashSet<i64> = r
            .sample(500, &mut rng)
            .iter()
            .map(|t| t.reward as i64)
            .collect();
        assert_eq!(
            sampled.len(),
            10,
            "all entries should eventually be sampled"
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        UniformReplay::new(0);
    }
}
