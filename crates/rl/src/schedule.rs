//! Annealing schedules: ε-greedy exploration and the PER β exponent.

use serde::{Deserialize, Serialize};

/// A linearly-annealed ε-greedy exploration schedule.
///
/// Exploration starts at `start` (typically 1.0: every action random) and decays linearly
/// to `end` over `decay_steps` environment steps, then stays at `end`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonSchedule {
    /// Initial exploration rate.
    pub start: f64,
    /// Final exploration rate.
    pub end: f64,
    /// Number of steps over which ε decays from `start` to `end`.
    pub decay_steps: u64,
}

impl EpsilonSchedule {
    /// Create a schedule.
    ///
    /// # Panics
    /// Panics unless `0 <= end <= start <= 1` and `decay_steps > 0`.
    pub fn new(start: f64, end: f64, decay_steps: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&start) && (0.0..=1.0).contains(&end),
            "ε must be in [0,1]"
        );
        assert!(end <= start, "ε must not increase over time");
        assert!(decay_steps > 0, "decay_steps must be positive");
        Self {
            start,
            end,
            decay_steps,
        }
    }

    /// A constant schedule (useful for evaluation: ε = 0 means fully greedy).
    pub fn constant(epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "ε must be in [0,1]");
        Self {
            start: epsilon,
            end: epsilon,
            decay_steps: 1,
        }
    }

    /// The exploration rate at environment step `step`.
    pub fn value(&self, step: u64) -> f64 {
        if step >= self.decay_steps {
            return self.end;
        }
        let frac = step as f64 / self.decay_steps as f64;
        self.start + (self.end - self.start) * frac
    }
}

impl Default for EpsilonSchedule {
    fn default() -> Self {
        Self::new(1.0, 0.02, 50_000)
    }
}

/// The β annealing schedule of prioritized experience replay: the importance-sampling
/// correction grows linearly from `start` (typically 0.4) to 1.0 over `anneal_steps`
/// training updates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaSchedule {
    /// Initial β.
    pub start: f64,
    /// Number of updates over which β reaches 1.
    pub anneal_steps: u64,
}

impl BetaSchedule {
    /// Create a schedule.
    ///
    /// # Panics
    /// Panics unless `0 <= start <= 1` and `anneal_steps > 0`.
    pub fn new(start: f64, anneal_steps: u64) -> Self {
        assert!((0.0..=1.0).contains(&start), "β must be in [0,1]");
        assert!(anneal_steps > 0, "anneal_steps must be positive");
        Self {
            start,
            anneal_steps,
        }
    }

    /// β at training update `step`.
    pub fn value(&self, step: u64) -> f64 {
        if step >= self.anneal_steps {
            return 1.0;
        }
        self.start + (1.0 - self.start) * (step as f64 / self.anneal_steps as f64)
    }
}

impl Default for BetaSchedule {
    fn default() -> Self {
        Self::new(0.4, 50_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_decays_linearly_then_plateaus() {
        let e = EpsilonSchedule::new(1.0, 0.1, 100);
        assert_eq!(e.value(0), 1.0);
        assert!((e.value(50) - 0.55).abs() < 1e-12);
        assert_eq!(e.value(100), 0.1);
        assert_eq!(e.value(10_000), 0.1);
    }

    #[test]
    fn constant_epsilon_never_changes() {
        let e = EpsilonSchedule::constant(0.3);
        assert_eq!(e.value(0), 0.3);
        assert_eq!(e.value(1_000_000), 0.3);
    }

    #[test]
    fn beta_reaches_one() {
        let b = BetaSchedule::new(0.4, 10);
        assert_eq!(b.value(0), 0.4);
        assert!((b.value(5) - 0.7).abs() < 1e-12);
        assert_eq!(b.value(10), 1.0);
        assert_eq!(b.value(999), 1.0);
    }

    #[test]
    fn defaults_are_sensible() {
        let e = EpsilonSchedule::default();
        assert_eq!(e.value(0), 1.0);
        assert!(e.value(u64::MAX) > 0.0, "exploration never fully stops");
        let b = BetaSchedule::default();
        assert!(b.value(0) < 1.0);
    }

    #[test]
    #[should_panic(expected = "must not increase")]
    fn increasing_epsilon_rejected() {
        EpsilonSchedule::new(0.1, 0.5, 10);
    }
}
