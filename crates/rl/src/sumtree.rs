//! A sum-tree: a complete binary tree whose internal nodes store the sum of their
//! children's priorities, supporting O(log n) priority updates and O(log n) sampling
//! proportional to priority. This is the standard data structure behind proportional
//! prioritized experience replay.

/// A fixed-capacity sum-tree over `capacity` slots.
#[derive(Debug, Clone)]
pub struct SumTree {
    capacity: usize,
    /// Binary heap layout: `tree[1]` is the root, leaves start at `capacity`.
    tree: Vec<f64>,
}

impl SumTree {
    /// Create a sum-tree with all priorities zero.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "sum-tree capacity must be positive");
        Self {
            capacity,
            tree: vec![0.0; 2 * capacity],
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total priority mass.
    pub fn total(&self) -> f64 {
        self.tree[1]
    }

    /// Priority of slot `index`.
    pub fn get(&self, index: usize) -> f64 {
        assert!(index < self.capacity, "index out of bounds");
        self.tree[self.capacity + index]
    }

    /// Set the priority of slot `index`.
    ///
    /// # Panics
    /// Panics if the index is out of bounds or the priority is negative / non-finite.
    pub fn set(&mut self, index: usize, priority: f64) {
        assert!(index < self.capacity, "index out of bounds");
        assert!(
            priority.is_finite() && priority >= 0.0,
            "priority must be non-negative and finite (got {priority})"
        );
        let mut pos = self.capacity + index;
        self.tree[pos] = priority;
        // Recompute each parent from its children instead of propagating the
        // floating-point delta: same O(log n) cost, but exact — `total()` can never
        // drift from the true leaf sum, no matter how many updates the tree absorbs.
        while pos > 1 {
            pos /= 2;
            self.tree[pos] = self.tree[2 * pos] + self.tree[2 * pos + 1];
        }
    }

    /// Find the slot whose cumulative priority range contains `value`
    /// (`0 <= value < total()`). With value drawn uniformly this samples slots
    /// proportionally to their priorities.
    pub fn find(&self, value: f64) -> usize {
        let mut value = value.clamp(0.0, self.total().max(0.0));
        let mut pos = 1;
        while pos < self.capacity {
            let left = 2 * pos;
            if value < self.tree[left] || self.tree[left + 1] <= 0.0 {
                pos = left;
            } else {
                value -= self.tree[left];
                pos = left + 1;
            }
        }
        pos - self.capacity
    }

    /// The largest priority currently stored (0 for an empty tree).
    pub fn max_priority(&self) -> f64 {
        self.tree[self.capacity..]
            .iter()
            .copied()
            .fold(0.0, f64::max)
    }

    /// The smallest non-zero priority currently stored, or `None` if all are zero.
    pub fn min_nonzero_priority(&self) -> Option<f64> {
        self.tree[self.capacity..]
            .iter()
            .copied()
            .filter(|&p| p > 0.0)
            .fold(None, |acc, p| Some(acc.map_or(p, |a: f64| a.min(p))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn totals_track_updates() {
        let mut t = SumTree::new(4);
        assert_eq!(t.total(), 0.0);
        t.set(0, 1.0);
        t.set(1, 2.0);
        t.set(2, 3.0);
        assert!((t.total() - 6.0).abs() < 1e-12);
        t.set(1, 0.5);
        assert!((t.total() - 4.5).abs() < 1e-12);
        assert_eq!(t.get(2), 3.0);
    }

    #[test]
    fn find_respects_cumulative_ranges() {
        let mut t = SumTree::new(4);
        t.set(0, 1.0);
        t.set(1, 2.0);
        t.set(2, 3.0);
        t.set(3, 4.0);
        // Cumulative ranges: [0,1) -> 0, [1,3) -> 1, [3,6) -> 2, [6,10) -> 3.
        assert_eq!(t.find(0.5), 0);
        assert_eq!(t.find(1.5), 1);
        assert_eq!(t.find(3.0), 2);
        assert_eq!(t.find(9.99), 3);
    }

    #[test]
    fn sampling_frequencies_are_proportional_to_priorities() {
        let mut t = SumTree::new(3);
        t.set(0, 1.0);
        t.set(1, 0.0);
        t.set(2, 9.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 3];
        let n = 20_000;
        for _ in 0..n {
            let v = rng.gen::<f64>() * t.total();
            counts[t.find(v)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-priority slot must never be sampled");
        let frac2 = counts[2] as f64 / n as f64;
        assert!((frac2 - 0.9).abs() < 0.02, "slot 2 sampled {frac2}");
    }

    #[test]
    fn works_with_non_power_of_two_capacity() {
        let mut t = SumTree::new(5);
        for i in 0..5 {
            t.set(i, 1.0);
        }
        assert!((t.total() - 5.0).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let v = rng.gen::<f64>() * t.total();
            let idx = t.find(v);
            assert!(idx < 5);
            seen.insert(idx);
        }
        assert_eq!(seen.len(), 5, "every slot should be reachable");
    }

    #[test]
    fn min_max_priorities() {
        let mut t = SumTree::new(4);
        assert_eq!(t.max_priority(), 0.0);
        assert_eq!(t.min_nonzero_priority(), None);
        t.set(0, 2.0);
        t.set(3, 0.5);
        assert_eq!(t.max_priority(), 2.0);
        assert_eq!(t.min_nonzero_priority(), Some(0.5));
    }

    #[test]
    fn totals_do_not_drift_over_many_mixed_magnitude_updates() {
        // Regression: `set` used to propagate a floating-point *delta* up the tree, so
        // rounding error accumulated in `total()` over millions of updates. Recomputing
        // parents from their children makes the internal nodes a pure function of the
        // final leaf values: after any update history the tree must be bit-identical to
        // a freshly built tree holding the same leaves.
        let capacity = 37; // non-power-of-two on purpose
        let mut t = SumTree::new(capacity);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..500_000 {
            let slot = rng.gen_range(0..capacity);
            // Mixed magnitudes spanning ~24 decades make delta propagation drift fast.
            let exp = rng.gen_range(-12.0..12.0);
            t.set(slot, 10f64.powf(exp));
        }
        let mut fresh = SumTree::new(capacity);
        for i in 0..capacity {
            fresh.set(i, t.get(i));
        }
        assert_eq!(
            t.total().to_bits(),
            fresh.total().to_bits(),
            "total drifted from the true leaf sum: {} vs {}",
            t.total(),
            fresh.total()
        );
        // And sampling still lands in bounds at both ends of the cumulative range.
        assert!(t.find(0.0) < capacity);
        assert!(t.find(t.total()) < capacity);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_priority_rejected() {
        SumTree::new(2).set(0, -1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_rejected() {
        SumTree::new(2).set(5, 1.0);
    }
}
