//! The experience tuple stored in replay memory.

use serde::{Deserialize, Serialize};

/// One agent-environment interaction: the state observed, the action taken, the reward
/// received and the state that followed (`None` when the episode terminated, e.g. because
/// an uncorrected error shut the node down).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// State features the agent acted on.
    pub state: Vec<f64>,
    /// Index of the chosen action (for UE mitigation: 0 = do nothing, 1 = mitigate).
    pub action: usize,
    /// Reward received after the action (negative lost node-hours, Equation 4).
    pub reward: f64,
    /// The following state, or `None` if the episode ended.
    pub next_state: Option<Vec<f64>>,
}

impl Transition {
    /// Construct a non-terminal transition.
    pub fn new(state: Vec<f64>, action: usize, reward: f64, next_state: Vec<f64>) -> Self {
        Self {
            state,
            action,
            reward,
            next_state: Some(next_state),
        }
    }

    /// Construct a terminal transition (no successor state).
    pub fn terminal(state: Vec<f64>, action: usize, reward: f64) -> Self {
        Self {
            state,
            action,
            reward,
            next_state: None,
        }
    }

    /// Whether the transition ended its episode.
    pub fn is_terminal(&self) -> bool {
        self.next_state.is_none()
    }

    /// Dimension of the state vector.
    pub fn state_dim(&self) -> usize {
        self.state.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_flags() {
        let t = Transition::new(vec![1.0, 2.0], 1, -0.5, vec![3.0, 4.0]);
        assert!(!t.is_terminal());
        assert_eq!(t.state_dim(), 2);
        assert_eq!(t.action, 1);

        let end = Transition::terminal(vec![0.0], 0, -100.0);
        assert!(end.is_terminal());
        assert_eq!(end.next_state, None);
        assert_eq!(end.reward, -100.0);
    }
}
