//! # uerl-serve
//!
//! Online fleet-serving subsystem: the deployment half of the paper's story. The
//! offline crates replay historical timelines through the evaluator; this crate runs
//! the same decision process **live** — a long-running service that ingests the merged
//! event-time stream of an entire fleet's DRAM error events and answers, at every
//! non-fatal event, whether to mitigate.
//!
//! * [`session`] — per-node serving sessions: the push-mode mirror of the evaluation
//!   environment, keeping each node's incremental feature state, job assignment,
//!   mitigation reference point and cost accounting.
//! * [`server`] — the [`FleetServer`]: event-time ticks, sharded per-node state,
//!   node-id-ordered **micro-batched inference** (a tick's decision requests are
//!   stacked into one batched forward pass through
//!   [`uerl_core::policy::MitigationPolicy::decide_batch`]), and the out-of-order
//!   ingestion guard.
//! * [`metrics`] — the serving instruments (tick tracing, decision counters,
//!   accumulated Equation 3 costs, work-stealing pool gauges) fed into the
//!   process-wide [`uerl_obs`] registry, plus **shadow-policy scoring**: baseline
//!   policies scored counterfactually on the identical served stream, with a live
//!   cost-regret gauge ([`FleetServer::with_shadow_policies`]).
//!
//! The subsystem carries the repository's determinism contract: served decisions and
//! accumulated mitigation/UE cost are **bit-identical** to the offline evaluator's
//! `run_policy` rollout of the same timelines — at any micro-batch size, shard count,
//! thread count and record-retention mode. The serving-parity test suite and the
//! `serve_throughput` stage of `perf_report` pin this.
//!
//! Sessions are bounded: the feature history is an O(window) ring buffer and, under
//! the default [`RecordRetention::TotalsOnly`], the accounting keeps totals instead
//! of per-event logs — a node session does not grow with its event stream.

pub mod metrics;
pub mod server;
pub mod session;

pub use metrics::{serve_metrics, ServeMetrics};
pub use server::{
    merged_fleet_stream, FleetServer, NodeServeReport, OutOfOrderEvent, ServeConfig, ServeReport,
    ServedDecision, ShadowPolicy, ShadowScore,
};
pub use session::{NodeSession, Observed};
pub use uerl_core::session_core::RecordRetention;
