//! Serving-side metrics: the instruments the [`crate::server::FleetServer`] feeds.
//!
//! Two classes, per the repository's inertness contract:
//!
//! * **Event-time** instruments derive only from the served event stream (event
//!   counts, decision counts, duplicate-timestamp rounds, accumulated Equation 3
//!   costs, shadow-policy totals). They are bit-identical at any thread count, shard
//!   count and batch size — except `uerl_serve_batch_size`, which is deterministic
//!   *per configuration* (the batch boundaries are part of the configuration) — and
//!   they participate in the snapshot fingerprint.
//! * **Wall-clock** instruments (tick durations, work-stealing pool statistics) vary
//!   run to run and are excluded from the fingerprint.
//!
//! Recording is gated inside `uerl-obs` by `UERL_METRICS`; with the gate closed every
//! hook is one relaxed atomic load and no clock is ever read.

use std::sync::{Arc, OnceLock};
use uerl_obs::{registry, Counter, Gauge, Histogram, MetricClass};

/// Handles to the serving instruments (registered once per process).
pub struct ServeMetrics {
    /// Wall-clock duration of tick flushes, in nanoseconds (sampled: one tick in
    /// eight is timed, so the two clock reads stay off the single-event-tick hot
    /// path).
    pub tick_duration_nanos: Arc<Histogram>,
    /// Events per flushed tick.
    pub tick_events: Arc<Histogram>,
    /// Decision requests per micro-batch forward pass.
    pub batch_size: Arc<Histogram>,
    /// Extra same-timestamp rounds served beyond the first of each tick.
    pub duplicate_rounds: Arc<Counter>,
    /// Events rejected for violating the event-time ordering contract.
    pub out_of_order: Arc<Counter>,
    /// Events accepted into ticks.
    pub events: Arc<Counter>,
    /// Mitigation decisions served.
    pub decisions_mitigate: Arc<Counter>,
    /// "Do nothing" decisions served.
    pub decisions_none: Arc<Counter>,
    /// Accumulated served mitigation cost in node-hours (training cost included).
    pub served_mitigation_cost: Arc<Gauge>,
    /// Accumulated served UE cost in node-hours (Equation 3 accruals).
    pub served_ue_cost: Arc<Gauge>,
    /// Served total cost minus the best shadow policy's total cost (negative when the
    /// served policy is beating every shadow).
    pub shadow_regret: Arc<Gauge>,
    /// Work-stealing pool: jobs dispensed by the queues (wall-clock class — stealing
    /// is scheduling, not event time).
    pub pool_jobs_executed: Arc<Gauge>,
    /// Work-stealing pool: jobs stolen from another worker's deque.
    pub pool_steals: Arc<Gauge>,
    /// Work-stealing pool: injector-queue depth high-water mark.
    pub pool_injector_depth_hwm: Arc<Gauge>,
    /// Work-stealing pool: worker-deque depth high-water mark.
    pub pool_deque_depth_hwm: Arc<Gauge>,
}

/// The process-wide serving instruments.
pub fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = registry();
        ServeMetrics {
            tick_duration_nanos: r.histogram(
                "uerl_serve_tick_duration_nanos",
                "Wall-clock duration of each tick flush",
                &[],
                MetricClass::WallClock,
            ),
            tick_events: r.histogram(
                "uerl_serve_tick_events",
                "Events per flushed tick",
                &[],
                MetricClass::EventTime,
            ),
            batch_size: r.histogram(
                "uerl_serve_batch_size",
                "Decision requests per micro-batch forward pass",
                &[],
                MetricClass::EventTime,
            ),
            duplicate_rounds: r.counter(
                "uerl_serve_duplicate_rounds_total",
                "Same-timestamp rounds served beyond the first of each tick",
                &[],
                MetricClass::EventTime,
            ),
            out_of_order: r.counter(
                "uerl_serve_out_of_order_total",
                "Events rejected for violating event-time ordering",
                &[],
                MetricClass::EventTime,
            ),
            events: r.counter(
                "uerl_serve_events_total",
                "Events accepted into ticks",
                &[],
                MetricClass::EventTime,
            ),
            decisions_mitigate: r.counter(
                "uerl_serve_decisions_total",
                "Decisions served, by action",
                &[("action", "mitigate")],
                MetricClass::EventTime,
            ),
            decisions_none: r.counter(
                "uerl_serve_decisions_total",
                "Decisions served, by action",
                &[("action", "none")],
                MetricClass::EventTime,
            ),
            served_mitigation_cost: r.gauge(
                "uerl_serve_mitigation_cost_node_hours",
                "Accumulated served mitigation cost (training cost included)",
                &[],
                MetricClass::EventTime,
            ),
            served_ue_cost: r.gauge(
                "uerl_serve_ue_cost_node_hours",
                "Accumulated served UE cost (Equation 3 accruals)",
                &[],
                MetricClass::EventTime,
            ),
            shadow_regret: r.gauge(
                "uerl_serve_shadow_regret_node_hours",
                "Served total cost minus the best shadow policy's total cost",
                &[],
                MetricClass::EventTime,
            ),
            pool_jobs_executed: r.gauge(
                "uerl_pool_jobs_executed",
                "Work-stealing pool: jobs dispensed by the queues",
                &[],
                MetricClass::WallClock,
            ),
            pool_steals: r.gauge(
                "uerl_pool_steals",
                "Work-stealing pool: jobs stolen from another worker's deque",
                &[],
                MetricClass::WallClock,
            ),
            pool_injector_depth_hwm: r.gauge(
                "uerl_pool_injector_depth_hwm",
                "Work-stealing pool: injector-queue depth high-water mark",
                &[],
                MetricClass::WallClock,
            ),
            pool_deque_depth_hwm: r.gauge(
                "uerl_pool_deque_depth_hwm",
                "Work-stealing pool: worker-deque depth high-water mark",
                &[],
                MetricClass::WallClock,
            ),
        }
    })
}

/// Register (or look up) the cumulative-total-cost gauge of one shadow policy.
pub fn shadow_cost_gauge(policy: &str) -> Arc<Gauge> {
    registry().gauge(
        "uerl_serve_shadow_total_cost_node_hours",
        "Cumulative counterfactual total cost of a shadow policy",
        &[("policy", policy)],
        MetricClass::EventTime,
    )
}
