//! The fleet server: event-time ticks, shard fan-out and micro-batched inference.
//!
//! [`FleetServer`] consumes the fleet-merged, event-time-ordered stream of per-minute
//! merged error events and serves one mitigation decision per non-fatal event. Events
//! carrying the same timestamp form one **tick**; when a newer timestamp arrives the
//! tick is flushed:
//!
//! 1. the tick's events are routed to their node **shards** (node id modulo shard
//!    count) and the shards absorb them in parallel over the work-stealing pool —
//!    updating each node's incremental [`NodeSession`] and collecting the tick's
//!    decision requests;
//! 2. the requests are assembled in **node-id order** (whatever the shard count or
//!    thread count) and stacked into **micro-batches** of at most
//!    [`ServeConfig::batch_size`] states, each answered by a single batched forward
//!    pass through [`MitigationPolicy::decide_batch`];
//! 3. the decisions are applied to their sessions — paying mitigation costs, moving
//!    the Equation 3 reference points — and emitted in the same node-id order.
//!
//! Because batched Q-inference is bit-identical per row to single-state inference and
//! every reduction (request assembly, decision application, fleet totals) runs in
//! node-id order, the server's decisions and accumulated costs are **bit-identical to
//! the offline evaluator's `run_policy` rollout** of the same timelines — at any batch
//! size, shard count and thread count. The serving-parity suite pins this.

use crate::session::NodeSession;
use std::collections::BTreeMap;
use uerl_core::config::MitigationConfig;
use uerl_core::env::UeRecord;
use uerl_core::event_stream::TimelineSet;
use uerl_core::policies::{QuantMode, RlPolicy};
use uerl_core::policy::MitigationPolicy;
use uerl_core::session_core::RecordRetention;
use uerl_core::state::StateFeatures;
use uerl_jobs::schedule::NodeJobSampler;
use uerl_trace::log::MergedEvent;
use uerl_trace::types::{NodeId, SimTime};

/// One node shard: the sessions of every node routed to it, keyed (and iterated) in
/// node-id order.
type Shard = BTreeMap<NodeId, NodeSession>;

/// Below this many events, a tick is absorbed serially: the parallel fan-out's
/// dispatch overhead would dominate. The threshold depends only on the tick size, so
/// the serial and parallel paths are taken identically at every thread count — and
/// they produce identical state either way (the per-node work is the same; only the
/// request-assembly order differs, and both end in node-id order).
const PARALLEL_TICK_THRESHOLD: usize = 64;

/// Configuration of a [`FleetServer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Serving window start (anchors feature extraction and job sequences; must match
    /// the offline evaluation window for parity).
    pub window_start: SimTime,
    /// Serving window end (job sequences cover `[window_start, window_end)`).
    pub window_end: SimTime,
    /// Mitigation cost / restartability knobs.
    pub mitigation: MitigationConfig,
    /// Evaluation seed: each node's job sequence derives from `(seed, node id)` only,
    /// the same workload-fairness contract as the offline evaluator.
    pub seed: u64,
    /// Maximum decision requests stacked into one batched forward pass.
    pub batch_size: usize,
    /// Number of node shards the per-node state is partitioned into.
    pub shards: usize,
    /// Numeric path of RL inference ([`ServeConfig::new`] seeds it from `UERL_QUANT`).
    /// The server itself is policy-agnostic; callers apply this to an RL policy via
    /// [`ServeConfig::apply_quant`] before constructing the server.
    pub quant: QuantMode,
    /// Record retention of the node sessions ([`ServeConfig::new`] seeds it from
    /// `UERL_RETENTION`, defaulting to totals-only: a fleet session keeps counters
    /// and cost totals, not per-event logs, so its footprint is O(1) in the node's
    /// event count). Counters, costs and decisions are bit-identical either way.
    pub retention: RecordRetention,
}

impl ServeConfig {
    /// A configuration with the default batching knobs (batch 64, 8 shards).
    pub fn new(
        window_start: SimTime,
        window_end: SimTime,
        mitigation: MitigationConfig,
        seed: u64,
    ) -> Self {
        assert!(
            window_end > window_start,
            "serving window must be non-empty"
        );
        Self {
            window_start,
            window_end,
            mitigation,
            seed,
            batch_size: 64,
            shards: 8,
            quant: QuantMode::from_env(),
            retention: RecordRetention::from_env(),
        }
    }

    /// The configuration for serving a timeline set's period: the set's window, with
    /// every per-node timeline **verified to cover exactly that window**.
    ///
    /// The offline evaluator samples each node's jobs over *that timeline's* window;
    /// the server — which sees a stream, not timelines — samples over its configured
    /// window. The two only coincide (and the bit-parity guarantee only holds) when
    /// every timeline's window equals the set's, which is what `TimelineSet::from_log`
    /// and `TimelineSet::slice` always produce. This constructor makes that
    /// precondition explicit instead of silently serving a divergent workload.
    ///
    /// # Panics
    /// Panics if any timeline's window differs from the set's.
    pub fn for_timelines(timelines: &TimelineSet, mitigation: MitigationConfig, seed: u64) -> Self {
        for timeline in timelines.timelines() {
            assert!(
                timeline.window_start() == timelines.window_start()
                    && timeline.window_end() == timelines.window_end(),
                "timeline of node {} covers [{}, {}) but the set covers [{}, {}): \
                 per-node windows must equal the serving window for offline parity",
                timeline.node().0,
                timeline.window_start().0,
                timeline.window_end().0,
                timelines.window_start().0,
                timelines.window_end().0,
            );
        }
        Self::new(
            timelines.window_start(),
            timelines.window_end(),
            mitigation,
            seed,
        )
    }

    /// Set the micro-batch size (decisions per forward pass).
    ///
    /// # Panics
    /// Panics if `batch_size` is zero.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Set the shard count.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        self.shards = shards;
        self
    }

    /// Select the RL inference path explicitly (overriding the `UERL_QUANT` default
    /// [`ServeConfig::new`] picked up).
    pub fn with_quant(mut self, quant: QuantMode) -> Self {
        self.quant = quant;
        self
    }

    /// Select the session record retention explicitly (overriding the
    /// `UERL_RETENTION` default [`ServeConfig::new`] picked up). Full retention is
    /// what the parity suites use to compare logs entry for entry; totals-only is
    /// the production default.
    pub fn with_retention(mut self, retention: RecordRetention) -> Self {
        self.retention = retention;
        self
    }

    /// Apply this configuration's quantization mode to an RL serving policy.
    pub fn apply_quant(&self, policy: RlPolicy) -> RlPolicy {
        policy.with_quantization(self.quant)
    }
}

/// One decision served by the fleet server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedDecision {
    /// Node the decision was served for.
    pub node: NodeId,
    /// Timestamp of the event that triggered the decision request.
    pub time: SimTime,
    /// Whether a mitigation was ordered.
    pub mitigated: bool,
}

/// Rejected ingestion: the stream violated the event-time ordering contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfOrderEvent {
    /// Node of the rejected event.
    pub node: NodeId,
    /// Timestamp of the rejected event.
    pub time: SimTime,
    /// The server's current tick time, which the event precedes.
    pub tick: SimTime,
}

impl std::fmt::Display for OutOfOrderEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out-of-order event for node {} at t={}s: the server already advanced to \
             t={}s (event times must be non-decreasing per node, and the merged fleet \
             stream non-decreasing overall)",
            self.node.0, self.time.0, self.tick.0
        )
    }
}

impl std::error::Error for OutOfOrderEvent {}

/// Per-node serving totals (the serving-side mirror of one offline rollout).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeServeReport {
    /// The node.
    pub node: NodeId,
    /// Mitigations ordered on this node.
    pub mitigations: u64,
    /// "Do nothing" decisions served for this node.
    pub non_mitigations: u64,
    /// Node-hours paid for this node's mitigations.
    pub mitigation_cost: f64,
    /// Fatal events accounted on this node.
    pub ue_count: u64,
    /// Node-hours lost to this node's fatal events.
    pub ue_cost: f64,
    /// Every decision served, in event order (empty under totals-only retention).
    pub decisions: Vec<(SimTime, bool)>,
    /// Every fatal event accounted, in event order (empty under totals-only
    /// retention).
    pub ue_records: Vec<UeRecord>,
}

/// Fleet-wide serving totals, accumulated in node-id order (bit-comparable to the
/// offline evaluator's `PolicyRun` for the same timelines and policy).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Name of the serving policy.
    pub policy: String,
    /// Total mitigations ordered.
    pub mitigations: u64,
    /// Total "do nothing" decisions.
    pub non_mitigations: u64,
    /// Node-hours of mitigation actions plus the policy's training cost (charged once,
    /// exactly as the offline cost-benefit accounting does).
    pub mitigation_cost: f64,
    /// Total fatal events accounted.
    pub ue_count: u64,
    /// Node-hours lost to fatal events.
    pub ue_cost: f64,
    /// Events ingested (decision requests + fatals).
    pub events: u64,
    /// Record retention the sessions ran under (totals and counters are identical
    /// in both modes; the per-node logs are populated only under full retention).
    pub retention: RecordRetention,
    /// Per-node breakdowns, in node-id order.
    pub per_node: Vec<NodeServeReport>,
}

impl ServeReport {
    /// Total cost: UE cost plus mitigation (and training) cost.
    pub fn total_cost(&self) -> f64 {
        self.ue_cost + self.mitigation_cost
    }
}

/// The online mitigation service for a fleet of nodes.
pub struct FleetServer<P: MitigationPolicy> {
    config: ServeConfig,
    policy: P,
    sampler: NodeJobSampler,
    shards: Vec<Shard>,
    tick_time: Option<SimTime>,
    tick_events: Vec<MergedEvent>,
    events_ingested: u64,
    decision_buf: Vec<bool>,
}

impl<P: MitigationPolicy> FleetServer<P> {
    /// Create a server. The policy is queried greedily (its training, if any, is
    /// already done); the sampler provides the per-node job sequences.
    pub fn new(config: ServeConfig, policy: P, sampler: NodeJobSampler) -> Self {
        let shards = (0..config.shards).map(|_| BTreeMap::new()).collect();
        Self {
            config,
            policy,
            sampler,
            shards,
            tick_time: None,
            tick_events: Vec::new(),
            events_ingested: 0,
            decision_buf: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The serving policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Events ingested so far (including those buffered in the open tick).
    pub fn events_ingested(&self) -> u64 {
        self.events_ingested
    }

    /// Nodes with live sessions.
    pub fn live_nodes(&self) -> usize {
        self.shards.iter().map(BTreeMap::len).sum()
    }

    /// Ingest one event of the merged fleet stream. Decisions become available once
    /// the event's tick closes — i.e. when a later-timestamped event arrives (they are
    /// appended to `out`) or the caller flushes explicitly — because a tick's requests
    /// are micro-batched together.
    ///
    /// # Errors
    /// Rejects events that precede the current tick: event times must be
    /// non-decreasing per node, and the fleet-merged stream non-decreasing overall.
    pub fn ingest(
        &mut self,
        event: MergedEvent,
        out: &mut Vec<ServedDecision>,
    ) -> Result<(), OutOfOrderEvent> {
        if let Some(tick) = self.tick_time {
            if event.time < tick {
                return Err(OutOfOrderEvent {
                    node: event.node,
                    time: event.time,
                    tick,
                });
            }
            if event.time > tick {
                self.flush(out);
            }
        }
        self.tick_time = Some(event.time);
        self.events_ingested += 1;
        self.tick_events.push(event);
        Ok(())
    }

    /// Ingest a whole stream, appending every served decision to `out` and flushing
    /// the final tick.
    ///
    /// # Errors
    /// As [`FleetServer::ingest`]; ingestion stops at the first rejected event.
    pub fn ingest_all(
        &mut self,
        events: impl IntoIterator<Item = MergedEvent>,
        out: &mut Vec<ServedDecision>,
    ) -> Result<(), OutOfOrderEvent> {
        for event in events {
            self.ingest(event, out)?;
        }
        self.flush(out);
        Ok(())
    }

    /// Flush the open tick: absorb its events shard-parallel, answer its decision
    /// requests in node-id-ordered micro-batches, apply and emit the decisions.
    /// Called automatically when a later tick starts; call it after the last event of
    /// a stream (or use [`FleetServer::ingest_all`], which does).
    pub fn flush(&mut self, out: &mut Vec<ServedDecision>) {
        if self.tick_events.is_empty() {
            return;
        }
        // Group the tick's events per node, preserving per-node arrival order. A node
        // normally contributes one merged event per tick (the stream is per-minute
        // merged), but duplicates are legal: they are served in *rounds* — one event
        // per node per round — so a second event always sees its node's state after
        // the first event's decision was applied, exactly as the offline replay does.
        let mut per_node: BTreeMap<NodeId, Vec<MergedEvent>> = BTreeMap::new();
        for event in self.tick_events.drain(..) {
            per_node.entry(event.node).or_default().push(event);
        }
        let mut round: Vec<(NodeId, MergedEvent)> = Vec::with_capacity(per_node.len());
        while !per_node.is_empty() {
            round.clear();
            for (node, events) in per_node.iter_mut() {
                round.push((*node, events.remove(0)));
            }
            per_node.retain(|_, events| !events.is_empty());
            self.serve_round(&mut round, out);
        }
    }

    /// Serve one round (at most one event per node, node-id order): absorb the events,
    /// micro-batch the resulting decision requests, apply and emit the decisions.
    fn serve_round(
        &mut self,
        round: &mut Vec<(NodeId, MergedEvent)>,
        out: &mut Vec<ServedDecision>,
    ) {
        let (nodes, states) = self.observe_round(round);
        let batch = self.config.batch_size;
        for (node_chunk, state_chunk) in nodes.chunks(batch).zip(states.chunks(batch)) {
            self.decision_buf.clear();
            self.policy
                .decide_batch(state_chunk, &mut self.decision_buf);
            debug_assert_eq!(self.decision_buf.len(), state_chunk.len());
            for (i, (node, state)) in node_chunk.iter().zip(state_chunk).enumerate() {
                let mitigate = self.decision_buf[i];
                self.session_mut(*node).apply_decision(state.time, mitigate);
                out.push(ServedDecision {
                    node: *node,
                    time: state.time,
                    mitigated: mitigate,
                });
            }
        }
    }

    /// Absorb one round of events into the node sessions and return the decision
    /// requests in node-id order. Large rounds fan the shards out over the
    /// work-stealing pool; the result is identical either way.
    fn observe_round(
        &mut self,
        round: &mut Vec<(NodeId, MergedEvent)>,
    ) -> (Vec<NodeId>, Vec<StateFeatures>) {
        if round.len() < PARALLEL_TICK_THRESHOLD || self.config.shards == 1 {
            let mut nodes = Vec::new();
            let mut states = Vec::new();
            for (node, event) in round.drain(..) {
                if let Some(state) = self.session_mut(node).observe(&event) {
                    nodes.push(node);
                    states.push(state);
                }
            }
            return (nodes, states);
        }

        // Partition the round by shard, fan the shards out (each owns a disjoint set
        // of nodes), then merge the per-shard requests back into node-id order.
        let shard_count = self.shards.len();
        let mut per_shard: Vec<Vec<(NodeId, MergedEvent)>> = vec![Vec::new(); shard_count];
        for (node, event) in round.drain(..) {
            per_shard[shard_index(node, shard_count)].push((node, event));
        }
        let shards = std::mem::take(&mut self.shards);
        let config = &self.config;
        let sampler = &self.sampler;
        let work: Vec<(Shard, Vec<(NodeId, MergedEvent)>)> =
            shards.into_iter().zip(per_shard).collect();
        let done = rayon::execute_owned(work, |(mut shard, events)| {
            let mut requests = Vec::new();
            for (node, event) in events {
                let session = shard.entry(node).or_insert_with(|| {
                    NodeSession::new(
                        node,
                        config.window_start,
                        config.window_end,
                        config.mitigation,
                        config.seed,
                        sampler,
                        config.retention,
                    )
                });
                if let Some(state) = session.observe(&event) {
                    requests.push((node, state));
                }
            }
            (shard, requests)
        });
        let mut requests = Vec::new();
        self.shards = done
            .into_iter()
            .map(|(shard, shard_requests)| {
                requests.extend(shard_requests);
                shard
            })
            .collect();
        // Shards interleave node ids (modulo routing), so restore global node order;
        // ids are unique within a round, making the order — and therefore the batch
        // boundaries — independent of shard count and thread count.
        requests.sort_unstable_by_key(|(node, _)| node.0);
        requests.into_iter().unzip()
    }

    fn session_mut(&mut self, node: NodeId) -> &mut NodeSession {
        let shard = shard_index(node, self.shards.len());
        let config = &self.config;
        let sampler = &self.sampler;
        self.shards[shard].entry(node).or_insert_with(|| {
            NodeSession::new(
                node,
                config.window_start,
                config.window_end,
                config.mitigation,
                config.seed,
                sampler,
                config.retention,
            )
        })
    }

    /// The session of a node, if it has received events.
    pub fn session(&self, node: NodeId) -> Option<&NodeSession> {
        self.shards[shard_index(node, self.shards.len())].get(&node)
    }

    /// Every live session, in node-id order within each shard (shards iterate in
    /// shard order; use this for fleet-wide introspection such as memory accounting,
    /// where per-session order does not matter).
    pub fn sessions(&self) -> impl Iterator<Item = &NodeSession> {
        self.shards.iter().flat_map(|shard| shard.values())
    }

    /// Fleet-wide report, accumulated in node-id order so every floating-point total
    /// is bit-comparable to the offline evaluator's `PolicyRun` over the same
    /// timelines (which merges per-node rollouts in timeline = node-id order, after
    /// charging the policy's training cost once).
    ///
    /// Only flushed ticks are included; flush the final tick first (or ingest via
    /// [`FleetServer::ingest_all`]).
    pub fn report(&self) -> ServeReport {
        let mut sessions: Vec<&NodeSession> = self
            .shards
            .iter()
            .flat_map(|shard| shard.values())
            .collect();
        sessions.sort_unstable_by_key(|s| s.node().0);

        let mut report = ServeReport {
            policy: self.policy.name().to_string(),
            mitigations: 0,
            non_mitigations: 0,
            mitigation_cost: self.policy.training_cost_node_hours(),
            ue_count: 0,
            ue_cost: 0.0,
            events: self.events_ingested,
            retention: self.config.retention,
            per_node: Vec::with_capacity(sessions.len()),
        };
        for session in sessions {
            let non_mitigations = session.non_mitigation_count();
            report.mitigations += session.mitigation_count();
            report.non_mitigations += non_mitigations;
            report.mitigation_cost += session.total_mitigation_cost();
            report.ue_count += session.ue_count();
            report.ue_cost += session.total_ue_cost();
            report.per_node.push(NodeServeReport {
                node: session.node(),
                mitigations: session.mitigation_count(),
                non_mitigations,
                mitigation_cost: session.total_mitigation_cost(),
                ue_count: session.ue_count(),
                ue_cost: session.total_ue_cost(),
                decisions: session.decisions().to_vec(),
                ue_records: session.ue_records().to_vec(),
            });
        }
        report
    }
}

/// Shard routing: node id modulo shard count. The request assembly re-sorts by node
/// id, so the routing function affects only load distribution, never results.
fn shard_index(node: NodeId, shards: usize) -> usize {
    node.0 as usize % shards
}

/// Merge a timeline set into the single fleet-wide, event-time-ordered stream a
/// [`FleetServer`] consumes (time-major; ties broken by node id; a node's equal-time
/// events keep their timeline order — the sort is stable).
pub fn merged_fleet_stream(timelines: &TimelineSet) -> Vec<MergedEvent> {
    let mut events: Vec<MergedEvent> = timelines
        .timelines()
        .iter()
        .flat_map(|t| t.events().iter().cloned())
        .collect();
    events.sort_by_key(|e| (e.time, e.node.0));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use uerl_core::policies::{AlwaysMitigate, NeverMitigate};

    fn event(node: u32, minute: i64, fatal: bool) -> MergedEvent {
        MergedEvent {
            time: SimTime::from_minutes(minute),
            node: NodeId(node),
            ce_count: 1,
            ce_details: Vec::new(),
            ue_warnings: 0,
            boots: 0,
            retired_slots: Vec::new(),
            fatal,
            ue_detector: None,
        }
    }

    fn config() -> ServeConfig {
        ServeConfig::new(
            SimTime::ZERO,
            SimTime::from_days(10),
            MitigationConfig::paper_default(),
            7,
        )
    }

    fn sampler() -> NodeJobSampler {
        let jobs =
            uerl_jobs::JobTraceGenerator::new(uerl_jobs::JobLogConfig::small(16, 10, 3)).generate();
        NodeJobSampler::from_log(&jobs)
    }

    #[test]
    fn decisions_are_served_when_the_tick_closes() {
        let mut server = FleetServer::new(config(), AlwaysMitigate, sampler());
        let mut out = Vec::new();
        server.ingest(event(1, 10, false), &mut out).unwrap();
        server.ingest(event(2, 10, false), &mut out).unwrap();
        assert!(out.is_empty(), "the tick is still open");
        server.ingest(event(1, 11, false), &mut out).unwrap();
        // The t=10 tick flushed: two decisions, node-id order.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].node, NodeId(1));
        assert_eq!(out[1].node, NodeId(2));
        assert!(out.iter().all(|d| d.mitigated));
        server.flush(&mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(server.events_ingested(), 3);
        assert_eq!(server.live_nodes(), 2);
    }

    #[test]
    fn out_of_order_events_per_node_are_rejected() {
        let mut server = FleetServer::new(config(), NeverMitigate, sampler());
        let mut out = Vec::new();
        server.ingest(event(1, 10, false), &mut out).unwrap();
        let err = server.ingest(event(1, 5, false), &mut out).unwrap_err();
        assert_eq!(err.node, NodeId(1));
        assert_eq!(err.time, SimTime::from_minutes(5));
        assert_eq!(err.tick, SimTime::from_minutes(10));
        assert!(err.to_string().contains("out-of-order"));
    }

    #[test]
    fn a_stale_event_from_another_node_is_also_rejected() {
        // The server consumes the *merged* fleet stream, so global event-time order is
        // the ingestion contract (which subsumes the per-node one).
        let mut server = FleetServer::new(config(), NeverMitigate, sampler());
        let mut out = Vec::new();
        server.ingest(event(1, 10, false), &mut out).unwrap();
        assert!(server.ingest(event(2, 9, false), &mut out).is_err());
        // Equal-time events are fine: they join the open tick.
        server.ingest(event(2, 10, false), &mut out).unwrap();
    }

    #[test]
    fn fatal_events_produce_no_decision_but_are_accounted() {
        // Full retention: the test inspects the per-node UE record log.
        let mut server = FleetServer::new(
            config().with_retention(RecordRetention::Full),
            NeverMitigate,
            sampler(),
        );
        let mut out = Vec::new();
        server
            .ingest_all([event(1, 10, false), event(1, 600, true)], &mut out)
            .unwrap();
        assert_eq!(out.len(), 1, "only the non-fatal event is a decision");
        let report = server.report();
        assert_eq!(report.ue_count, 1);
        assert!(report.ue_cost >= 0.0);
        assert_eq!(report.mitigations, 0);
        assert_eq!(report.non_mitigations, 1);
        assert_eq!(report.per_node.len(), 1);
        assert_eq!(report.per_node[0].ue_records.len(), 1);
    }

    #[test]
    fn duplicate_timestamps_for_one_node_are_served_in_rounds() {
        // Two same-minute events of one node: the second decision must see the state
        // after the first decision was applied (the offline replay's order), which the
        // round mechanism guarantees even though both share a tick.
        let mut server = FleetServer::new(
            config().with_retention(RecordRetention::Full),
            AlwaysMitigate,
            sampler(),
        );
        let mut out = Vec::new();
        server
            .ingest_all([event(3, 10, false), event(3, 10, false)], &mut out)
            .unwrap();
        assert_eq!(out.len(), 2);
        let session = server.session(NodeId(3)).unwrap();
        assert_eq!(session.mitigation_count(), 2);
        assert_eq!(session.decisions().len(), 2);
    }

    #[test]
    fn report_accumulates_in_node_id_order_and_charges_training_cost_once() {
        struct Costly;
        impl MitigationPolicy for Costly {
            fn name(&self) -> &str {
                "costly"
            }
            fn decide(&self, _: &StateFeatures) -> bool {
                false
            }
            fn training_cost_node_hours(&self) -> f64 {
                2.5
            }
        }
        let mut server = FleetServer::new(config(), Costly, sampler());
        let mut out = Vec::new();
        server
            .ingest_all(
                [
                    event(5, 10, false),
                    event(1, 11, false),
                    event(3, 12, false),
                ],
                &mut out,
            )
            .unwrap();
        let report = server.report();
        assert_eq!(report.policy, "costly");
        assert!((report.mitigation_cost - 2.5).abs() < 1e-12);
        let ids: Vec<u32> = report.per_node.iter().map(|n| n.node.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert_eq!(report.events, 3);
    }

    #[test]
    fn merged_stream_is_time_ordered_with_node_tiebreak() {
        let timelines = TimelineSet::from_timelines(
            SimTime::ZERO,
            SimTime::from_days(1),
            vec![
                uerl_core::event_stream::NodeTimeline::new(
                    NodeId(2),
                    SimTime::ZERO,
                    SimTime::from_days(1),
                    vec![event(2, 5, false), event(2, 20, false)],
                ),
                uerl_core::event_stream::NodeTimeline::new(
                    NodeId(1),
                    SimTime::ZERO,
                    SimTime::from_days(1),
                    vec![event(1, 5, false), event(1, 30, true)],
                ),
            ],
        );
        let stream = merged_fleet_stream(&timelines);
        let key: Vec<(i64, u32)> = stream.iter().map(|e| (e.time.0, e.node.0)).collect();
        assert_eq!(key, vec![(300, 1), (300, 2), (1200, 2), (1800, 1)]);
    }

    #[test]
    fn for_timelines_accepts_uniform_windows_and_rejects_divergent_ones() {
        let uniform = TimelineSet::from_timelines(
            SimTime::ZERO,
            SimTime::from_days(1),
            vec![uerl_core::event_stream::NodeTimeline::new(
                NodeId(1),
                SimTime::ZERO,
                SimTime::from_days(1),
                vec![event(1, 5, false)],
            )],
        );
        let config = ServeConfig::for_timelines(&uniform, MitigationConfig::paper_default(), 7);
        assert_eq!(config.window_start, SimTime::ZERO);
        assert_eq!(config.window_end, SimTime::from_days(1));

        let divergent = TimelineSet::from_timelines(
            SimTime::ZERO,
            SimTime::from_days(1),
            vec![uerl_core::event_stream::NodeTimeline::new(
                NodeId(1),
                SimTime::from_hours(3), // narrower than the set window
                SimTime::from_days(1),
                vec![event(1, 500, false)],
            )],
        );
        let result = std::panic::catch_unwind(|| {
            ServeConfig::for_timelines(&divergent, MitigationConfig::paper_default(), 7)
        });
        assert!(
            result.is_err(),
            "a timeline window differing from the set's must be rejected"
        );
    }

    #[test]
    fn wide_ticks_take_the_shard_parallel_path_and_match_the_serial_one() {
        // A tick wider than PARALLEL_TICK_THRESHOLD fans the shards out over the pool;
        // a single-shard server always takes the serial path. Both must produce
        // identical decisions, reports and decision order (node-id ascending), and a
        // mixed fatal/non-fatal wide tick must account every fatal exactly once.
        let wide_tick = |minute: i64| -> Vec<MergedEvent> {
            (0..(2 * PARALLEL_TICK_THRESHOLD as u32))
                .map(|node| event(node, minute, node % 9 == 0))
                .collect()
        };
        let run = |shards: usize| {
            let mut server =
                FleetServer::new(config().with_shards(shards), AlwaysMitigate, sampler());
            let mut out = Vec::new();
            for minute in [10, 20, 30] {
                for e in wide_tick(minute) {
                    server.ingest(e, &mut out).unwrap();
                }
            }
            server.flush(&mut out);
            (out, server.report())
        };
        let (serial_out, serial_report) = run(1);
        let (parallel_out, parallel_report) = run(8);
        assert_eq!(serial_out, parallel_out);
        assert_eq!(serial_report, parallel_report);
        let fatal_nodes = (0..(2 * PARALLEL_TICK_THRESHOLD as u32))
            .filter(|n| n % 9 == 0)
            .count() as u64;
        assert_eq!(parallel_report.ue_count, 3 * fatal_nodes);
        // Per tick, decisions come out in node-id order.
        let first_tick: Vec<u32> = parallel_out
            .iter()
            .take_while(|d| d.time == SimTime::from_minutes(10))
            .map(|d| d.node.0)
            .collect();
        assert!(first_tick.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(
            first_tick.len() as u64,
            2 * PARALLEL_TICK_THRESHOLD as u64 - fatal_nodes
        );
    }
}
