//! The fleet server: event-time ticks, shard fan-out and micro-batched inference.
//!
//! [`FleetServer`] consumes the fleet-merged, event-time-ordered stream of per-minute
//! merged error events and serves one mitigation decision per non-fatal event. Events
//! carrying the same timestamp form one **tick**; when a newer timestamp arrives the
//! tick is flushed:
//!
//! 1. the tick's events are routed to their node **shards** (node id modulo shard
//!    count) and the shards absorb them in parallel over the work-stealing pool —
//!    updating each node's incremental [`NodeSession`] and collecting the tick's
//!    decision requests;
//! 2. the requests are assembled in **node-id order** (whatever the shard count or
//!    thread count) and stacked into **micro-batches** of at most
//!    [`ServeConfig::batch_size`] states, each answered by a single batched forward
//!    pass through [`MitigationPolicy::decide_batch`];
//! 3. the decisions are applied to their sessions — paying mitigation costs, moving
//!    the Equation 3 reference points — and emitted in the same node-id order.
//!
//! Because batched Q-inference is bit-identical per row to single-state inference and
//! every reduction (request assembly, decision application, fleet totals) runs in
//! node-id order, the server's decisions and accumulated costs are **bit-identical to
//! the offline evaluator's `run_policy` rollout** of the same timelines — at any batch
//! size, shard count and thread count. The serving-parity suite pins this.

use crate::metrics::{serve_metrics, shadow_cost_gauge};
use crate::session::{NodeSession, Observed};
use std::collections::BTreeMap;
use std::sync::Arc;
use uerl_core::config::MitigationConfig;
use uerl_core::env::UeRecord;
use uerl_core::event_stream::TimelineSet;
use uerl_core::policies::{QuantMode, RlPolicy};
use uerl_core::policy::MitigationPolicy;
use uerl_core::session_core::RecordRetention;
use uerl_core::state::StateFeatures;
use uerl_jobs::schedule::NodeJobSampler;
use uerl_obs::Gauge;
use uerl_trace::log::MergedEvent;
use uerl_trace::types::{NodeId, SimTime};

/// A policy scored counterfactually alongside the served one.
pub type ShadowPolicy = Arc<dyn MitigationPolicy + Send + Sync>;

/// One node shard: the sessions of every node routed to it, keyed (and iterated) in
/// node-id order.
type Shard = BTreeMap<NodeId, NodeSession>;

/// Below this many events, a tick is absorbed serially: the parallel fan-out's
/// dispatch overhead would dominate. The threshold depends only on the tick size, so
/// the serial and parallel paths are taken identically at every thread count — and
/// they produce identical state either way (the per-node work is the same; only the
/// request-assembly order differs, and both end in node-id order).
const PARALLEL_TICK_THRESHOLD: usize = 64;

/// Sample rate of the wall-clock tick-duration span: one tick in this many reads the
/// clock. Most ticks of a per-minute merged stream hold a single event, so timing
/// every tick would make the two `Instant::now` calls a measurable fraction of the
/// tick itself; sampling keeps the histogram representative (it is wall-clock class,
/// excluded from fingerprints) at ~1/8 of the cost.
const TICK_SPAN_SAMPLE: u64 = 8;

/// The internal per-tick flush republishes the cost/regret/pool gauges one tick in
/// this many (an explicit [`FleetServer::flush`] always republishes). The gauge
/// *values* stay event-time deterministic — the cadence is a tick count, never wall
/// clock — and the final state after a stream's closing flush is exact.
const GAUGE_UPDATE_TICKS: u64 = 64;

/// Configuration of a [`FleetServer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Serving window start (anchors feature extraction and job sequences; must match
    /// the offline evaluation window for parity).
    pub window_start: SimTime,
    /// Serving window end (job sequences cover `[window_start, window_end)`).
    pub window_end: SimTime,
    /// Mitigation cost / restartability knobs.
    pub mitigation: MitigationConfig,
    /// Evaluation seed: each node's job sequence derives from `(seed, node id)` only,
    /// the same workload-fairness contract as the offline evaluator.
    pub seed: u64,
    /// Maximum decision requests stacked into one batched forward pass.
    pub batch_size: usize,
    /// Number of node shards the per-node state is partitioned into.
    pub shards: usize,
    /// Numeric path of RL inference ([`ServeConfig::new`] seeds it from `UERL_QUANT`).
    /// The server itself is policy-agnostic; callers apply this to an RL policy via
    /// [`ServeConfig::apply_quant`] before constructing the server.
    pub quant: QuantMode,
    /// Record retention of the node sessions ([`ServeConfig::new`] seeds it from
    /// `UERL_RETENTION`, defaulting to totals-only: a fleet session keeps counters
    /// and cost totals, not per-event logs, so its footprint is O(1) in the node's
    /// event count). Counters, costs and decisions are bit-identical either way.
    pub retention: RecordRetention,
}

impl ServeConfig {
    /// A configuration with the default batching knobs (batch 64, 8 shards).
    pub fn new(
        window_start: SimTime,
        window_end: SimTime,
        mitigation: MitigationConfig,
        seed: u64,
    ) -> Self {
        assert!(
            window_end > window_start,
            "serving window must be non-empty"
        );
        Self {
            window_start,
            window_end,
            mitigation,
            seed,
            batch_size: 64,
            shards: 8,
            quant: QuantMode::from_env(),
            retention: RecordRetention::from_env(),
        }
    }

    /// The configuration for serving a timeline set's period: the set's window, with
    /// every per-node timeline **verified to cover exactly that window**.
    ///
    /// The offline evaluator samples each node's jobs over *that timeline's* window;
    /// the server — which sees a stream, not timelines — samples over its configured
    /// window. The two only coincide (and the bit-parity guarantee only holds) when
    /// every timeline's window equals the set's, which is what `TimelineSet::from_log`
    /// and `TimelineSet::slice` always produce. This constructor makes that
    /// precondition explicit instead of silently serving a divergent workload.
    ///
    /// # Panics
    /// Panics if any timeline's window differs from the set's.
    pub fn for_timelines(timelines: &TimelineSet, mitigation: MitigationConfig, seed: u64) -> Self {
        for timeline in timelines.timelines() {
            assert!(
                timeline.window_start() == timelines.window_start()
                    && timeline.window_end() == timelines.window_end(),
                "timeline of node {} covers [{}, {}) but the set covers [{}, {}): \
                 per-node windows must equal the serving window for offline parity",
                timeline.node().0,
                timeline.window_start().0,
                timeline.window_end().0,
                timelines.window_start().0,
                timelines.window_end().0,
            );
        }
        Self::new(
            timelines.window_start(),
            timelines.window_end(),
            mitigation,
            seed,
        )
    }

    /// Set the micro-batch size (decisions per forward pass).
    ///
    /// # Panics
    /// Panics if `batch_size` is zero.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// Set the shard count.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        self.shards = shards;
        self
    }

    /// Select the RL inference path explicitly (overriding the `UERL_QUANT` default
    /// [`ServeConfig::new`] picked up).
    pub fn with_quant(mut self, quant: QuantMode) -> Self {
        self.quant = quant;
        self
    }

    /// Select the session record retention explicitly (overriding the
    /// `UERL_RETENTION` default [`ServeConfig::new`] picked up). Full retention is
    /// what the parity suites use to compare logs entry for entry; totals-only is
    /// the production default.
    pub fn with_retention(mut self, retention: RecordRetention) -> Self {
        self.retention = retention;
        self
    }

    /// Apply this configuration's quantization mode to an RL serving policy.
    pub fn apply_quant(&self, policy: RlPolicy) -> RlPolicy {
        policy.with_quantization(self.quant)
    }
}

/// One decision served by the fleet server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedDecision {
    /// Node the decision was served for.
    pub node: NodeId,
    /// Timestamp of the event that triggered the decision request.
    pub time: SimTime,
    /// Whether a mitigation was ordered.
    pub mitigated: bool,
}

/// Rejected ingestion: the stream violated the event-time ordering contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfOrderEvent {
    /// Node of the rejected event.
    pub node: NodeId,
    /// Timestamp of the rejected event.
    pub time: SimTime,
    /// The server's current tick time, which the event precedes.
    pub tick: SimTime,
}

impl std::fmt::Display for OutOfOrderEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out-of-order event for node {} at t={}s: the server already advanced to \
             t={}s (event times must be non-decreasing per node, and the merged fleet \
             stream non-decreasing overall)",
            self.node.0, self.time.0, self.tick.0
        )
    }
}

impl std::error::Error for OutOfOrderEvent {}

/// Per-node serving totals (the serving-side mirror of one offline rollout).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeServeReport {
    /// The node.
    pub node: NodeId,
    /// Mitigations ordered on this node.
    pub mitigations: u64,
    /// "Do nothing" decisions served for this node.
    pub non_mitigations: u64,
    /// Node-hours paid for this node's mitigations.
    pub mitigation_cost: f64,
    /// Fatal events accounted on this node.
    pub ue_count: u64,
    /// Node-hours lost to this node's fatal events.
    pub ue_cost: f64,
    /// Every decision served, in event order (empty under totals-only retention).
    pub decisions: Vec<(SimTime, bool)>,
    /// Every fatal event accounted, in event order (empty under totals-only
    /// retention).
    pub ue_records: Vec<UeRecord>,
}

/// Fleet-wide serving totals, accumulated in node-id order (bit-comparable to the
/// offline evaluator's `PolicyRun` for the same timelines and policy).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Name of the serving policy.
    pub policy: String,
    /// Total mitigations ordered.
    pub mitigations: u64,
    /// Total "do nothing" decisions.
    pub non_mitigations: u64,
    /// Node-hours of mitigation actions plus the policy's training cost (charged once,
    /// exactly as the offline cost-benefit accounting does).
    pub mitigation_cost: f64,
    /// Total fatal events accounted.
    pub ue_count: u64,
    /// Node-hours lost to fatal events.
    pub ue_cost: f64,
    /// Events ingested (decision requests + fatals).
    pub events: u64,
    /// Record retention the sessions ran under (totals and counters are identical
    /// in both modes; the per-node logs are populated only under full retention).
    pub retention: RecordRetention,
    /// Per-node breakdowns, in node-id order.
    pub per_node: Vec<NodeServeReport>,
}

impl ServeReport {
    /// Total cost: UE cost plus mitigation (and training) cost.
    pub fn total_cost(&self) -> f64 {
        self.ue_cost + self.mitigation_cost
    }
}

/// The costs one fatal event charged: the served lane's and each shadow lane's.
#[derive(Debug, Clone)]
struct FatalCost {
    node: NodeId,
    ue_cost: f64,
    shadow_ue_costs: Vec<f64>,
}

/// Cumulative cost totals accumulated in served event order (deterministic at any
/// thread, shard and batch configuration — the accumulation order is node-id order
/// within each round).
#[derive(Debug, Clone, Copy, Default)]
struct RunningCost {
    mitigation_cost: f64,
    ue_cost: f64,
}

/// Fleet-wide counterfactual totals of one shadow policy, accumulated in node-id
/// order (bit-comparable to the offline evaluator's `PolicyRun` of the same policy
/// over the same timelines).
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowScore {
    /// Name of the shadow policy.
    pub policy: String,
    /// Mitigations the shadow policy would have ordered.
    pub mitigations: u64,
    /// "Do nothing" decisions the shadow policy would have taken.
    pub non_mitigations: u64,
    /// Counterfactual mitigation node-hours plus the policy's training cost (charged
    /// once, exactly as the offline cost-benefit accounting does).
    pub mitigation_cost: f64,
    /// Fatal events (identical for every lane — fatals are decision-independent in
    /// this counterfactual model; only their *cost* depends on the lane's reference).
    pub ue_count: u64,
    /// Counterfactual node-hours lost to fatal events.
    pub ue_cost: f64,
}

impl ShadowScore {
    /// Total counterfactual cost: UE cost plus mitigation (and training) cost.
    pub fn total_cost(&self) -> f64 {
        self.ue_cost + self.mitigation_cost
    }
}

/// The online mitigation service for a fleet of nodes.
pub struct FleetServer<P: MitigationPolicy> {
    config: ServeConfig,
    policy: P,
    sampler: NodeJobSampler,
    shards: Vec<Shard>,
    tick_time: Option<SimTime>,
    tick_events: Vec<MergedEvent>,
    events_ingested: u64,
    ticks_flushed: u64,
    decision_buf: Vec<bool>,
    shadow_policies: Vec<ShadowPolicy>,
    shadow_gauges: Vec<Arc<Gauge>>,
    served_running: RunningCost,
    shadow_running: Vec<RunningCost>,
}

impl<P: MitigationPolicy> FleetServer<P> {
    /// Create a server. The policy is queried greedily (its training, if any, is
    /// already done); the sampler provides the per-node job sequences.
    pub fn new(config: ServeConfig, policy: P, sampler: NodeJobSampler) -> Self {
        let shards = (0..config.shards).map(|_| BTreeMap::new()).collect();
        Self {
            config,
            policy,
            sampler,
            shards,
            tick_time: None,
            tick_events: Vec::new(),
            events_ingested: 0,
            ticks_flushed: 0,
            decision_buf: Vec::new(),
            shadow_policies: Vec::new(),
            shadow_gauges: Vec::new(),
            served_running: RunningCost::default(),
            shadow_running: Vec::new(),
        }
    }

    /// Attach shadow policies: each is scored counterfactually on the identical
    /// served stream — same events, same feature states, its own Equation 3 cost
    /// reference per node — without influencing any served decision. Their fleet
    /// totals come back through [`FleetServer::shadow_report`] and feed the live
    /// cost-regret gauge.
    ///
    /// # Panics
    /// Panics after the first event was ingested (sessions allocate their lanes at
    /// creation), or if two shadow policies share a name (their metric labels — and
    /// report rows — would collide).
    pub fn with_shadow_policies(mut self, policies: Vec<ShadowPolicy>) -> Self {
        assert!(
            self.events_ingested == 0 && self.live_nodes() == 0,
            "shadow policies must be attached before the first event is ingested"
        );
        for (i, a) in policies.iter().enumerate() {
            for b in policies.iter().skip(i + 1) {
                assert!(
                    a.name() != b.name(),
                    "duplicate shadow policy name {:?}",
                    a.name()
                );
            }
        }
        self.shadow_gauges = policies
            .iter()
            .map(|p| shadow_cost_gauge(p.name()))
            .collect();
        self.shadow_running = vec![RunningCost::default(); policies.len()];
        self.shadow_policies = policies;
        self
    }

    /// The attached shadow policies, lane order.
    pub fn shadow_policies(&self) -> &[ShadowPolicy] {
        &self.shadow_policies
    }

    /// The configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The serving policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Events ingested so far (including those buffered in the open tick).
    pub fn events_ingested(&self) -> u64 {
        self.events_ingested
    }

    /// Nodes with live sessions.
    pub fn live_nodes(&self) -> usize {
        self.shards.iter().map(BTreeMap::len).sum()
    }

    /// Ingest one event of the merged fleet stream. Decisions become available once
    /// the event's tick closes — i.e. when a later-timestamped event arrives (they are
    /// appended to `out`) or the caller flushes explicitly — because a tick's requests
    /// are micro-batched together.
    ///
    /// # Errors
    /// Rejects events that precede the current tick: event times must be
    /// non-decreasing per node, and the fleet-merged stream non-decreasing overall.
    pub fn ingest(
        &mut self,
        event: MergedEvent,
        out: &mut Vec<ServedDecision>,
    ) -> Result<(), OutOfOrderEvent> {
        if let Some(tick) = self.tick_time {
            if event.time < tick {
                serve_metrics().out_of_order.inc();
                return Err(OutOfOrderEvent {
                    node: event.node,
                    time: event.time,
                    tick,
                });
            }
            if event.time > tick {
                self.flush_tick(out);
            }
        }
        self.tick_time = Some(event.time);
        self.events_ingested += 1;
        self.tick_events.push(event);
        Ok(())
    }

    /// Ingest a whole stream, appending every served decision to `out` and flushing
    /// the final tick.
    ///
    /// # Errors
    /// As [`FleetServer::ingest`]; ingestion stops at the first rejected event.
    pub fn ingest_all(
        &mut self,
        events: impl IntoIterator<Item = MergedEvent>,
        out: &mut Vec<ServedDecision>,
    ) -> Result<(), OutOfOrderEvent> {
        for event in events {
            self.ingest(event, out)?;
        }
        self.flush(out);
        Ok(())
    }

    /// Flush the open tick: absorb its events shard-parallel, answer its decision
    /// requests in node-id-ordered micro-batches, apply and emit the decisions.
    /// Called automatically when a later tick starts; call it after the last event of
    /// a stream (or use [`FleetServer::ingest_all`], which does). An explicit flush
    /// also republishes the cost/regret gauges, which the internal per-tick flush
    /// refreshes only every [`GAUGE_UPDATE_TICKS`] ticks to stay off the hot path.
    pub fn flush(&mut self, out: &mut Vec<ServedDecision>) {
        self.flush_tick(out);
        self.update_gauges();
    }

    /// The per-tick flush body (the path `ingest` takes when a newer timestamp rolls
    /// the tick over). Wall-clock tick spans are sampled one tick in
    /// [`TICK_SPAN_SAMPLE`] and the gauges are republished one tick in
    /// [`GAUGE_UPDATE_TICKS`]; every event-time counter and histogram still records
    /// every tick.
    // The `%`-spelled cadence checks stay: swapping them for `is_multiple_of` measured
    // several percent slower on the single-core obs_overhead gate (the zero-divisor
    // branch does not fold away here), and this is the per-tick hot path.
    #[allow(clippy::manual_is_multiple_of)]
    fn flush_tick(&mut self, out: &mut Vec<ServedDecision>) {
        if self.tick_events.is_empty() {
            return;
        }
        let metrics = serve_metrics();
        let _tick_span = (self.ticks_flushed % TICK_SPAN_SAMPLE == 0)
            .then(|| metrics.tick_duration_nanos.span());
        self.ticks_flushed += 1;
        metrics.tick_events.record(self.tick_events.len() as u64);
        metrics.events.add(self.tick_events.len() as u64);
        // Group the tick's events per node, preserving per-node arrival order. A node
        // normally contributes one merged event per tick (the stream is per-minute
        // merged), but duplicates are legal: they are served in *rounds* — one event
        // per node per round — so a second event always sees its node's state after
        // the first event's decision was applied, exactly as the offline replay does.
        let mut per_node: BTreeMap<NodeId, Vec<MergedEvent>> = BTreeMap::new();
        for event in self.tick_events.drain(..) {
            per_node.entry(event.node).or_default().push(event);
        }
        let mut round: Vec<(NodeId, MergedEvent)> = Vec::with_capacity(per_node.len());
        let mut rounds = 0u64;
        while !per_node.is_empty() {
            round.clear();
            for (node, events) in per_node.iter_mut() {
                round.push((*node, events.remove(0)));
            }
            per_node.retain(|_, events| !events.is_empty());
            self.serve_round(&mut round, out);
            rounds += 1;
        }
        if rounds > 1 {
            metrics.duplicate_rounds.add(rounds - 1);
        }
        if self.ticks_flushed % GAUGE_UPDATE_TICKS == 0 {
            self.update_gauges();
        }
    }

    /// Refresh the cost / regret gauges and poll the work-stealing pool counters.
    /// Gauge *values* are event-time deterministic (they mirror the running totals);
    /// the pool statistics are wall-clock scheduler state.
    fn update_gauges(&self) {
        if !uerl_obs::enabled() {
            return;
        }
        let metrics = serve_metrics();
        let served_mitigation =
            self.served_running.mitigation_cost + self.policy.training_cost_node_hours();
        metrics.served_mitigation_cost.set(served_mitigation);
        metrics.served_ue_cost.set(self.served_running.ue_cost);
        let served_total = served_mitigation + self.served_running.ue_cost;
        let mut best_shadow: Option<f64> = None;
        for (lane, gauge) in self.shadow_gauges.iter().enumerate() {
            let total = self.shadow_running[lane].mitigation_cost
                + self.shadow_policies[lane].training_cost_node_hours()
                + self.shadow_running[lane].ue_cost;
            gauge.set(total);
            best_shadow = Some(best_shadow.map_or(total, |b: f64| b.min(total)));
        }
        if let Some(best) = best_shadow {
            metrics.shadow_regret.set(served_total - best);
        }
        let pool = rayon::pool_stats();
        metrics.pool_jobs_executed.set(pool.jobs_executed as f64);
        metrics.pool_steals.set(pool.steals as f64);
        metrics
            .pool_injector_depth_hwm
            .set(pool.injector_depth_hwm as f64);
        metrics
            .pool_deque_depth_hwm
            .set(pool.deque_depth_hwm as f64);
    }

    /// Serve one round (at most one event per node, node-id order): absorb the events,
    /// micro-batch the resulting decision requests, apply and emit the decisions,
    /// then replay the same requests through every shadow lane.
    fn serve_round(
        &mut self,
        round: &mut Vec<(NodeId, MergedEvent)>,
        out: &mut Vec<ServedDecision>,
    ) {
        let (nodes, states, fatals) = self.observe_round(round);
        // Fold the round's fatal costs into the running totals in node-id order
        // (observe_round returns them sorted), keeping the f64 accumulation order —
        // and therefore every gauge bit — independent of shard and thread count.
        for fatal in &fatals {
            self.served_running.ue_cost += fatal.ue_cost;
            for (lane, &cost) in fatal.shadow_ue_costs.iter().enumerate() {
                self.shadow_running[lane].ue_cost += cost;
            }
        }
        let metrics = serve_metrics();
        let batch = self.config.batch_size;
        let mut mitigated = 0u64;
        let mut not_mitigated = 0u64;
        for (node_chunk, state_chunk) in nodes.chunks(batch).zip(states.chunks(batch)) {
            metrics.batch_size.record(state_chunk.len() as u64);
            self.decision_buf.clear();
            self.policy
                .decide_batch(state_chunk, &mut self.decision_buf);
            debug_assert_eq!(self.decision_buf.len(), state_chunk.len());
            for (i, (node, state)) in node_chunk.iter().zip(state_chunk).enumerate() {
                let mitigate = self.decision_buf[i];
                let paid = self.session_mut(*node).apply_decision(state.time, mitigate);
                self.served_running.mitigation_cost += paid;
                if mitigate {
                    mitigated += 1;
                } else {
                    not_mitigated += 1;
                }
                out.push(ServedDecision {
                    node: *node,
                    time: state.time,
                    mitigated: mitigate,
                });
            }
        }
        if mitigated > 0 {
            metrics.decisions_mitigate.add(mitigated);
        }
        if not_mitigated > 0 {
            metrics.decisions_none.add(not_mitigated);
        }
        // Shadow lanes: decide the identical requests counterfactually. The lane's
        // decision state re-derives only the Equation 3 fields from the lane's own
        // reference; every other feature is event-derived and shared. Lanes run after
        // the served decisions but read none of their effects.
        for lane in 0..self.shadow_policies.len() {
            let policy = Arc::clone(&self.shadow_policies[lane]);
            let shadow_states: Vec<StateFeatures> = nodes
                .iter()
                .zip(&states)
                .map(|(&node, served)| {
                    self.session(node)
                        .expect("request node has a live session")
                        .shadow_state(lane, served)
                })
                .collect();
            for (node_chunk, state_chunk) in nodes.chunks(batch).zip(shadow_states.chunks(batch)) {
                self.decision_buf.clear();
                policy.decide_batch(state_chunk, &mut self.decision_buf);
                debug_assert_eq!(self.decision_buf.len(), state_chunk.len());
                for (i, (node, state)) in node_chunk.iter().zip(state_chunk).enumerate() {
                    let mitigate = self.decision_buf[i];
                    let paid = self
                        .session_mut(*node)
                        .apply_shadow_decision(lane, state.time, mitigate);
                    self.shadow_running[lane].mitigation_cost += paid;
                }
            }
        }
    }

    /// Absorb one round of events into the node sessions and return the decision
    /// requests — and the fatal costs paid — in node-id order. Large rounds fan the
    /// shards out over the work-stealing pool; the result is identical either way.
    #[allow(clippy::type_complexity)]
    fn observe_round(
        &mut self,
        round: &mut Vec<(NodeId, MergedEvent)>,
    ) -> (Vec<NodeId>, Vec<StateFeatures>, Vec<FatalCost>) {
        if round.len() < PARALLEL_TICK_THRESHOLD || self.config.shards == 1 {
            let mut nodes = Vec::new();
            let mut states = Vec::new();
            let mut fatals = Vec::new();
            for (node, event) in round.drain(..) {
                match self.session_mut(node).observe(&event) {
                    Observed::Request(state) => {
                        nodes.push(node);
                        states.push(state);
                    }
                    Observed::Fatal {
                        ue_cost,
                        shadow_ue_costs,
                    } => fatals.push(FatalCost {
                        node,
                        ue_cost,
                        shadow_ue_costs,
                    }),
                }
            }
            return (nodes, states, fatals);
        }

        // Partition the round by shard, fan the shards out (each owns a disjoint set
        // of nodes), then merge the per-shard requests back into node-id order.
        let shard_count = self.shards.len();
        let mut per_shard: Vec<Vec<(NodeId, MergedEvent)>> = vec![Vec::new(); shard_count];
        for (node, event) in round.drain(..) {
            per_shard[shard_index(node, shard_count)].push((node, event));
        }
        let shards = std::mem::take(&mut self.shards);
        let config = &self.config;
        let sampler = &self.sampler;
        let shadow_lanes = self.shadow_policies.len();
        let work: Vec<(Shard, Vec<(NodeId, MergedEvent)>)> =
            shards.into_iter().zip(per_shard).collect();
        let done = rayon::execute_owned(work, |(mut shard, events)| {
            let mut requests = Vec::new();
            let mut fatals = Vec::new();
            for (node, event) in events {
                let session = shard.entry(node).or_insert_with(|| {
                    NodeSession::new(
                        node,
                        config.window_start,
                        config.window_end,
                        config.mitigation,
                        config.seed,
                        sampler,
                        config.retention,
                        shadow_lanes,
                    )
                });
                match session.observe(&event) {
                    Observed::Request(state) => requests.push((node, state)),
                    Observed::Fatal {
                        ue_cost,
                        shadow_ue_costs,
                    } => fatals.push(FatalCost {
                        node,
                        ue_cost,
                        shadow_ue_costs,
                    }),
                }
            }
            (shard, requests, fatals)
        });
        let mut requests = Vec::new();
        let mut fatals = Vec::new();
        self.shards = done
            .into_iter()
            .map(|(shard, shard_requests, shard_fatals)| {
                requests.extend(shard_requests);
                fatals.extend(shard_fatals);
                shard
            })
            .collect();
        // Shards interleave node ids (modulo routing), so restore global node order;
        // ids are unique within a round, making the order — and therefore the batch
        // boundaries and the cost-accumulation order — independent of shard count and
        // thread count.
        requests.sort_unstable_by_key(|(node, _)| node.0);
        fatals.sort_unstable_by_key(|fatal| fatal.node.0);
        let (nodes, states) = requests.into_iter().unzip();
        (nodes, states, fatals)
    }

    fn session_mut(&mut self, node: NodeId) -> &mut NodeSession {
        let shard = shard_index(node, self.shards.len());
        let config = &self.config;
        let sampler = &self.sampler;
        let shadow_lanes = self.shadow_policies.len();
        self.shards[shard].entry(node).or_insert_with(|| {
            NodeSession::new(
                node,
                config.window_start,
                config.window_end,
                config.mitigation,
                config.seed,
                sampler,
                config.retention,
                shadow_lanes,
            )
        })
    }

    /// The session of a node, if it has received events.
    pub fn session(&self, node: NodeId) -> Option<&NodeSession> {
        self.shards[shard_index(node, self.shards.len())].get(&node)
    }

    /// Every live session, in node-id order within each shard (shards iterate in
    /// shard order; use this for fleet-wide introspection such as memory accounting,
    /// where per-session order does not matter).
    pub fn sessions(&self) -> impl Iterator<Item = &NodeSession> {
        self.shards.iter().flat_map(|shard| shard.values())
    }

    /// Fleet-wide report, accumulated in node-id order so every floating-point total
    /// is bit-comparable to the offline evaluator's `PolicyRun` over the same
    /// timelines (which merges per-node rollouts in timeline = node-id order, after
    /// charging the policy's training cost once).
    ///
    /// Only flushed ticks are included; flush the final tick first (or ingest via
    /// [`FleetServer::ingest_all`]).
    pub fn report(&self) -> ServeReport {
        let mut sessions: Vec<&NodeSession> = self
            .shards
            .iter()
            .flat_map(|shard| shard.values())
            .collect();
        sessions.sort_unstable_by_key(|s| s.node().0);

        let mut report = ServeReport {
            policy: self.policy.name().to_string(),
            mitigations: 0,
            non_mitigations: 0,
            mitigation_cost: self.policy.training_cost_node_hours(),
            ue_count: 0,
            ue_cost: 0.0,
            events: self.events_ingested,
            retention: self.config.retention,
            per_node: Vec::with_capacity(sessions.len()),
        };
        for session in sessions {
            let non_mitigations = session.non_mitigation_count();
            report.mitigations += session.mitigation_count();
            report.non_mitigations += non_mitigations;
            report.mitigation_cost += session.total_mitigation_cost();
            report.ue_count += session.ue_count();
            report.ue_cost += session.total_ue_cost();
            report.per_node.push(NodeServeReport {
                node: session.node(),
                mitigations: session.mitigation_count(),
                non_mitigations,
                mitigation_cost: session.total_mitigation_cost(),
                ue_count: session.ue_count(),
                ue_cost: session.total_ue_cost(),
                decisions: session.decisions().to_vec(),
                ue_records: session.ue_records().to_vec(),
            });
        }
        report
    }

    /// Counterfactual fleet totals of every shadow policy, lane order. Accumulated
    /// per node in node-id order after charging each policy's training cost once —
    /// the exact merge order of the offline evaluator's `run_policy` — so every float
    /// is bit-comparable to an offline rollout of that policy over the same
    /// timelines. Only flushed ticks are included.
    pub fn shadow_report(&self) -> Vec<ShadowScore> {
        let mut sessions: Vec<&NodeSession> = self
            .shards
            .iter()
            .flat_map(|shard| shard.values())
            .collect();
        sessions.sort_unstable_by_key(|s| s.node().0);

        self.shadow_policies
            .iter()
            .enumerate()
            .map(|(lane, policy)| {
                let mut score = ShadowScore {
                    policy: policy.name().to_string(),
                    mitigations: 0,
                    non_mitigations: 0,
                    mitigation_cost: policy.training_cost_node_hours(),
                    ue_count: 0,
                    ue_cost: 0.0,
                };
                for session in &sessions {
                    let account = session.shadow_account(lane);
                    score.mitigations += account.mitigation_count();
                    score.non_mitigations += account.non_mitigation_count();
                    score.mitigation_cost += account.total_mitigation_cost();
                    score.ue_count += account.ue_count();
                    score.ue_cost += account.total_ue_cost();
                }
                score
            })
            .collect()
    }
}

/// Shard routing: node id modulo shard count. The request assembly re-sorts by node
/// id, so the routing function affects only load distribution, never results.
fn shard_index(node: NodeId, shards: usize) -> usize {
    node.0 as usize % shards
}

/// Merge a timeline set into the single fleet-wide, event-time-ordered stream a
/// [`FleetServer`] consumes (time-major; ties broken by node id; a node's equal-time
/// events keep their timeline order — the sort is stable).
pub fn merged_fleet_stream(timelines: &TimelineSet) -> Vec<MergedEvent> {
    let mut events: Vec<MergedEvent> = timelines
        .timelines()
        .iter()
        .flat_map(|t| t.events().iter().cloned())
        .collect();
    events.sort_by_key(|e| (e.time, e.node.0));
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use uerl_core::policies::{AlwaysMitigate, NeverMitigate};

    fn event(node: u32, minute: i64, fatal: bool) -> MergedEvent {
        MergedEvent {
            time: SimTime::from_minutes(minute),
            node: NodeId(node),
            ce_count: 1,
            ce_details: Vec::new(),
            ue_warnings: 0,
            boots: 0,
            retired_slots: Vec::new(),
            fatal,
            ue_detector: None,
        }
    }

    fn config() -> ServeConfig {
        ServeConfig::new(
            SimTime::ZERO,
            SimTime::from_days(10),
            MitigationConfig::paper_default(),
            7,
        )
    }

    fn sampler() -> NodeJobSampler {
        let jobs =
            uerl_jobs::JobTraceGenerator::new(uerl_jobs::JobLogConfig::small(16, 10, 3)).generate();
        NodeJobSampler::from_log(&jobs)
    }

    #[test]
    fn decisions_are_served_when_the_tick_closes() {
        let mut server = FleetServer::new(config(), AlwaysMitigate, sampler());
        let mut out = Vec::new();
        server.ingest(event(1, 10, false), &mut out).unwrap();
        server.ingest(event(2, 10, false), &mut out).unwrap();
        assert!(out.is_empty(), "the tick is still open");
        server.ingest(event(1, 11, false), &mut out).unwrap();
        // The t=10 tick flushed: two decisions, node-id order.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].node, NodeId(1));
        assert_eq!(out[1].node, NodeId(2));
        assert!(out.iter().all(|d| d.mitigated));
        server.flush(&mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(server.events_ingested(), 3);
        assert_eq!(server.live_nodes(), 2);
    }

    #[test]
    fn out_of_order_events_per_node_are_rejected() {
        let mut server = FleetServer::new(config(), NeverMitigate, sampler());
        let mut out = Vec::new();
        server.ingest(event(1, 10, false), &mut out).unwrap();
        let err = server.ingest(event(1, 5, false), &mut out).unwrap_err();
        assert_eq!(err.node, NodeId(1));
        assert_eq!(err.time, SimTime::from_minutes(5));
        assert_eq!(err.tick, SimTime::from_minutes(10));
        assert!(err.to_string().contains("out-of-order"));
    }

    #[test]
    fn a_stale_event_from_another_node_is_also_rejected() {
        // The server consumes the *merged* fleet stream, so global event-time order is
        // the ingestion contract (which subsumes the per-node one).
        let mut server = FleetServer::new(config(), NeverMitigate, sampler());
        let mut out = Vec::new();
        server.ingest(event(1, 10, false), &mut out).unwrap();
        assert!(server.ingest(event(2, 9, false), &mut out).is_err());
        // Equal-time events are fine: they join the open tick.
        server.ingest(event(2, 10, false), &mut out).unwrap();
    }

    #[test]
    fn fatal_events_produce_no_decision_but_are_accounted() {
        // Full retention: the test inspects the per-node UE record log.
        let mut server = FleetServer::new(
            config().with_retention(RecordRetention::Full),
            NeverMitigate,
            sampler(),
        );
        let mut out = Vec::new();
        server
            .ingest_all([event(1, 10, false), event(1, 600, true)], &mut out)
            .unwrap();
        assert_eq!(out.len(), 1, "only the non-fatal event is a decision");
        let report = server.report();
        assert_eq!(report.ue_count, 1);
        assert!(report.ue_cost >= 0.0);
        assert_eq!(report.mitigations, 0);
        assert_eq!(report.non_mitigations, 1);
        assert_eq!(report.per_node.len(), 1);
        assert_eq!(report.per_node[0].ue_records.len(), 1);
    }

    #[test]
    fn duplicate_timestamps_for_one_node_are_served_in_rounds() {
        // Two same-minute events of one node: the second decision must see the state
        // after the first decision was applied (the offline replay's order), which the
        // round mechanism guarantees even though both share a tick.
        let mut server = FleetServer::new(
            config().with_retention(RecordRetention::Full),
            AlwaysMitigate,
            sampler(),
        );
        let mut out = Vec::new();
        server
            .ingest_all([event(3, 10, false), event(3, 10, false)], &mut out)
            .unwrap();
        assert_eq!(out.len(), 2);
        let session = server.session(NodeId(3)).unwrap();
        assert_eq!(session.mitigation_count(), 2);
        assert_eq!(session.decisions().len(), 2);
    }

    #[test]
    fn report_accumulates_in_node_id_order_and_charges_training_cost_once() {
        struct Costly;
        impl MitigationPolicy for Costly {
            fn name(&self) -> &str {
                "costly"
            }
            fn decide(&self, _: &StateFeatures) -> bool {
                false
            }
            fn training_cost_node_hours(&self) -> f64 {
                2.5
            }
        }
        let mut server = FleetServer::new(config(), Costly, sampler());
        let mut out = Vec::new();
        server
            .ingest_all(
                [
                    event(5, 10, false),
                    event(1, 11, false),
                    event(3, 12, false),
                ],
                &mut out,
            )
            .unwrap();
        let report = server.report();
        assert_eq!(report.policy, "costly");
        assert!((report.mitigation_cost - 2.5).abs() < 1e-12);
        let ids: Vec<u32> = report.per_node.iter().map(|n| n.node.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert_eq!(report.events, 3);
    }

    #[test]
    fn merged_stream_is_time_ordered_with_node_tiebreak() {
        let timelines = TimelineSet::from_timelines(
            SimTime::ZERO,
            SimTime::from_days(1),
            vec![
                uerl_core::event_stream::NodeTimeline::new(
                    NodeId(2),
                    SimTime::ZERO,
                    SimTime::from_days(1),
                    vec![event(2, 5, false), event(2, 20, false)],
                ),
                uerl_core::event_stream::NodeTimeline::new(
                    NodeId(1),
                    SimTime::ZERO,
                    SimTime::from_days(1),
                    vec![event(1, 5, false), event(1, 30, true)],
                ),
            ],
        );
        let stream = merged_fleet_stream(&timelines);
        let key: Vec<(i64, u32)> = stream.iter().map(|e| (e.time.0, e.node.0)).collect();
        assert_eq!(key, vec![(300, 1), (300, 2), (1200, 2), (1800, 1)]);
    }

    #[test]
    fn for_timelines_accepts_uniform_windows_and_rejects_divergent_ones() {
        let uniform = TimelineSet::from_timelines(
            SimTime::ZERO,
            SimTime::from_days(1),
            vec![uerl_core::event_stream::NodeTimeline::new(
                NodeId(1),
                SimTime::ZERO,
                SimTime::from_days(1),
                vec![event(1, 5, false)],
            )],
        );
        let config = ServeConfig::for_timelines(&uniform, MitigationConfig::paper_default(), 7);
        assert_eq!(config.window_start, SimTime::ZERO);
        assert_eq!(config.window_end, SimTime::from_days(1));

        let divergent = TimelineSet::from_timelines(
            SimTime::ZERO,
            SimTime::from_days(1),
            vec![uerl_core::event_stream::NodeTimeline::new(
                NodeId(1),
                SimTime::from_hours(3), // narrower than the set window
                SimTime::from_days(1),
                vec![event(1, 500, false)],
            )],
        );
        let result = std::panic::catch_unwind(|| {
            ServeConfig::for_timelines(&divergent, MitigationConfig::paper_default(), 7)
        });
        assert!(
            result.is_err(),
            "a timeline window differing from the set's must be rejected"
        );
    }

    #[test]
    fn wide_ticks_take_the_shard_parallel_path_and_match_the_serial_one() {
        // A tick wider than PARALLEL_TICK_THRESHOLD fans the shards out over the pool;
        // a single-shard server always takes the serial path. Both must produce
        // identical decisions, reports and decision order (node-id ascending), and a
        // mixed fatal/non-fatal wide tick must account every fatal exactly once.
        let wide_tick = |minute: i64| -> Vec<MergedEvent> {
            (0..(2 * PARALLEL_TICK_THRESHOLD as u32))
                .map(|node| event(node, minute, node % 9 == 0))
                .collect()
        };
        let run = |shards: usize| {
            let mut server =
                FleetServer::new(config().with_shards(shards), AlwaysMitigate, sampler());
            let mut out = Vec::new();
            for minute in [10, 20, 30] {
                for e in wide_tick(minute) {
                    server.ingest(e, &mut out).unwrap();
                }
            }
            server.flush(&mut out);
            (out, server.report())
        };
        let (serial_out, serial_report) = run(1);
        let (parallel_out, parallel_report) = run(8);
        assert_eq!(serial_out, parallel_out);
        assert_eq!(serial_report, parallel_report);
        let fatal_nodes = (0..(2 * PARALLEL_TICK_THRESHOLD as u32))
            .filter(|n| n % 9 == 0)
            .count() as u64;
        assert_eq!(parallel_report.ue_count, 3 * fatal_nodes);
        // Per tick, decisions come out in node-id order.
        let first_tick: Vec<u32> = parallel_out
            .iter()
            .take_while(|d| d.time == SimTime::from_minutes(10))
            .map(|d| d.node.0)
            .collect();
        assert!(first_tick.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(
            first_tick.len() as u64,
            2 * PARALLEL_TICK_THRESHOLD as u64 - fatal_nodes
        );
    }

    #[test]
    fn shadow_lanes_score_baselines_on_the_served_stream() {
        // Serve NeverMitigate with Always/Never shadows. The "never" lane sees the
        // exact stream the served policy sees, so its score must equal the served
        // report; the "always" lane must pay one mitigation per decision. The scores
        // must be identical on the serial and shard-parallel paths.
        let run = |shards: usize| {
            let mut server =
                FleetServer::new(config().with_shards(shards), NeverMitigate, sampler())
                    .with_shadow_policies(vec![
                        Arc::new(AlwaysMitigate) as ShadowPolicy,
                        Arc::new(NeverMitigate) as ShadowPolicy,
                    ]);
            let mut out = Vec::new();
            let events: Vec<MergedEvent> = (10..20)
                .flat_map(|minute| {
                    (0..(2 * PARALLEL_TICK_THRESHOLD as u32))
                        .map(move |node| event(node, minute * 60, node % 13 == 0 && minute == 15))
                })
                .collect();
            server.ingest_all(events, &mut out).unwrap();
            server.flush(&mut out);
            (server.report(), server.shadow_report())
        };
        let (report, shadows) = run(1);
        let (_, shadows_parallel) = run(8);
        assert_eq!(shadows, shadows_parallel);

        assert_eq!(shadows.len(), 2);
        let always = &shadows[0];
        let never = &shadows[1];
        assert_eq!(always.policy, "Always-mitigate");
        assert_eq!(never.policy, "Never-mitigate");

        // The "never" lane replays the served policy exactly.
        assert_eq!(never.mitigations, report.mitigations);
        assert_eq!(never.non_mitigations, report.non_mitigations);
        assert_eq!(never.ue_count, report.ue_count);
        assert_eq!(never.ue_cost.to_bits(), report.ue_cost.to_bits());
        assert_eq!(
            never.mitigation_cost.to_bits(),
            report.mitigation_cost.to_bits()
        );

        // The "always" lane mitigated every decision and paid for each one.
        assert_eq!(always.non_mitigations, 0);
        assert_eq!(
            always.mitigations,
            report.mitigations + report.non_mitigations
        );
        assert!(always.mitigation_cost > 0.0);
        assert_eq!(always.ue_count, report.ue_count);
        // Mitigation resets the UE reference point, so the always lane cannot lose
        // more node-hours to the fatals than the never lane.
        assert!(always.ue_cost <= never.ue_cost);
    }

    #[test]
    fn shadow_policies_must_have_distinct_names() {
        let server = FleetServer::new(config(), NeverMitigate, sampler());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            server.with_shadow_policies(vec![
                Arc::new(NeverMitigate) as ShadowPolicy,
                Arc::new(NeverMitigate) as ShadowPolicy,
            ])
        }));
        assert!(result.is_err(), "duplicate shadow names must be rejected");
    }
}
