//! Per-node serving sessions: the incremental, push-mode mirror of the evaluation-mode
//! [`uerl_core::env::MitigationEnv`].
//!
//! The offline environment *pulls* events from a complete timeline; a serving session
//! is *pushed* one event at a time as the fleet produces them, keeping exactly the
//! state the environment would hold at the same point: the incremental
//! [`FeatureExtractor`], and the same [`SessionCore`] accounting type the environment
//! itself wraps — the node's assigned job sequence, the mitigation reference point and
//! the running cost accounting all live in that one shared type, so push mode and pull
//! mode *cannot* drift apart. The event-for-event equivalence — same extractor
//! updates, same Equation 3 cost reference, same fatal accounting, in the same order —
//! is what makes served decisions and accumulated costs **bit-identical** to an
//! offline [`run_policy`-style] rollout of the same timeline, and it is pinned by the
//! serving-parity test suite.
//!
//! A session is O(window) + O(1): the extractor's feature history is a ring buffer
//! bounded by the 1-hour lookback, and with [`RecordRetention::TotalsOnly`] (the
//! server's default) the accounting keeps counters and cost totals instead of
//! per-event logs — so a node session's footprint does not grow with the length of
//! the node's event stream.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uerl_core::config::MitigationConfig;
use uerl_core::env::UeRecord;
use uerl_core::features::FeatureExtractor;
use uerl_core::session_core::{CostAccount, RecordRetention, SessionCore};
use uerl_core::state::StateFeatures;
use uerl_jobs::schedule::{node_workload_seed, JobSequence, NodeJobSampler};
use uerl_trace::log::MergedEvent;
use uerl_trace::types::{NodeId, SimTime};

/// The outcome of absorbing one event into a [`NodeSession`].
#[derive(Debug, Clone)]
pub enum Observed {
    /// A non-fatal event: the decision request to resolve through the serving policy.
    Request(StateFeatures),
    /// A fatal event, accounted immediately: the served lane's UE cost and each
    /// shadow lane's counterfactual UE cost (lane order), so the server can fold them
    /// into its running totals in a deterministic order.
    Fatal {
        /// Equation 3 accrual paid by the served lane.
        ue_cost: f64,
        /// Equation 3 accrual each shadow lane paid against its own reference point.
        shadow_ue_costs: Vec<f64>,
    },
}

/// The live state of one node in the serving fleet.
///
/// Created lazily on the node's first event; the job sequence is drawn from the same
/// `(seed, node id)`-derived RNG the offline evaluator uses ([`node_workload_seed`]),
/// so the workload — and therefore every cost — matches the offline replay exactly.
#[derive(Debug, Clone)]
pub struct NodeSession {
    node: NodeId,
    extractor: FeatureExtractor,
    core: SessionCore,
    /// One counterfactual cost lane per shadow policy, all sharing the node's job
    /// sequence (shadow scoring is O(1) per lane, never a second session). Lanes run
    /// the same [`CostAccount`] rules as the served lane, always totals-only.
    shadows: Vec<CostAccount>,
}

impl NodeSession {
    /// Create the session for a node: feature extractor anchored at the serving
    /// window's start, job sequence sampled from the node's workload seed, plus
    /// `shadow_lanes` zeroed counterfactual cost lanes.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: NodeId,
        window_start: SimTime,
        window_end: SimTime,
        config: MitigationConfig,
        seed: u64,
        sampler: &NodeJobSampler,
        retention: RecordRetention,
        shadow_lanes: usize,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(node_workload_seed(seed, node));
        let jobs: JobSequence = sampler.sample_sequence(window_start, window_end, &mut rng);
        Self {
            node,
            extractor: FeatureExtractor::new(node, window_start),
            core: SessionCore::new(jobs, config, retention),
            shadows: vec![CostAccount::new(); shadow_lanes],
        }
    }

    /// The node this session tracks.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The record-retention mode of this session.
    pub fn retention(&self) -> RecordRetention {
        self.core.retention()
    }

    /// Decisions applied so far (mitigations plus "do nothing"s).
    pub fn decision_count(&self) -> u64 {
        self.core.decision_count()
    }

    /// Number of mitigation actions taken.
    pub fn mitigation_count(&self) -> u64 {
        self.core.mitigation_count()
    }

    /// Number of "do nothing" decisions taken (a counter, so it is exact under
    /// totals-only retention too).
    pub fn non_mitigation_count(&self) -> u64 {
        self.core.non_mitigation_count()
    }

    /// Node-hours spent on mitigation actions.
    pub fn total_mitigation_cost(&self) -> f64 {
        self.core.total_mitigation_cost()
    }

    /// Number of fatal events accounted.
    pub fn ue_count(&self) -> u64 {
        self.core.ue_count()
    }

    /// Node-hours lost to fatal events.
    pub fn total_ue_cost(&self) -> f64 {
        self.core.total_ue_cost()
    }

    /// Every decision served so far: `(event time, mitigated)`, in event order (empty
    /// under [`RecordRetention::TotalsOnly`]).
    pub fn decisions(&self) -> &[(SimTime, bool)] {
        self.core.decisions()
    }

    /// Every fatal event accounted so far, in event order (empty under
    /// [`RecordRetention::TotalsOnly`]).
    pub fn ue_records(&self) -> &[UeRecord] {
        self.core.ue_records()
    }

    /// Entries currently held in the extractor's feature-history ring buffer
    /// (bounded by the 1-hour lookback window, never by the stream length).
    pub fn history_len(&self) -> usize {
        self.extractor.history_len()
    }

    /// Approximate per-session heap footprint in bytes: the struct itself, the
    /// extractor's ring buffer and location sets, the retained logs (zero under
    /// totals-only retention) and the sampled job sequence. A bench-grade estimate.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.extractor.approx_heap_bytes()
            + self.core.approx_log_bytes()
            + self.core.jobs().len() * std::mem::size_of::<uerl_jobs::schedule::ScheduledJob>()
            + self.shadows.capacity() * std::mem::size_of::<CostAccount>()
    }

    /// Absorb one event of this node (events must arrive in time order — the server
    /// enforces it on the merged stream).
    ///
    /// A fatal event is accounted immediately — on the served lane through the shared
    /// session core and on every shadow lane against its own Equation 3 reference —
    /// and produces no decision; the paid costs are returned so the server can fold
    /// them into its running totals deterministically. A non-fatal event updates the
    /// (decision-independent) feature state and returns the [`StateFeatures`]
    /// snapshot of the new decision request, which the server resolves through the
    /// (micro-batched) policy and then applies via [`NodeSession::apply_decision`].
    pub fn observe(&mut self, event: &MergedEvent) -> Observed {
        if event.fatal {
            let core = &self.core;
            let shadow_ue_costs = self
                .shadows
                .iter_mut()
                .map(|lane| {
                    lane.account_fatal(
                        core.jobs(),
                        core.config().restartable,
                        RecordRetention::TotalsOnly,
                        event.time,
                    )
                })
                .collect();
            let ue_cost = self.core.account_fatal(event.time);
            self.extractor.update(event);
            Observed::Fatal {
                ue_cost,
                shadow_ue_costs,
            }
        } else {
            self.extractor.update(event);
            let (potential, job_nodes) = self.core.potential_cost_at(event.time);
            Observed::Request(self.extractor.snapshot(potential, job_nodes))
        }
    }

    /// Apply a resolved decision for the request produced at `time`: record it and, if
    /// it mitigates, pay the mitigation cost and reset the cost reference point.
    /// Returns the node-hours paid (0 for "do nothing").
    pub fn apply_decision(&mut self, time: SimTime, mitigate: bool) -> f64 {
        self.core.apply_decision(time, mitigate)
    }

    /// The counterfactual decision state of shadow lane `lane` for a served request:
    /// the served snapshot with `potential_ue_cost` / `job_nodes` re-derived from the
    /// lane's *own* mitigation reference. Every other feature is decision-independent
    /// (the extractor sees only events), so this state is bit-identical to what an
    /// offline rollout of the shadow policy would have seen at the same event.
    pub fn shadow_state(&self, lane: usize, served: &StateFeatures) -> StateFeatures {
        let (potential, job_nodes) = self.shadows[lane].potential_cost_at(
            self.core.jobs(),
            self.core.config().restartable,
            served.time,
        );
        let mut state = served.clone();
        state.potential_ue_cost = potential;
        state.job_nodes = job_nodes;
        state
    }

    /// Apply shadow lane `lane`'s own decision for the request produced at `time`.
    /// Returns the node-hours the lane paid (0 for "do nothing").
    pub fn apply_shadow_decision(&mut self, lane: usize, time: SimTime, mitigate: bool) -> f64 {
        self.shadows[lane].apply_decision(
            time,
            mitigate,
            self.core.config().mitigation_cost_node_hours(),
            RecordRetention::TotalsOnly,
        )
    }

    /// The counterfactual cost account of shadow lane `lane`.
    pub fn shadow_account(&self, lane: usize) -> &CostAccount {
        &self.shadows[lane]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uerl_core::env::MitigationEnv;
    use uerl_core::event_stream::NodeTimeline;
    use uerl_jobs::{JobLogConfig, JobTraceGenerator};
    use uerl_trace::generator::{SyntheticLogConfig, TraceGenerator};
    use uerl_trace::reduction::preprocess;

    /// Pushing a timeline through a session must reproduce the evaluation-mode
    /// environment bit-for-bit under any fixed decision rule — under full retention
    /// (log-for-log) and totals-only retention (every counter and cost bit).
    #[test]
    fn pushed_session_matches_the_pull_mode_environment_bit_for_bit() {
        let log = TraceGenerator::new(SyntheticLogConfig::small(20, 60, 5)).generate();
        let timelines = uerl_core::event_stream::TimelineSet::from_log(&preprocess(&log));
        let jobs = JobTraceGenerator::new(JobLogConfig::small(64, 30, 5)).generate();
        let sampler = NodeJobSampler::from_log(&jobs);
        let config = MitigationConfig::paper_default();
        let seed = 77u64;
        // A state-dependent (but policy-free) decision rule exercises both branches.
        let rule = |s: &StateFeatures| s.potential_ue_cost > 10.0;

        for timeline in timelines.timelines() {
            let offline = replay_offline(timeline, &sampler, config, seed, rule);
            let replay = |retention: RecordRetention| {
                let mut session = NodeSession::new(
                    timeline.node(),
                    timeline.window_start(),
                    timeline.window_end(),
                    config,
                    seed,
                    &sampler,
                    retention,
                    0,
                );
                for event in timeline.events() {
                    if let Observed::Request(state) = session.observe(event) {
                        let mitigate = rule(&state);
                        session.apply_decision(state.time, mitigate);
                    }
                }
                session
            };

            for retention in [RecordRetention::Full, RecordRetention::TotalsOnly] {
                let session = replay(retention);
                assert_eq!(session.mitigation_count(), offline.mitigation_count());
                assert_eq!(
                    session.non_mitigation_count(),
                    offline.non_mitigation_count()
                );
                assert_eq!(session.ue_count(), offline.ue_count());
                assert_eq!(
                    session.total_mitigation_cost().to_bits(),
                    offline.total_mitigation_cost().to_bits(),
                    "mitigation cost diverged on node {:?}",
                    timeline.node()
                );
                assert_eq!(
                    session.total_ue_cost().to_bits(),
                    offline.total_ue_cost().to_bits(),
                    "UE cost diverged on node {:?}",
                    timeline.node()
                );
                match retention {
                    RecordRetention::Full => {
                        assert_eq!(session.decisions(), offline.decisions());
                        assert_eq!(session.ue_records(), offline.ue_records());
                    }
                    RecordRetention::TotalsOnly => {
                        assert!(session.decisions().is_empty());
                        assert!(session.ue_records().is_empty());
                    }
                }
            }
        }
    }

    fn replay_offline(
        timeline: &NodeTimeline,
        sampler: &NodeJobSampler,
        config: MitigationConfig,
        seed: u64,
        rule: impl Fn(&StateFeatures) -> bool,
    ) -> MitigationEnv {
        let mut rng = StdRng::seed_from_u64(node_workload_seed(seed, timeline.node()));
        let sequence =
            sampler.sample_sequence(timeline.window_start(), timeline.window_end(), &mut rng);
        let mut env = MitigationEnv::new(timeline.clone(), sequence, config, false);
        let mut state = env.reset();
        while let Some(s) = state {
            let outcome = env.step(rule(&s));
            state = outcome.next_state;
        }
        env
    }
}
