//! Random variate distributions built on top of a uniform [`rand::Rng`].
//!
//! Each distribution implements the [`Distribution`] trait and produces `f64` (or integer)
//! variates by transforming uniform randomness: inverse-CDF sampling where a closed form
//! exists (exponential, Pareto, Zipf), Box–Muller for the normal, and Knuth's product
//! method (with a normal approximation for large means) for the Poisson.

use rand::Rng;

/// A sampleable univariate distribution.
pub trait Distribution {
    /// The type of a single variate.
    type Value;

    /// Draw one variate using the supplied random number generator.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Value;

    /// Draw `n` variates into a vector.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Self::Value> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Continuous uniform distribution on `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Create a uniform distribution on `[low, high)`.
    ///
    /// # Panics
    /// Panics if `low >= high` or either bound is not finite.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low.is_finite() && high.is_finite(), "bounds must be finite");
        assert!(low < high, "low must be < high (got {low} >= {high})");
        Self { low, high }
    }

    /// Lower bound.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper bound (exclusive).
    pub fn high(&self) -> f64 {
        self.high
    }
}

impl Distribution for Uniform {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.low + (self.high - self.low) * rng.gen::<f64>()
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Used for Poisson-process inter-arrival times of corrected-error faults, uncorrected
/// error precursors and node reboots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Create an exponential distribution with the given rate (events per unit time).
    ///
    /// # Panics
    /// Panics if `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive and finite (got {lambda})"
        );
        Self { lambda }
    }

    /// Create from the mean (`1 / lambda`).
    pub fn from_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Self::new(1.0 / mean)
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

impl Distribution for Exponential {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: -ln(1 - U) / lambda. Guard against ln(0).
        let u: f64 = rng.gen::<f64>();
        let u = if u >= 1.0 { f64::EPSILON } else { 1.0 - u };
        -u.ln() / self.lambda
    }
}

/// Normal (Gaussian) distribution, sampled with the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a normal distribution with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `std_dev` is negative or either parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite");
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "std_dev must be non-negative and finite (got {std_dev})"
        );
        Self { mean, std_dev }
    }

    /// Standard normal N(0, 1).
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution for Normal {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller. We draw a fresh pair every call; discarding the second variate keeps
        // the generator stateless, which matters because the same distribution value is
        // shared across threads in the evaluation harness.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen::<f64>();
        let radius = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.std_dev * radius * theta.cos()
    }
}

/// Log-normal distribution parameterised by the mean and standard deviation of the
/// underlying normal (`ln X ~ N(mu, sigma)`).
///
/// Used for job wallclock durations, which on production HPC systems span several orders
/// of magnitude.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Create a log-normal with log-space mean `mu` and log-space std `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        Self {
            normal: Normal::new(mu, sigma),
        }
    }

    /// Construct a log-normal whose *linear-space* median and p95 match the given values.
    ///
    /// The median of a log-normal is `exp(mu)` and the 95th percentile is
    /// `exp(mu + 1.645 sigma)`, so both parameters are recovered in closed form. This is a
    /// convenient way to express workload models ("median job runs 2 h, 5% run > 40 h").
    ///
    /// # Panics
    /// Panics unless `0 < median < p95`.
    pub fn from_median_p95(median: f64, p95: f64) -> Self {
        assert!(median > 0.0 && p95 > median, "need 0 < median < p95");
        let mu = median.ln();
        let sigma = (p95.ln() - mu) / 1.6448536269514722;
        Self::new(mu, sigma)
    }

    /// Log-space mean.
    pub fn mu(&self) -> f64 {
        self.normal.mean()
    }

    /// Log-space standard deviation.
    pub fn sigma(&self) -> f64 {
        self.normal.std_dev()
    }

    /// Linear-space mean, `exp(mu + sigma^2 / 2)`.
    pub fn mean(&self) -> f64 {
        (self.mu() + self.sigma() * self.sigma() / 2.0).exp()
    }
}

impl Distribution for LogNormal {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.normal.sample(rng).exp()
    }
}

/// Pareto (power-law) distribution with scale `x_min` and shape `alpha`.
///
/// Heavy-tailed; used for HPC job node counts, which are known to span orders of
/// magnitude (most jobs are small, a few are huge).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Create a Pareto distribution.
    ///
    /// # Panics
    /// Panics if either parameter is not strictly positive and finite.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min.is_finite() && x_min > 0.0, "x_min must be positive");
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        Self { x_min, alpha }
    }

    /// Scale parameter (minimum value).
    pub fn x_min(&self) -> f64 {
        self.x_min
    }

    /// Shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Distribution for Pareto {
    type Value = f64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>();
        let u = (1.0 - u).max(f64::MIN_POSITIVE);
        self.x_min / u.powf(1.0 / self.alpha)
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Used for the number of corrected errors recorded by the monitoring daemon in one
/// sampling period (the MCA registers report a count when more than one error occurs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Create a Poisson distribution with the given mean.
    ///
    /// # Panics
    /// Panics if `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "lambda must be positive and finite (got {lambda})"
        );
        Self { lambda }
    }

    /// Distribution mean.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Distribution for Poisson {
    type Value = u64;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 30.0 {
            // Knuth's product method.
            let threshold = (-self.lambda).exp();
            let mut k: u64 = 0;
            let mut p = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p <= threshold {
                    return k;
                }
                k += 1;
            }
        } else {
            // Normal approximation with continuity correction, adequate for the large
            // per-interval CE counts seen during error storms.
            let normal = Normal::new(self.lambda, self.lambda.sqrt());
            let v = normal.sample(rng).round();
            if v < 0.0 {
                0
            } else {
                v as u64
            }
        }
    }
}

/// Bernoulli distribution: `true` with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Create a Bernoulli distribution with success probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1] (got {p})");
        Self { p }
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Distribution for Bernoulli {
    type Value = bool;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.p
    }
}

/// Categorical distribution over `0..n` with arbitrary non-negative weights.
///
/// Used for manufacturer assignment and for sampling jobs weighted by their node count
/// (Section 3.3.3 of the paper: "jobs are weighted by the number of nodes on which they
/// execute, in order to maintain the correct job distribution").
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Create a categorical distribution from a slice of non-negative weights.
    ///
    /// # Panics
    /// Panics if the slice is empty, any weight is negative or non-finite, or the total
    /// weight is zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must not be empty");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            assert!(
                w.is_finite() && w >= 0.0,
                "weight {i} must be non-negative and finite (got {w})"
            );
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "total weight must be positive");
        Self { cumulative }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether there are no categories (never true for a constructed instance).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

impl Distribution for Categorical {
    type Value = usize;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let target = rng.gen::<f64>() * total;
        // Binary search for the first cumulative weight >= target.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).expect("finite weights"))
        {
            Ok(idx) => idx,
            Err(idx) => idx.min(self.cumulative.len() - 1),
        }
    }
}

/// Zipf distribution on `{1, ..., n}` with exponent `s`.
///
/// Used to model the fact that a small number of DIMMs account for the vast majority of
/// corrected errors (a well-established property of DRAM field studies).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    categorical: Categorical,
}

impl Zipf {
    /// Create a Zipf distribution over `{1, ..., n}` with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "n must be positive");
        assert!(s.is_finite() && s >= 0.0, "s must be non-negative");
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        Self {
            categorical: Categorical::new(&weights),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.categorical.len()
    }

    /// Whether there are no ranks (never true for a constructed instance).
    pub fn is_empty(&self) -> bool {
        self.categorical.is_empty()
    }
}

impl Distribution for Zipf {
    type Value = usize;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        // Categorical returns 0-based index; Zipf is conventionally 1-based.
        self.categorical.sample(rng) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5eed)
    }

    const N: usize = 20_000;

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(2.0, 6.0);
        let mut r = rng();
        let xs = d.sample_n(&mut r, N);
        assert!(xs.iter().all(|&x| (2.0..6.0).contains(&x)));
        let s = Summary::from_slice(&xs);
        assert!((s.mean() - 4.0).abs() < 0.05, "mean {}", s.mean());
    }

    #[test]
    #[should_panic(expected = "low must be < high")]
    fn uniform_rejects_inverted_bounds() {
        Uniform::new(3.0, 1.0);
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::from_mean(5.0);
        let mut r = rng();
        let xs = d.sample_n(&mut r, N);
        let s = Summary::from_slice(&xs);
        assert!((s.mean() - 5.0).abs() < 0.2, "mean {}", s.mean());
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn exponential_rate_accessors() {
        let d = Exponential::new(0.25);
        assert!((d.lambda() - 0.25).abs() < 1e-12);
        assert!((d.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn exponential_rejects_zero_rate() {
        Exponential::new(0.0);
    }

    #[test]
    fn normal_moments_match() {
        let d = Normal::new(-3.0, 2.0);
        let mut r = rng();
        let xs = d.sample_n(&mut r, N);
        let s = Summary::from_slice(&xs);
        assert!((s.mean() + 3.0).abs() < 0.08, "mean {}", s.mean());
        assert!((s.std_dev() - 2.0).abs() < 0.08, "std {}", s.std_dev());
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let d = Normal::new(7.0, 0.0);
        let mut r = rng();
        assert!(d.sample_n(&mut r, 100).iter().all(|&x| x == 7.0));
    }

    #[test]
    fn lognormal_median_and_p95_match_construction() {
        let d = LogNormal::from_median_p95(2.0, 40.0);
        let mut r = rng();
        let mut xs = d.sample_n(&mut r, N);
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[N / 2];
        let p95 = xs[(N as f64 * 0.95) as usize];
        assert!((median - 2.0).abs() / 2.0 < 0.1, "median {median}");
        assert!((p95 - 40.0).abs() / 40.0 < 0.15, "p95 {p95}");
    }

    #[test]
    fn lognormal_positive() {
        let d = LogNormal::new(0.0, 2.0);
        let mut r = rng();
        assert!(d.sample_n(&mut r, N).iter().all(|&x| x > 0.0));
    }

    #[test]
    fn pareto_respects_minimum_and_tail() {
        let d = Pareto::new(1.0, 1.5);
        let mut r = rng();
        let xs = d.sample_n(&mut r, N);
        assert!(xs.iter().all(|&x| x >= 1.0));
        // Heavy tail: some samples should exceed 10x the minimum.
        assert!(xs.iter().any(|&x| x > 10.0));
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let d = Poisson::new(3.0);
        let mut r = rng();
        let xs: Vec<f64> = d.sample_n(&mut r, N).iter().map(|&x| x as f64).collect();
        let s = Summary::from_slice(&xs);
        assert!((s.mean() - 3.0).abs() < 0.1, "mean {}", s.mean());
    }

    #[test]
    fn poisson_large_lambda_uses_normal_approx() {
        let d = Poisson::new(200.0);
        let mut r = rng();
        let xs: Vec<f64> = d.sample_n(&mut r, N).iter().map(|&x| x as f64).collect();
        let s = Summary::from_slice(&xs);
        assert!((s.mean() - 200.0).abs() < 2.0, "mean {}", s.mean());
        assert!((s.std_dev() - 200.0f64.sqrt()).abs() < 1.0);
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let d = Bernoulli::new(0.2);
        let mut r = rng();
        let hits = d.sample_n(&mut r, N).iter().filter(|&&b| b).count();
        let freq = hits as f64 / N as f64;
        assert!((freq - 0.2).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        assert!(!Bernoulli::new(0.0).sample(&mut r));
        assert!(Bernoulli::new(1.0).sample(&mut r));
    }

    #[test]
    fn categorical_respects_weights() {
        let d = Categorical::new(&[1.0, 0.0, 3.0]);
        let mut r = rng();
        let mut counts = [0usize; 3];
        for _ in 0..N {
            counts[d.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight category must never be drawn");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "total weight must be positive")]
    fn categorical_rejects_all_zero() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_first_rank_dominates() {
        let d = Zipf::new(100, 1.2);
        let mut r = rng();
        let xs = d.sample_n(&mut r, N);
        assert!(xs.iter().all(|&x| (1..=100).contains(&x)));
        let ones = xs.iter().filter(|&&x| x == 1).count();
        let tens = xs.iter().filter(|&&x| x == 10).count();
        assert!(
            ones > 5 * tens,
            "rank 1 ({ones}) should dominate rank 10 ({tens})"
        );
    }

    #[test]
    fn sample_n_length() {
        let d = Uniform::new(0.0, 1.0);
        let mut r = rng();
        assert_eq!(d.sample_n(&mut r, 17).len(), 17);
    }
}
