//! Empirical cumulative distribution functions.
//!
//! The job-size sensitivity analysis (paper Section 5.6) rescales the empirical
//! MareNostrum 4 job distribution rather than fitting a parametric model; the [`Ecdf`]
//! type supports that pattern: build from observed values, query quantiles, and resample.

use rand::Rng;

/// An empirical distribution built from observed samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a set of observations. Non-finite values are dropped.
    ///
    /// # Panics
    /// Panics if no finite observation remains.
    pub fn new(values: &[f64]) -> Self {
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        assert!(!sorted.is_empty(), "ECDF needs at least one finite value");
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self { sorted }
    }

    /// Number of underlying observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF is empty (never true for a constructed instance).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The empirical CDF evaluated at `x`: fraction of observations `<= x`.
    pub fn cdf(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x when we test `v <= x`.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The empirical quantile for probability `p` in `[0, 1]` (linear interpolation).
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let rank = p * (self.sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = rank - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// Draw one value by resampling the observations (bootstrap sampling).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sorted[rng.gen_range(0..self.sorted.len())]
    }

    /// Return a new ECDF with every observation multiplied by `factor`.
    ///
    /// This is the "job size scaling factor" operation of the paper's sensitivity
    /// analysis: the distributional shape is preserved while the magnitude scales.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "factor must be positive"
        );
        Self {
            sorted: self.sorted.iter().map(|&v| v * factor).collect(),
        }
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cdf_steps() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(100.0), 1.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let e = Ecdf::new(&[10.0, 20.0, 30.0]);
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.5), 20.0);
        assert_eq!(e.quantile(1.0), 30.0);
        assert!((e.quantile(0.25) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_only_returns_observations() {
        let e = Ecdf::new(&[5.0, 7.0]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = e.sample(&mut rng);
            assert!(v == 5.0 || v == 7.0);
        }
    }

    #[test]
    fn scaling_preserves_shape() {
        let e = Ecdf::new(&[1.0, 2.0, 4.0]);
        let s = e.scaled(10.0);
        assert_eq!(s.min(), 10.0);
        assert_eq!(s.max(), 40.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.quantile(0.5), 20.0);
    }

    #[test]
    fn drops_non_finite() {
        let e = Ecdf::new(&[1.0, f64::NAN, 3.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one finite value")]
    fn rejects_empty() {
        Ecdf::new(&[f64::NAN]);
    }
}
