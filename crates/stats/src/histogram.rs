//! Linear- and logarithmic-binned histograms.
//!
//! The paper's Figure 6 bins the potential UE cost on a logarithmic axis (10^0 to 10^6
//! node-hours) against the RF-predicted probability on a linear axis; these histogram
//! types provide the binning machinery for that figure and for log statistics.

/// A histogram with uniformly-spaced bins over `[low, high)`.
///
/// Out-of-range observations are clamped into the first / last bin so that no data is
/// silently dropped (a UE cost larger than anything seen in training must still appear in
/// the top bin, exactly as in the paper's Figure 6 discussion of generalisation).
#[derive(Debug, Clone)]
pub struct Histogram {
    low: f64,
    high: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Create a histogram with `bins` uniform bins over `[low, high)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `low >= high`.
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(low < high, "low must be < high");
        Self {
            low,
            high,
            counts: vec![0; bins],
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Index of the bin that would receive `value` (clamped to the valid range).
    pub fn bin_index(&self, value: f64) -> usize {
        let width = (self.high - self.low) / self.counts.len() as f64;
        let idx = ((value - self.low) / width).floor();
        idx.clamp(0.0, (self.counts.len() - 1) as f64) as usize
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            let idx = self.bin_index(value);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `(low, high)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.high - self.low) / self.counts.len() as f64;
        (
            self.low + width * i as f64,
            self.low + width * (i + 1) as f64,
        )
    }

    /// Mid-point of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let (lo, hi) = self.bin_edges(i);
        (lo + hi) / 2.0
    }
}

/// A histogram whose bins are uniform in `log10` space over `[low, high)`.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    inner: Histogram,
}

impl LogHistogram {
    /// Create a log-binned histogram with `bins` bins spanning `[low, high)`.
    ///
    /// # Panics
    /// Panics if `low <= 0`, `bins == 0`, or `low >= high`.
    pub fn new(low: f64, high: f64, bins: usize) -> Self {
        assert!(low > 0.0, "log histogram needs a positive lower bound");
        Self {
            inner: Histogram::new(low.log10(), high.log10(), bins),
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.inner.bins()
    }

    /// Index of the bin receiving `value`; non-positive values land in the first bin.
    pub fn bin_index(&self, value: f64) -> usize {
        if value <= 0.0 {
            0
        } else {
            self.inner.bin_index(value.log10())
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        if value.is_finite() {
            let idx = self.bin_index(value);
            self.inner.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        self.inner.counts()
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.inner.total()
    }

    /// The `(low, high)` edges of bin `i` in linear space.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let (lo, hi) = self.inner.bin_edges(i);
        (10f64.powf(lo), 10f64.powf(hi))
    }

    /// Geometric mid-point of bin `i` in linear space.
    pub fn bin_center(&self, i: usize) -> f64 {
        let (lo, hi) = self.bin_edges(i);
        (lo * hi).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 5.5, 9.99] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn linear_out_of_range_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 2);
        h.record(-100.0);
        h.record(1e9);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn linear_edges_and_centers() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
        assert_eq!(h.bin_center(2), 5.0);
    }

    #[test]
    fn log_binning_spans_decades() {
        let mut h = LogHistogram::new(1.0, 1e6, 6);
        for v in [1.5, 15.0, 150.0, 1500.0, 15_000.0, 150_000.0] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[1, 1, 1, 1, 1, 1]);
        let (lo, hi) = h.bin_edges(0);
        assert!((lo - 1.0).abs() < 1e-9 && (hi - 10.0).abs() < 1e-6);
    }

    #[test]
    fn log_nonpositive_goes_to_first_bin() {
        let mut h = LogHistogram::new(1.0, 100.0, 2);
        h.record(0.0);
        h.record(-5.0);
        assert_eq!(h.counts()[0], 2);
    }

    #[test]
    fn log_center_is_geometric_mean() {
        let h = LogHistogram::new(1.0, 100.0, 2);
        assert!((h.bin_center(0) - 10f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive lower bound")]
    fn log_rejects_zero_low() {
        LogHistogram::new(0.0, 10.0, 3);
    }
}
