//! # uerl-stats
//!
//! Shared statistics substrate for the UERL workspace.
//!
//! The reproduction only depends on the `rand` crate for randomness, which provides uniform
//! variates but none of the distributions needed by the fault-process and workload models
//! (exponential inter-arrival times, log-normal job durations, Pareto-tailed job sizes,
//! Poisson error counts, Gaussian weight initialisation). This crate implements those
//! variate generators from first principles, together with the summary statistics,
//! histograms and empirical distributions used by the log-analysis and evaluation crates.
//!
//! The generators are deliberately simple, deterministic under a seeded RNG, and unit /
//! property tested against their analytic moments, because every downstream experiment
//! (all paper figures) relies on them being correct.

pub mod distributions;
pub mod ecdf;
pub mod histogram;
pub mod summary;

pub use distributions::{
    Bernoulli, Categorical, Distribution, Exponential, LogNormal, Normal, Pareto, Poisson, Uniform,
    Zipf,
};
pub use ecdf::Ecdf;
pub use histogram::{Histogram, LogHistogram};
pub use summary::Summary;
