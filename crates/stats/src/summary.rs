//! Streaming summary statistics (count, mean, variance, extrema, percentiles).

/// Summary statistics over a set of `f64` observations.
///
/// The mean and variance are accumulated with Welford's online algorithm so the summary
/// can be built incrementally while replaying multi-million-event error logs without
/// storing every observation. Percentiles require the sorted data, so they are only
/// available through [`Summary::from_slice`], which keeps a copy.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sorted: Option<Vec<f64>>,
}

impl Summary {
    /// Create an empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sorted: None,
        }
    }

    /// Build a summary from a slice, retaining a sorted copy so percentiles are available.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        s.sorted = Some(sorted);
        s
    }

    /// Add one observation. Non-finite values are ignored.
    pub fn push(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        // An incrementally-built summary does not keep the raw data.
        self.sorted = None;
    }

    /// Number of (finite) observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 if fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// The `q`-th percentile (q in [0, 100]) using nearest-rank interpolation.
    ///
    /// Only available when the summary was built with [`Summary::from_slice`]; returns
    /// `None` otherwise or when empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        let sorted = self.sorted.as_ref()?;
        if sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 100.0);
        let rank = (q / 100.0) * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        if lo == hi {
            Some(sorted[lo])
        } else {
            let frac = rank - lo as f64;
            Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
        }
    }

    /// Median (50th percentile), if available.
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert!(s.percentile(50.0).is_none());
    }

    #[test]
    fn basic_moments() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.percentile(100.0), Some(5.0));
        assert_eq!(s.median(), Some(3.0));
        assert_eq!(s.percentile(25.0), Some(2.0));
        // Between ranks.
        let p10 = s.percentile(10.0).unwrap();
        assert!((p10 - 1.4).abs() < 1e-12, "p10 {p10}");
    }

    #[test]
    fn push_ignores_non_finite() {
        let mut s = Summary::new();
        s.push(1.0);
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(3.0);
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn incremental_matches_batch() {
        let values = [0.5, 1.5, -3.0, 8.0, 2.25, 2.25];
        let batch = Summary::from_slice(&values);
        let mut inc = Summary::new();
        for v in values {
            inc.push(v);
        }
        assert!((batch.mean() - inc.mean()).abs() < 1e-12);
        assert!((batch.variance() - inc.variance()).abs() < 1e-12);
        assert_eq!(batch.count(), inc.count());
        // Percentiles are unavailable after incremental building.
        assert!(inc.percentile(50.0).is_none());
    }
}
