//! The event model of the error log.
//!
//! Every entry of the (real or synthetic) error log is a [`LogEvent`]: a timestamped,
//! node-attributed occurrence of one of the [`EventKind`] variants described in Section 2
//! of the paper — corrected errors reported by the mcelog-based daemon, uncorrected errors
//! and UE warnings reported by the system firmware, critical over-temperature conditions
//! (counted as UEs), node boots, and administrative DIMM retirements.

use crate::types::{CellLocation, DimmId, NodeId, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How an error was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Detector {
    /// The ECC check of an application (demand) memory read.
    DemandRead,
    /// The patrol scrubber, which periodically traverses physical memory.
    PatrolScrub,
}

impl Detector {
    /// Short label used by the mcelog-style text format.
    pub fn label(self) -> &'static str {
        match self {
            Detector::DemandRead => "demand",
            Detector::PatrolScrub => "patrol",
        }
    }

    /// Parse a label produced by [`Detector::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "demand" => Some(Detector::DemandRead),
            "patrol" => Some(Detector::PatrolScrub),
            _ => None,
        }
    }
}

impl fmt::Display for Detector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a UE warning was raised by the firmware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WarningReason {
    /// The correctable-ECC logging limit was reached on a DIMM.
    CeLoggingLimit,
    /// Memory modules were throttled to prevent an over-temperature condition.
    ThermalThrottle,
}

impl WarningReason {
    /// Short label used by the mcelog-style text format.
    pub fn label(self) -> &'static str {
        match self {
            WarningReason::CeLoggingLimit => "ce-limit",
            WarningReason::ThermalThrottle => "throttle",
        }
    }

    /// Parse a label produced by [`WarningReason::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "ce-limit" => Some(WarningReason::CeLoggingLimit),
            "throttle" => Some(WarningReason::ThermalThrottle),
            _ => None,
        }
    }
}

/// Detailed information for one corrected error within a daemon sampling period.
///
/// When more than one CE occurs within the 100 ms polling period, the MCA registers
/// report the total count but detailed location information for only one of the errors;
/// [`CeDetail`] is that one detailed sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CeDetail {
    /// DIMM on which the detailed error was observed.
    pub dimm: DimmId,
    /// Physical location of the error.
    pub location: CellLocation,
    /// Whether the detailed error was found by a demand read or the patrol scrubber.
    pub detector: Detector,
}

/// The kind of a log event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// One daemon record of corrected errors: a count plus (optionally) detail for one of
    /// the errors. `count` is always at least 1.
    CorrectedError {
        /// Total number of corrected errors in the sampling period.
        count: u32,
        /// Detailed information for one of the errors, if the registers held it.
        detail: Option<CeDetail>,
    },
    /// An uncorrected (fatal) memory error. The node is shut down and any running job is
    /// terminated.
    UncorrectedError {
        /// DIMM that failed.
        dimm: DimmId,
        /// Whether the UE was hit by an application read or found by the patrol scrubber.
        detector: Detector,
    },
    /// A critical over-temperature condition, which also shuts down the node and is
    /// therefore counted as equivalent to an uncorrected error (Section 2.1.2).
    OverTemperature,
    /// A UE warning from the firmware (not counted as a UE; used as an input feature).
    UeWarning {
        /// Why the warning was raised.
        reason: WarningReason,
    },
    /// A node boot (start).
    NodeBoot,
    /// Administrative retirement of a DIMM triggered by the pre-failure alert
    /// (Section 2.1.4). Samples after a retirement are removed from training/evaluation.
    DimmRetirement {
        /// Slot of the retired DIMM on the event's node.
        slot: u8,
    },
}

impl EventKind {
    /// Whether this event terminates the node (uncorrected error or over-temperature).
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            EventKind::UncorrectedError { .. } | EventKind::OverTemperature
        )
    }

    /// Whether this event is a corrected error record.
    pub fn is_corrected(&self) -> bool {
        matches!(self, EventKind::CorrectedError { .. })
    }

    /// Number of corrected errors carried by this event (0 for non-CE events).
    pub fn corrected_count(&self) -> u32 {
        match self {
            EventKind::CorrectedError { count, .. } => *count,
            _ => 0,
        }
    }

    /// Stable short name for reports and statistics.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::CorrectedError { .. } => "CE",
            EventKind::UncorrectedError { .. } => "UE",
            EventKind::OverTemperature => "OVERTEMP",
            EventKind::UeWarning { .. } => "WARN",
            EventKind::NodeBoot => "BOOT",
            EventKind::DimmRetirement { .. } => "RETIRE",
        }
    }
}

/// One timestamped entry of the error log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogEvent {
    /// When the event was recorded.
    pub time: SimTime,
    /// The node the event belongs to.
    pub node: NodeId,
    /// What happened.
    pub kind: EventKind,
}

impl LogEvent {
    /// Construct a log event.
    pub fn new(time: SimTime, node: NodeId, kind: EventKind) -> Self {
        Self { time, node, kind }
    }

    /// Whether this event terminates the node.
    pub fn is_fatal(&self) -> bool {
        self.kind.is_fatal()
    }

    /// Ordering key: by time, then node, then a stable kind rank so sorting a log is
    /// deterministic even when several events share a timestamp.
    pub fn sort_key(&self) -> (SimTime, NodeId, u8) {
        let rank = match self.kind {
            EventKind::NodeBoot => 0,
            EventKind::DimmRetirement { .. } => 1,
            EventKind::CorrectedError { .. } => 2,
            EventKind::UeWarning { .. } => 3,
            EventKind::OverTemperature => 4,
            EventKind::UncorrectedError { .. } => 5,
        };
        (self.time, self.node, rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dimm() -> DimmId {
        DimmId::new(NodeId(1), 0)
    }

    #[test]
    fn detector_labels_round_trip() {
        for d in [Detector::DemandRead, Detector::PatrolScrub] {
            assert_eq!(Detector::from_label(d.label()), Some(d));
        }
        assert_eq!(Detector::from_label("bogus"), None);
    }

    #[test]
    fn warning_labels_round_trip() {
        for w in [
            WarningReason::CeLoggingLimit,
            WarningReason::ThermalThrottle,
        ] {
            assert_eq!(WarningReason::from_label(w.label()), Some(w));
        }
        assert_eq!(WarningReason::from_label("bogus"), None);
    }

    #[test]
    fn fatality_classification() {
        assert!(EventKind::UncorrectedError {
            dimm: dimm(),
            detector: Detector::DemandRead
        }
        .is_fatal());
        assert!(EventKind::OverTemperature.is_fatal());
        assert!(!EventKind::NodeBoot.is_fatal());
        assert!(!EventKind::CorrectedError {
            count: 10,
            detail: None
        }
        .is_fatal());
        assert!(!EventKind::UeWarning {
            reason: WarningReason::CeLoggingLimit
        }
        .is_fatal());
    }

    #[test]
    fn corrected_count_extraction() {
        let ce = EventKind::CorrectedError {
            count: 7,
            detail: None,
        };
        assert_eq!(ce.corrected_count(), 7);
        assert!(ce.is_corrected());
        assert_eq!(EventKind::NodeBoot.corrected_count(), 0);
        assert!(!EventKind::NodeBoot.is_corrected());
    }

    #[test]
    fn event_names_are_stable() {
        assert_eq!(EventKind::NodeBoot.name(), "BOOT");
        assert_eq!(
            EventKind::UncorrectedError {
                dimm: dimm(),
                detector: Detector::PatrolScrub
            }
            .name(),
            "UE"
        );
        assert_eq!(EventKind::OverTemperature.name(), "OVERTEMP");
        assert_eq!(EventKind::DimmRetirement { slot: 2 }.name(), "RETIRE");
    }

    #[test]
    fn sort_key_orders_ue_after_ce_at_same_instant() {
        let t = SimTime::from_secs(100);
        let ce = LogEvent::new(
            t,
            NodeId(1),
            EventKind::CorrectedError {
                count: 1,
                detail: None,
            },
        );
        let ue = LogEvent::new(
            t,
            NodeId(1),
            EventKind::UncorrectedError {
                dimm: dimm(),
                detector: Detector::DemandRead,
            },
        );
        assert!(ce.sort_key() < ue.sort_key());
    }

    #[test]
    fn sort_key_orders_by_time_first() {
        let early = LogEvent::new(SimTime::from_secs(10), NodeId(9), EventKind::NodeBoot);
        let late = LogEvent::new(SimTime::from_secs(20), NodeId(1), EventKind::NodeBoot);
        assert!(early.sort_key() < late.sort_key());
    }
}
