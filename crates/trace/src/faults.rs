//! DRAM fault-process model.
//!
//! DRAM field studies (Schroeder et al., Sridharan et al., Zivanovic et al.) consistently
//! report that (1) a small fraction of DIMMs experience any error at all, (2) among those,
//! a handful of DIMMs with *permanent* faults (stuck cells, row/bank failures) produce the
//! vast majority of corrected errors, often as dense storms, and (3) uncorrected errors
//! appear in bursts and are only weakly predictable from preceding corrected errors — in
//! the paper's dataset, 25 of the 67 effective UEs have **no** error-log event in the
//! preceding 24 hours.
//!
//! This module models a DIMM's health as a set of [`FaultInstance`]s drawn at generation
//! time. Each fault becomes active at an onset time, produces corrected-error activity at
//! a class-dependent rate within a class-dependent physical region, and — for
//! [`FaultClass::UePrecursor`] faults — escalates to a burst of uncorrected errors,
//! optionally preceded by UE warnings and optionally *silent* (no CE activity before the
//! UE, reproducing the hard-to-predict population).

use crate::types::{CellLocation, DimmId, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};
use uerl_stats::{Bernoulli, Distribution, Exponential, Uniform};

/// The class of a DRAM fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// Sporadic single-cell upsets (particle strikes): a few isolated CEs, never escalates.
    TransientCell,
    /// A permanently stuck cell: repeated CEs at exactly one location.
    StuckCell,
    /// A failed row: CEs across many columns of a single row, moderate-to-high rate.
    RowFault,
    /// A failed bank: CEs across many rows and columns of one bank; produces CE storms.
    BankFault,
    /// A fault that escalates to one or more uncorrected errors.
    UePrecursor,
}

impl FaultClass {
    /// All fault classes.
    pub const ALL: [FaultClass; 5] = [
        FaultClass::TransientCell,
        FaultClass::StuckCell,
        FaultClass::RowFault,
        FaultClass::BankFault,
        FaultClass::UePrecursor,
    ];
}

/// The physical region a fault is confined to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRegion {
    /// Affected rank.
    pub rank: u8,
    /// Affected bank.
    pub bank: u8,
    /// Affected row (meaningful for stuck-cell and row faults).
    pub row: u32,
    /// Affected column (meaningful for stuck-cell faults).
    pub column: u32,
}

impl FaultRegion {
    /// Draw a random region on a DDR3-like geometry (4 ranks, 8 banks, 32k rows, 1k cols).
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            rank: rng.gen_range(0..4),
            bank: rng.gen_range(0..8),
            row: rng.gen_range(0..32_768),
            column: rng.gen_range(0..1024),
        }
    }

    /// Sample the location of one corrected error produced by a fault of class `class`
    /// within this region.
    pub fn sample_location<R: Rng + ?Sized>(&self, class: FaultClass, rng: &mut R) -> CellLocation {
        match class {
            FaultClass::TransientCell => CellLocation::new(
                rng.gen_range(0..4),
                rng.gen_range(0..8),
                rng.gen_range(0..32_768),
                rng.gen_range(0..1024),
            ),
            FaultClass::StuckCell => CellLocation::new(self.rank, self.bank, self.row, self.column),
            FaultClass::RowFault => {
                CellLocation::new(self.rank, self.bank, self.row, rng.gen_range(0..1024))
            }
            FaultClass::BankFault | FaultClass::UePrecursor => CellLocation::new(
                self.rank,
                self.bank,
                rng.gen_range(0..32_768),
                rng.gen_range(0..1024),
            ),
        }
    }
}

/// How a [`FaultClass::UePrecursor`] fault escalates into uncorrected errors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Escalation {
    /// Time of the first uncorrected error of the burst.
    pub first_ue: SimTime,
    /// Number of UEs in the burst (all within one week of the first; in production the
    /// node is pulled from service after the first, so only the first one matters).
    pub burst_len: u32,
    /// Whether the escalation happens with no preceding corrected-error activity at all
    /// (the hard-to-predict UEs: no event in the 24 h before the UE).
    pub silent: bool,
    /// Whether a firmware UE warning fires before the first UE.
    pub warns: bool,
}

/// One fault developed by one DIMM during the observation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultInstance {
    /// The DIMM carrying the fault.
    pub dimm: DimmId,
    /// Fault class.
    pub class: FaultClass,
    /// When the fault becomes active.
    pub onset: SimTime,
    /// When the fault stops producing corrected errors (end of window for permanent
    /// faults; shortly after onset for transient faults).
    pub end: SimTime,
    /// Physical region of the fault.
    pub region: FaultRegion,
    /// Mean number of corrected-error *instants* per active day.
    pub ce_rate_per_day: f64,
    /// Escalation to uncorrected errors, for UE-precursor faults.
    pub escalation: Option<Escalation>,
}

impl FaultInstance {
    /// Whether the fault is active (producing CEs) at time `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.onset && t < self.end
    }

    /// Length of the active period in days.
    pub fn active_days(&self) -> f64 {
        (self.end - self.onset).max(0) as f64 / SimTime::DAY as f64
    }

    /// Expected number of CE instants this fault produces over its whole active period.
    pub fn expected_ce_instants(&self) -> f64 {
        self.ce_rate_per_day * self.active_days()
    }
}

/// Per-class incidence and intensity parameters of the fault model.
///
/// Incidences are expressed per DIMM over the whole observation window (so they scale
/// naturally when the window or the fleet is scaled). The defaults are calibrated so that
/// the MareNostrum-3-sized fleet over two years lands near the published aggregates: on
/// the order of 4.5 M corrected errors concentrated on a few hundred DIMMs, roughly 330
/// raw UEs collapsing to roughly 67 first-of-burst UEs, and roughly a third of those UEs
/// silent (no preceding event within 24 h).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability that a DIMM develops at least one transient-cell fault in the window.
    pub p_transient: f64,
    /// Probability of a stuck-cell fault.
    pub p_stuck_cell: f64,
    /// Probability of a row fault.
    pub p_row_fault: f64,
    /// Probability of a bank fault.
    pub p_bank_fault: f64,
    /// Probability of a UE-precursor fault.
    pub p_ue_precursor: f64,
    /// Mean CE instants/day for a stuck cell while active.
    pub stuck_cell_rate: f64,
    /// Mean CE instants/day for a row fault while active.
    pub row_fault_rate: f64,
    /// Mean CE instants/day for a bank fault while active (CE storms).
    pub bank_fault_rate: f64,
    /// Mean CE instants/day for the pre-UE activity of a non-silent UE precursor.
    pub precursor_rate: f64,
    /// Probability that a UE precursor is silent (no CE/warning activity before the UE).
    pub p_silent_ue: f64,
    /// Probability that a non-silent UE precursor raises a firmware UE warning.
    pub p_ue_warning: f64,
    /// Mean number of UEs in a burst (the first is the effective one).
    pub mean_ue_burst_len: f64,
    /// Mean lead time (days) between fault onset and the first UE of a precursor fault.
    pub mean_precursor_lead_days: f64,
}

impl FaultRates {
    /// Default rates calibrated against the MareNostrum 3 aggregates (see type docs).
    ///
    /// With ~24.5k DIMMs: transient faults ~6% of DIMMs; permanent CE faults on ~1.3% of
    /// DIMMs produce the CE mass; UE precursors at ~0.27% of DIMMs yield ~66 precursor
    /// faults ≈ 66 effective UE bursts and, with a mean burst length of 5, ~330 raw UEs.
    pub fn marenostrum3() -> Self {
        Self {
            p_transient: 0.06,
            p_stuck_cell: 0.008,
            p_row_fault: 0.004,
            p_bank_fault: 0.0012,
            p_ue_precursor: 0.0027,
            stuck_cell_rate: 8.0,
            row_fault_rate: 40.0,
            bank_fault_rate: 250.0,
            precursor_rate: 80.0,
            p_silent_ue: 0.37,
            p_ue_warning: 0.5,
            mean_ue_burst_len: 5.0,
            mean_precursor_lead_days: 30.0,
        }
    }

    /// Rates scaled up so that even a very small test fleet produces a usable number of
    /// faulty DIMMs and a handful of UEs. Only meant for unit/integration tests.
    pub fn dense_for_tests() -> Self {
        Self {
            p_transient: 0.3,
            p_stuck_cell: 0.15,
            p_row_fault: 0.08,
            p_bank_fault: 0.04,
            p_ue_precursor: 0.12,
            stuck_cell_rate: 25.0,
            row_fault_rate: 120.0,
            bank_fault_rate: 900.0,
            precursor_rate: 80.0,
            p_silent_ue: 0.37,
            p_ue_warning: 0.5,
            mean_ue_burst_len: 5.0,
            mean_precursor_lead_days: 30.0,
        }
    }

    /// Incidence probability of a fault class.
    pub fn incidence(&self, class: FaultClass) -> f64 {
        match class {
            FaultClass::TransientCell => self.p_transient,
            FaultClass::StuckCell => self.p_stuck_cell,
            FaultClass::RowFault => self.p_row_fault,
            FaultClass::BankFault => self.p_bank_fault,
            FaultClass::UePrecursor => self.p_ue_precursor,
        }
    }
}

/// Samples the fault population of individual DIMMs.
#[derive(Debug, Clone)]
pub struct FaultSampler {
    rates: FaultRates,
    window_start: SimTime,
    window_end: SimTime,
}

impl FaultSampler {
    /// Create a sampler for the observation window `[start, end)`.
    ///
    /// # Panics
    /// Panics if the window is empty.
    pub fn new(rates: FaultRates, window_start: SimTime, window_end: SimTime) -> Self {
        assert!(
            window_end > window_start,
            "observation window must be non-empty"
        );
        Self {
            rates,
            window_start,
            window_end,
        }
    }

    /// The configured rates.
    pub fn rates(&self) -> &FaultRates {
        &self.rates
    }

    /// Sample the faults developed by one DIMM during the window (possibly none).
    pub fn sample_for_dimm<R: Rng + ?Sized>(
        &self,
        dimm: DimmId,
        rng: &mut R,
    ) -> Vec<FaultInstance> {
        let mut faults = Vec::new();
        for class in FaultClass::ALL {
            let p = self.rates.incidence(class);
            if p <= 0.0 || !Bernoulli::new(p.min(1.0)).sample(rng) {
                continue;
            }
            faults.push(self.sample_fault(dimm, class, rng));
        }
        faults
    }

    /// Sample one fault of a given class on a given DIMM.
    pub fn sample_fault<R: Rng + ?Sized>(
        &self,
        dimm: DimmId,
        class: FaultClass,
        rng: &mut R,
    ) -> FaultInstance {
        let window = (self.window_end - self.window_start) as f64;
        let onset_frac = Uniform::new(0.0, 1.0).sample(rng);
        let onset = self.window_start + (onset_frac * window) as i64;
        let region = FaultRegion::random(rng);

        let (end, rate, escalation) = match class {
            FaultClass::TransientCell => {
                // A transient fault is a short episode: one to a few CEs within a day.
                let end = (onset + SimTime::DAY).min(self.window_end);
                (end, 2.0, None)
            }
            FaultClass::StuckCell => (self.window_end, self.rates.stuck_cell_rate, None),
            FaultClass::RowFault => (self.window_end, self.rates.row_fault_rate, None),
            FaultClass::BankFault => (self.window_end, self.rates.bank_fault_rate, None),
            FaultClass::UePrecursor => {
                let silent = Bernoulli::new(self.rates.p_silent_ue).sample(rng);
                let lead_days =
                    Exponential::from_mean(self.rates.mean_precursor_lead_days).sample(rng);
                let lead_secs = (lead_days * SimTime::DAY as f64).max(SimTime::HOUR as f64) as i64;
                let first_ue = (onset + lead_secs).min(self.window_end.plus_secs(-1));
                let burst_len =
                    1 + Exponential::from_mean((self.rates.mean_ue_burst_len - 1.0).max(0.1))
                        .sample(rng)
                        .round() as u32;
                let warns = !silent && Bernoulli::new(self.rates.p_ue_warning).sample(rng);
                let rate = if silent {
                    0.0
                } else {
                    self.rates.precursor_rate
                };
                (
                    first_ue,
                    rate,
                    Some(Escalation {
                        first_ue,
                        burst_len,
                        silent,
                        warns,
                    }),
                )
            }
        };

        FaultInstance {
            dimm,
            class,
            onset,
            end: end.max(onset),
            region,
            ce_rate_per_day: rate,
            escalation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NodeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampler(rates: FaultRates) -> FaultSampler {
        FaultSampler::new(rates, SimTime::ZERO, SimTime::from_days(730))
    }

    fn dimm() -> DimmId {
        DimmId::new(NodeId(3), 1)
    }

    #[test]
    fn incidence_lookup_matches_fields() {
        let r = FaultRates::marenostrum3();
        assert_eq!(r.incidence(FaultClass::TransientCell), r.p_transient);
        assert_eq!(r.incidence(FaultClass::UePrecursor), r.p_ue_precursor);
    }

    #[test]
    fn most_dimms_are_healthy_at_production_rates() {
        let s = sampler(FaultRates::marenostrum3());
        let mut rng = StdRng::seed_from_u64(7);
        let mut faulty = 0;
        let n = 5000;
        for i in 0..n {
            let d = DimmId::new(NodeId(i as u32), 0);
            if !s.sample_for_dimm(d, &mut rng).is_empty() {
                faulty += 1;
            }
        }
        let frac = faulty as f64 / n as f64;
        // Roughly the sum of incidences (~7.6%), definitely under 20%.
        assert!(frac > 0.02 && frac < 0.2, "faulty fraction {frac}");
    }

    #[test]
    fn fault_times_lie_in_window() {
        let s = sampler(FaultRates::dense_for_tests());
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            for f in s.sample_for_dimm(dimm(), &mut rng) {
                assert!(f.onset >= SimTime::ZERO);
                assert!(f.end <= SimTime::from_days(730));
                assert!(f.end >= f.onset);
                if let Some(e) = f.escalation {
                    assert!(e.first_ue >= f.onset);
                    assert!(e.first_ue < SimTime::from_days(730));
                    assert!(e.burst_len >= 1);
                }
            }
        }
    }

    #[test]
    fn stuck_cell_location_is_constant_and_row_fault_varies_columns() {
        let s = sampler(FaultRates::dense_for_tests());
        let mut rng = StdRng::seed_from_u64(5);
        let stuck = s.sample_fault(dimm(), FaultClass::StuckCell, &mut rng);
        let l1 = stuck
            .region
            .sample_location(FaultClass::StuckCell, &mut rng);
        let l2 = stuck
            .region
            .sample_location(FaultClass::StuckCell, &mut rng);
        assert_eq!(l1, l2, "stuck cell must always hit the same cell");

        let row = s.sample_fault(dimm(), FaultClass::RowFault, &mut rng);
        let locs: Vec<_> = (0..50)
            .map(|_| row.region.sample_location(FaultClass::RowFault, &mut rng))
            .collect();
        assert!(locs
            .iter()
            .all(|l| l.row == row.region.row && l.bank == row.region.bank));
        let distinct_cols: std::collections::HashSet<_> = locs.iter().map(|l| l.column).collect();
        assert!(
            distinct_cols.len() > 5,
            "row fault should spread over columns"
        );
    }

    #[test]
    fn silent_precursors_produce_no_ce_activity() {
        let rates = FaultRates {
            p_silent_ue: 1.0,
            ..FaultRates::dense_for_tests()
        };
        let s = sampler(rates);
        let mut rng = StdRng::seed_from_u64(13);
        let f = s.sample_fault(dimm(), FaultClass::UePrecursor, &mut rng);
        assert_eq!(f.ce_rate_per_day, 0.0);
        let e = f.escalation.unwrap();
        assert!(e.silent);
        assert!(!e.warns, "silent faults cannot warn");
    }

    #[test]
    fn noisy_precursors_produce_ce_activity() {
        let rates = FaultRates {
            p_silent_ue: 0.0,
            ..FaultRates::dense_for_tests()
        };
        let s = sampler(rates);
        let mut rng = StdRng::seed_from_u64(17);
        let f = s.sample_fault(dimm(), FaultClass::UePrecursor, &mut rng);
        assert!(f.ce_rate_per_day > 0.0);
        assert!(!f.escalation.unwrap().silent);
    }

    #[test]
    fn active_period_and_expected_ce_count() {
        let f = FaultInstance {
            dimm: dimm(),
            class: FaultClass::StuckCell,
            onset: SimTime::from_days(10),
            end: SimTime::from_days(20),
            region: FaultRegion {
                rank: 0,
                bank: 0,
                row: 1,
                column: 2,
            },
            ce_rate_per_day: 25.0,
            escalation: None,
        };
        assert!(f.active_at(SimTime::from_days(15)));
        assert!(!f.active_at(SimTime::from_days(5)));
        assert!(!f.active_at(SimTime::from_days(20)));
        assert!((f.active_days() - 10.0).abs() < 1e-12);
        assert!((f.expected_ce_instants() - 250.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn empty_window_rejected() {
        FaultSampler::new(FaultRates::marenostrum3(), SimTime::ZERO, SimTime::ZERO);
    }
}
