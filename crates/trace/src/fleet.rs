//! Fleet model: nodes, DIMM slots, and the manufacturer population.
//!
//! MareNostrum 3 comprised 3056 compute nodes with two Sandy Bridge-EP sockets each and
//! more than 25,000 DDR3-1600 DIMMs from three manufacturers (6694 / 5207 / 13,419 DIMMs
//! from manufacturers A / B / C). With few exceptions, all DIMMs in a node come from the
//! same manufacturer, which is what makes the per-manufacturer partitioning of Section 4.5
//! possible; the fleet model reproduces that property by assigning manufacturers at node
//! granularity.

use crate::types::{DimmId, Manufacturer, NodeId};
use serde::{Deserialize, Serialize};

/// A single DIMM in the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dimm {
    /// Identity (node + slot).
    pub id: DimmId,
    /// Manufacturer of this DIMM.
    pub manufacturer: Manufacturer,
}

/// Per-node information.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Node identity.
    pub id: NodeId,
    /// Manufacturer of (all of) this node's DIMMs.
    pub manufacturer: Manufacturer,
    /// Number of DIMM slots populated on this node.
    pub dimm_count: u8,
}

impl NodeInfo {
    /// Iterate over the DIMMs of this node.
    pub fn dimms(&self) -> impl Iterator<Item = Dimm> + '_ {
        let id = self.id;
        let m = self.manufacturer;
        (0..self.dimm_count).map(move |slot| Dimm {
            id: DimmId::new(id, slot),
            manufacturer: m,
        })
    }
}

/// Static description of the monitored fleet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetConfig {
    nodes: Vec<NodeInfo>,
}

impl FleetConfig {
    /// Build a fleet of `node_count` nodes with `dimms_per_node` DIMMs each, assigning
    /// manufacturers to whole nodes so that the per-manufacturer DIMM counts approximate
    /// the requested proportions `(a, b, c)`.
    ///
    /// # Panics
    /// Panics if `node_count == 0`, `dimms_per_node == 0`, or all proportions are zero.
    pub fn with_proportions(
        node_count: u32,
        dimms_per_node: u8,
        proportions: (f64, f64, f64),
    ) -> Self {
        assert!(node_count > 0, "need at least one node");
        assert!(dimms_per_node > 0, "need at least one DIMM per node");
        let (a, b, c) = proportions;
        let total = a + b + c;
        assert!(total > 0.0, "proportions must not all be zero");
        let n = node_count as f64;
        // Whole-node manufacturer assignment, largest-remainder style: A then B then C.
        let a_nodes = ((a / total) * n).round() as u32;
        let b_nodes = ((b / total) * n).round() as u32;
        let a_nodes = a_nodes.min(node_count);
        let b_nodes = b_nodes.min(node_count - a_nodes);
        let nodes = (0..node_count)
            .map(|i| {
                let manufacturer = if i < a_nodes {
                    Manufacturer::A
                } else if i < a_nodes + b_nodes {
                    Manufacturer::B
                } else {
                    Manufacturer::C
                };
                NodeInfo {
                    id: NodeId(i),
                    manufacturer,
                    dimm_count: dimms_per_node,
                }
            })
            .collect();
        Self { nodes }
    }

    /// The MareNostrum 3 fleet: 3056 nodes, 8 DIMMs per node (≈ 24.4k DIMMs), with the
    /// published per-manufacturer DIMM proportions (6694 : 5207 : 13,419).
    pub fn marenostrum3() -> Self {
        Self::with_proportions(3056, 8, (6694.0, 5207.0, 13_419.0))
    }

    /// A scaled-down fleet for tests and examples: `node_count` nodes, 4 DIMMs per node,
    /// same manufacturer proportions as MareNostrum 3.
    pub fn small(node_count: u32) -> Self {
        Self::with_proportions(node_count.max(3), 4, (6694.0, 5207.0, 13_419.0))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of DIMMs across the fleet.
    pub fn dimm_count(&self) -> usize {
        self.nodes.iter().map(|n| n.dimm_count as usize).sum()
    }

    /// Per-node information.
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// Information for one node, if it exists.
    pub fn node(&self, id: NodeId) -> Option<&NodeInfo> {
        // Dense fleets store node i at index i; manufacturer-restricted fleets keep the
        // original ids in a compacted (still sorted) vector, so fall back to a binary
        // search by id.
        match self.nodes.get(id.index()) {
            Some(n) if n.id == id => Some(n),
            _ => self
                .nodes
                .binary_search_by_key(&id, |n| n.id)
                .ok()
                .map(|i| &self.nodes[i]),
        }
    }

    /// Manufacturer of a node's DIMMs, if the node exists.
    pub fn manufacturer_of(&self, id: NodeId) -> Option<Manufacturer> {
        self.node(id).map(|n| n.manufacturer)
    }

    /// Iterate over every DIMM in the fleet.
    pub fn dimms(&self) -> impl Iterator<Item = Dimm> + '_ {
        self.nodes.iter().flat_map(|n| n.dimms())
    }

    /// Number of DIMMs per manufacturer `(A, B, C)`.
    pub fn dimms_per_manufacturer(&self) -> (usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize);
        for node in &self.nodes {
            let d = node.dimm_count as usize;
            match node.manufacturer {
                Manufacturer::A => counts.0 += d,
                Manufacturer::B => counts.1 += d,
                Manufacturer::C => counts.2 += d,
            }
        }
        counts
    }

    /// The node ids whose DIMMs come from `manufacturer`.
    pub fn nodes_of(&self, manufacturer: Manufacturer) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.manufacturer == manufacturer)
            .map(|n| n.id)
            .collect()
    }

    /// A copy of this fleet restricted to the nodes of one manufacturer, keeping the
    /// original node ids (used by the MN/A, MN/B, MN/C scenarios of Section 4.5).
    pub fn restricted_to(&self, manufacturer: Manufacturer) -> Self {
        Self {
            nodes: self
                .nodes
                .iter()
                .filter(|n| n.manufacturer == manufacturer)
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marenostrum3_shape() {
        let fleet = FleetConfig::marenostrum3();
        assert_eq!(fleet.node_count(), 3056);
        assert_eq!(fleet.dimm_count(), 3056 * 8);
        let (a, b, c) = fleet.dimms_per_manufacturer();
        let total = (a + b + c) as f64;
        // Proportions within 2% of the published DIMM shares.
        assert!((a as f64 / total - 6694.0 / 25_320.0).abs() < 0.02);
        assert!((b as f64 / total - 5207.0 / 25_320.0).abs() < 0.02);
        assert!((c as f64 / total - 13_419.0 / 25_320.0).abs() < 0.02);
    }

    #[test]
    fn manufacturer_is_node_granular() {
        let fleet = FleetConfig::small(30);
        for node in fleet.nodes() {
            let manufacturers: Vec<_> = node.dimms().map(|d| d.manufacturer).collect();
            assert!(manufacturers.iter().all(|&m| m == node.manufacturer));
        }
    }

    #[test]
    fn dimm_iteration_covers_every_slot() {
        let fleet = FleetConfig::small(5);
        let dimms: Vec<_> = fleet.dimms().collect();
        assert_eq!(dimms.len(), fleet.dimm_count());
        // Slots are dense 0..dimm_count for each node.
        let node0: Vec<_> = dimms.iter().filter(|d| d.id.node == NodeId(0)).collect();
        assert_eq!(node0.len(), 4);
        assert!(node0.iter().any(|d| d.id.slot == 3));
    }

    #[test]
    fn lookup_and_restriction() {
        let fleet = FleetConfig::small(30);
        let m = fleet.manufacturer_of(NodeId(0)).unwrap();
        assert_eq!(m, Manufacturer::A);
        assert!(fleet.node(NodeId(10_000)).is_none());

        for m in Manufacturer::ALL {
            let sub = fleet.restricted_to(m);
            assert_eq!(sub.node_count(), fleet.nodes_of(m).len());
            assert!(sub.nodes().iter().all(|n| n.manufacturer == m));
            // Node ids are preserved and still resolvable in both fleets even though the
            // restricted fleet's vector is compacted.
            for n in sub.nodes() {
                assert_eq!(fleet.manufacturer_of(n.id), Some(m));
                assert_eq!(sub.manufacturer_of(n.id), Some(m));
                assert_eq!(sub.node(n.id).map(|i| i.id), Some(n.id));
            }
        }
    }

    #[test]
    fn all_manufacturers_present_in_small_fleet() {
        let fleet = FleetConfig::small(30);
        for m in Manufacturer::ALL {
            assert!(
                !fleet.nodes_of(m).is_empty(),
                "manufacturer {m} missing from small fleet"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        FleetConfig::with_proportions(0, 8, (1.0, 1.0, 1.0));
    }
}
